//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Generates impls of the workspace serde subset's value-tree traits for
//! plain (non-generic) structs and enums. Parsing is a small hand-rolled
//! token scanner — the environment has no `syn`/`quote`.
//!
//! Supported shapes: unit/tuple/named structs; enums with unit, tuple and
//! struct variants. Generic types and `#[serde(...)]` attributes are not
//! supported — hand-write the impl for those (see `wrsn-net`'s
//! `RoutingTree`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive target looks like after scanning.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the workspace `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Shape::Named(fields) => named_to_value(fields, "self.", ""),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, vshape)| match vshape {
                    VariantShape::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => format!(
                        "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {})]),",
                        fields.join(", "),
                        named_to_value(fields, "", "")
                    ),
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the workspace `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Unit => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::Error::expected(\"null\", other.kind())),\n\
             }}"
        ),
        Shape::Tuple(arity) => format!(
            "{{ let __s = __v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}\"))?;\n\
               if __s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{arity} elements\", \"{name}\")); }}\n\
               ::std::result::Result::Ok({name}({})) }}",
            (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Shape::Named(fields) => format!(
            "{{ let __m = __v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
               ::std::result::Result::Ok({name} {{ {} }}) }}",
            named_from_value(fields)
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, vshape)| match vshape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(arity) => Some(format!(
                        "\"{vname}\" => {{\n\
                             let __s = __inner.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}::{vname}\"))?;\n\
                             if __s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{arity} elements\", \"{name}::{vname}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                         }}",
                        (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                    VariantShape::Named(fields) => Some(format!(
                        "\"{vname}\" => {{\n\
                             let __m = __inner.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                         }}",
                        named_from_value(fields)
                    )),
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error::expected(\"known unit variant\", other)),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(::serde::Error::expected(\"known variant\", other)),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::expected(\"enum value\", other.kind())),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn named_to_value(fields: &[String], access_prefix: &str, deref: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({deref}&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn named_from_value(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?,")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

// ---- token scanning ------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde_derive (vendored): generic type `{name}` is not supported; hand-write the impl"
        );
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None | Some(TokenTree::Punct(_)) => (name, Shape::Unit),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::Tuple(count_tuple_fields(g.stream())))
            }
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`, doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's bracket group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional pub(...) restriction
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Skips type tokens until a comma at angle-bracket depth 0, consuming it.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let vname = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push((vname, shape));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}
