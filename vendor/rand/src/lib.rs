//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow slice of `rand` it actually uses: [`RngCore`], [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng`] with `seed_from_u64`, and
//! [`seq::SliceRandom::shuffle`]. The implementations are clean-room and make
//! no attempt to be bit-compatible with upstream `rand`; all determinism
//! guarantees in this workspace are relative to this implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Float rounding can land exactly on `end`; clamp to stay half-open.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_int_sample_range!(i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed (SplitMix64) and builds the RNG.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`).

    use super::{Rng, RngCore};

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Weyl sequence — crude but uniform enough for range tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(2usize..9);
            assert!((2..9).contains(&i));
            let j = rng.gen_range(0u64..=3);
            assert!(j <= 3);
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Counter(11));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
