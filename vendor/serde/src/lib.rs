//! Offline vendored serde subset.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serde-compatible surface: [`Serialize`]/[`Deserialize`] traits over
//! an owned [`Value`] tree, a derive macro for plain structs and enums, and
//! impls for the std types the workspace serializes (numbers, `bool`,
//! `String`, `Option`, `Vec`, tuples).
//!
//! The data model intentionally mirrors serde_json's shape (maps keyed by
//! field name, enums as `"Variant"` or `{"Variant": {...}}`), but only
//! self-consistency is guaranteed: values written by this crate read back
//! identically through [`Deserialize`].

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (field name → value).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in a map's entries.
pub fn map_get<'v>(entries: &'v [(String, Value)], key: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{key}`")))
}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---- std impls -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::expected("unsigned integer", other.kind())),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error(format!("integer {u} overflows i64")))?,
                    other => return Err(Error::expected("integer", other.kind())),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(Error::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| Error::expected("sequence", value.kind()))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error(format!(
                        "expected {expected}-tuple, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let some: Option<f64> = Some(2.5);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let back: Vec<(usize, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integer_coercions_and_range_checks() {
        assert_eq!(u8::from_value(&Value::U64(200)).unwrap(), 200);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(i32::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::U64(7)).unwrap(), 7.0);
    }

    #[test]
    fn map_get_reports_missing_fields() {
        let entries = vec![("a".to_string(), Value::U64(1))];
        assert!(map_get(&entries, "a").is_ok());
        let err = map_get(&entries, "b").unwrap_err();
        assert!(err.0.contains("`b`"));
    }
}
