//! Offline vendored ChaCha8 RNG.
//!
//! A faithful ChaCha stream cipher core (8 double-rounds) driving the
//! workspace's [`rand`] subset. Deterministic per seed; not bit-compatible
//! with the upstream `rand_chacha` crate (the build environment is offline,
//! and nothing in the workspace depends on upstream streams).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state: constants, 8 key words, 64-bit block counter, 64-bit
    /// stream id.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word to emit from `block`; 16 = exhausted.
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const DOUBLE_ROUNDS: usize = 4; // ChaCha8 = 8 rounds = 4 double-rounds

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit block counter (words 12, 13).
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16: block counter and stream id, all zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha_core_matches_rfc8439_structure() {
        // The keystream must depend on every seed byte and differ per block.
        let a = ChaCha8Rng::from_seed([0; 32]);
        let mut b_seed = [0; 32];
        b_seed[31] = 1;
        let b = ChaCha8Rng::from_seed(b_seed);
        let mut a = a;
        let mut b = b;
        let a0: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let b0: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_ne!(a0, b0);
        assert_ne!(&a0[..16], &a0[16..], "consecutive blocks must differ");
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
