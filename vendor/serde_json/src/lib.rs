//! Offline vendored JSON text layer over the workspace serde subset.
//!
//! Serializes [`serde::Value`] trees to JSON text and parses them back.
//! Floats are printed with Rust's shortest-round-trip `Display`, so a
//! snapshotted `f64` reloads bit-exactly (the upstream `float_roundtrip`
//! behaviour the workspace relies on).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Fails if the value contains a non-finite float (JSON has no
/// representation for them; `wrsn-net` maps its infinities to `null` in a
/// hand-written impl before they reach this layer).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or when the value tree does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---- writer --------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {x}")));
            }
            // Rust's Display is shortest-round-trip; "1" parses back as an
            // integer, which numeric Deserialize impls coerce losslessly.
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {} of JSON input",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string in JSON input".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("dangling escape in JSON input".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        other => {
                            return Err(Error(format!(
                                "unknown escape `\\{}` in JSON input",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume the longest run of plain bytes in one shot —
                    // per-character validation of the remaining input would
                    // be quadratic, which matters for multi-megabyte
                    // checkpoint and artifact payloads.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in JSON input".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        // Surrogate pair?
        if (0xD800..0xDC00).contains(&first) {
            if !(self.eat_keyword("\\u")) {
                return Err(Error("lone leading surrogate in JSON string".into()));
            }
            let second = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(Error("invalid trailing surrogate in JSON string".into()));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(code).ok_or_else(|| Error("invalid surrogate pair".into()));
        }
        char::from_u32(first).ok_or_else(|| Error("invalid \\u escape in JSON string".into()))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape in JSON input".into()))?;
        let text = std::str::from_utf8(chunk).map_err(|_| Error("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
                let _ = digits; // fall through to f64 for i64 overflow
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` in JSON input")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            -1.5e-300,
            6.02214076e23,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn integers_and_strings_round_trip() {
        let v: Vec<u64> = vec![0, 1, u64::MAX];
        let back: Vec<u64> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let s = "quote \" backslash \\ newline \n unicode ✓".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn options_use_null() {
        let none: Option<f64> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
        let back: Option<f64> = from_str("2.5").unwrap();
        assert_eq!(back, Some(2.5));
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_string(&f64::INFINITY).is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v: Vec<Vec<u64>> = from_str(" [ [1, 2] , [] , [3] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
