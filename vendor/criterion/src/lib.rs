//! Offline vendored micro-benchmark harness.
//!
//! Exposes the criterion API surface `benches/microbench.rs` uses
//! (`criterion_group!`, `benchmark_group`, `bench_with_input`, …) without
//! the statistics machinery. Behaviour mirrors criterion's two modes:
//!
//! * `cargo bench` passes `--bench`: every routine is timed (median over
//!   `sample_size` samples after a warm-up) and a one-line result printed.
//! * `cargo test` passes no flag: every routine runs once as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The benchmark harness handle passed to every benchmark function.
pub struct Criterion {
    bench_mode: bool,
}

impl Criterion {
    /// A harness configured from the process arguments (`--bench` selects
    /// measurement mode; its absence means `cargo test` smoke mode).
    pub fn from_args() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|arg| arg == "--bench"),
        }
    }

    /// Registers and runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.bench_mode, id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 100;

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Registers and runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion.bench_mode, &full, self.sample_size, f);
        self
    }

    /// Registers and runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(self.criterion.bench_mode, &full, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `name/parameter`, criterion-style.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    mode: BencherMode,
    /// Median wall time per iteration, filled in by `iter`.
    result: Option<Duration>,
}

enum BencherMode {
    /// Run the routine once (under `cargo test`).
    Smoke,
    /// Time it over this many samples (under `cargo bench`).
    Measure { samples: usize },
}

impl Bencher {
    /// Runs (and in bench mode, times) the benchmark routine.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            BencherMode::Smoke => {
                std::hint::black_box(routine());
            }
            BencherMode::Measure { samples } => {
                // Warm up, then size iteration counts so each sample spans at
                // least ~1 ms, keeping timer quantization noise down.
                let warmup = Instant::now();
                std::hint::black_box(routine());
                let once = warmup.elapsed().max(Duration::from_nanos(1));
                let iters_per_sample =
                    (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
                let mut sample_times: Vec<Duration> = (0..samples)
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..iters_per_sample {
                            std::hint::black_box(routine());
                        }
                        start.elapsed() / iters_per_sample
                    })
                    .collect();
                sample_times.sort_unstable();
                self.result = Some(sample_times[sample_times.len() / 2]);
            }
        }
    }
}

fn run_benchmark<F>(bench_mode: bool, id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        mode: if bench_mode {
            BencherMode::Measure { samples }
        } else {
            BencherMode::Smoke
        },
        result: None,
    };
    f(&mut bencher);
    if bench_mode {
        match bencher.result {
            Some(median) => println!("{id:<50} median {}", format_duration(median)),
            None => println!("{id:<50} (no measurement: routine never called iter)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Groups benchmark functions under one name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut criterion = Criterion { bench_mode: false };
        let mut calls = 0usize;
        criterion.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_and_ids_compose_names() {
        let id = BenchmarkId::new("csa_plan", 40);
        assert_eq!(id.0, "csa_plan/40");
        let mut criterion = Criterion { bench_mode: false };
        let mut group = criterion.benchmark_group("planners");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &7usize, |b, &n| {
            b.iter(|| {
                ran = true;
                n * 2
            })
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn measure_mode_times_medians() {
        let mut bencher = Bencher {
            mode: BencherMode::Measure { samples: 5 },
            result: None,
        };
        bencher.iter(|| std::hint::black_box(1 + 1));
        assert!(bencher.result.is_some());
    }
}
