//! Offline vendored property-testing subset.
//!
//! Implements the slice of the proptest API the workspace's tests use:
//! the [`proptest!`] macro, range/tuple/`vec` strategies, `prop_assert*` /
//! `prop_assume!`, and [`ProptestConfig::with_cases`]. Cases are generated
//! from a deterministic per-test RNG (seeded from the test's name) so runs
//! are reproducible. Failing inputs are reported via panic message; there is
//! no shrinking.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject(String),
    /// The property failed on this case.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// An assumption rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded deterministically from a test's name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, platform-independent seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Types that can generate values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: fixed, or uniform over a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                start: range.start,
                end_exclusive: range.end,
            }
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end_exclusive.saturating_sub(self.size.start);
            let len = if span <= 1 {
                self.size.start
            } else {
                self.size.start + rng.below(span as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `case` until `config.cases` successes, panicking on the first
/// failure. Rejections (`prop_assume!`) retry with fresh inputs, up to a cap.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::from_name(name);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let max_rejects = config.cases.saturating_mul(32).max(1024);
    while successes < config.cases {
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "property `{name}`: too many rejected cases \
                     ({rejects} rejects for {successes} successes)"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` failed after {successes} passing cases: {message}");
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of proptest's `prelude::prop` module re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __left = $left;
        let __right = $right;
        if __left != __right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if __left != __right {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = Strategy::generate(&(2.5..7.5f64), &mut rng);
            assert!((2.5..7.5).contains(&x));
            let n = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&n));
            let i = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_rejects(n in 1usize..20, xs in prop::collection::vec(0.0..1.0f64, 0..5), pair in (0u64..10, -1.0..1.0f64)) {
            prop_assume!(n != 13);
            prop_assert!((1..20).contains(&n));
            prop_assert!(xs.len() < 5);
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(xs.iter().filter(|x| **x < 0.0).count(), 0);
        }
    }
}
