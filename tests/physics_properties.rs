//! Property-based tests of the electromagnetic substrate.

use proptest::prelude::*;

use wrsn::em::{superposition, CancelController, ChargeModel, Phasor, Transmitter, Wave};

fn amplitude() -> impl Strategy<Value = f64> {
    0.0..10.0f64
}

fn phase() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Coherent power always lies between 0 and the constructive bound.
    #[test]
    fn superposition_is_bounded(
        amps in prop::collection::vec(amplitude(), 0..6),
        phases in prop::collection::vec(phase(), 0..6),
    ) {
        let waves: Vec<Wave> = amps
            .iter()
            .zip(&phases)
            .map(|(&a, &p)| Wave::new(a, p))
            .collect();
        let power = superposition::received_power(&waves);
        prop_assert!(power >= 0.0);
        prop_assert!(power <= superposition::constructive_bound(&waves) + 1e-9);
    }

    /// Adding a wave's exact antiphase removes its contribution entirely.
    #[test]
    fn antiphase_is_a_perfect_eraser(a in 0.01..5.0f64, p in phase(), others in prop::collection::vec((amplitude(), phase()), 0..4)) {
        let mut waves: Vec<Wave> = others.iter().map(|&(a, p)| Wave::new(a, p)).collect();
        let base = superposition::received_power(&waves);
        waves.push(Wave::new(a, p));
        waves.push(Wave::new(a, p).antiphase());
        let with_pair = superposition::received_power(&waves);
        prop_assert!((with_pair - base).abs() < 1e-6 * (1.0 + base));
    }

    /// Phasor addition is commutative and power is rotation-invariant.
    #[test]
    fn phasor_algebra(a in phase(), b in phase(), m1 in amplitude(), m2 in amplitude(), rot in phase()) {
        let p = Phasor::from_polar(m1, a);
        let q = Phasor::from_polar(m2, b);
        prop_assert!(((p + q) - (q + p)).magnitude() < 1e-12);
        prop_assert!(((p + q).rotate(rot).power() - (p + q).power()).abs() < 1e-9 * (1.0 + (p + q).power()));
    }

    /// The empirical charging model is non-negative and non-increasing.
    #[test]
    fn charge_model_monotone(alpha in 0.01..10.0f64, beta in 0.01..2.0f64, d1 in 0.0..5.0f64, d2 in 0.0..5.0f64) {
        let m = ChargeModel::new(alpha, beta, 5.0).unwrap();
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.power_at(near) >= m.power_at(far));
        prop_assert!(m.power_at(far) >= 0.0);
    }

    /// Cancellation never *increases* the victim's power, wherever the
    /// victim is, and residuals are monotone in phase error.
    #[test]
    fn cancellation_never_amplifies(x in -3.0..3.0f64, y in -3.0..3.0f64) {
        prop_assume!(x.hypot(y) > 0.2); // not on top of the antenna
        let primary = Transmitter::powercast().at(0.0, 0.0);
        let helper = Transmitter::powercast().at(0.1, 0.0);
        let c = CancelController::new(&primary, &helper);
        let sol = c.solve((x, y));
        prop_assert!(sol.residual_power_w <= sol.honest_power_w + 1e-12);
        let r_small = c.residual_with_errors((x, y), 0.01, 0.0);
        let r_big = c.residual_with_errors((x, y), 0.3, 0.0);
        prop_assert!(r_small <= r_big + 1e-12);
    }

    /// Fitting recovers parameters from exact samples of any valid model.
    #[test]
    fn fit_recovers_exact_models(alpha in 0.05..2.0f64, beta in 0.1..1.5f64) {
        let truth = ChargeModel::new(alpha, beta, 10.0).unwrap();
        let samples: Vec<(f64, f64)> = (1..40)
            .map(|k| {
                let d = k as f64 * 0.1;
                (d, truth.power_at(d))
            })
            .collect();
        let fit = wrsn::em::fit::fit_charge_model(&samples, 3.0).unwrap();
        prop_assert!((fit.alpha - alpha).abs() < 0.02 * alpha.max(0.1), "alpha {} vs {}", fit.alpha, alpha);
        prop_assert!((fit.beta - beta).abs() < 0.05, "beta {} vs {}", fit.beta, beta);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `m+1` antennas null `m` victims exactly, with weights within rated
    /// power, for arbitrary victim layouts in front of the array.
    #[test]
    fn beamforming_nulls_every_victim(
        m in 1usize..5,
        coords in prop::collection::vec((1.2..3.0f64, -1.5..1.5f64), 5),
        spacing in 0.2..0.5f64,
    ) {
        use wrsn::em::beamform;
        let victims: Vec<(f64, f64)> = coords.into_iter().take(m).collect();
        prop_assume!(victims.len() == m);
        // Degenerate layouts (two victims nearly coincident) make the channel
        // matrix ill-conditioned; skip them like a real attacker would.
        for i in 0..m {
            for j in (i + 1)..m {
                let d = (victims[i].0 - victims[j].0).hypot(victims[i].1 - victims[j].1);
                prop_assume!(d > 0.05);
            }
        }
        let antennas = beamform::linear_array(m + 1, 0.0, 0.0, spacing);
        let weights = beamform::null_weights(&antennas, &victims).expect("null space exists");
        for w in &weights {
            prop_assert!(w.magnitude() <= 1.0 + 1e-9);
        }
        for &v in &victims {
            let residual = beamform::received_power_with_weights(&antennas, &weights, v);
            prop_assert!(residual < 1e-10, "victim {v:?} residual {residual}");
        }
    }
}
