//! End-to-end reproduction of the paper's headline claims:
//! "CSA can exhaust at least 80 % of key nodes without being detected."

use wrsn::core::attack::{evaluate_attack, CsaAttackPolicy, EagerSpoofPolicy};
use wrsn::core::detect::{Detector, EnergyReportAudit, RadiatedPowerAudit};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;
use wrsn::sim::ChargeMode;

#[test]
fn headline_at_least_80_percent_of_key_nodes_exhausted() {
    for seed in [1u64, 7, 21] {
        let scenario = Scenario::paper_scale(100, seed);
        let mut world = scenario.build();
        let mut policy = CsaAttackPolicy::new(scenario.tide_config());
        world.run(&mut policy).expect("run");
        let outcome = evaluate_attack(&world, &policy);
        assert!(
            outcome.covered_exhausted_ratio >= 0.8,
            "seed {seed}: only {:.0} % of key nodes exhausted under masquerade ({outcome:?})",
            outcome.covered_exhausted_ratio * 100.0
        );
        assert!(
            outcome.exhausted_ratio >= 0.99,
            "seed {seed}: a targeted victim survived ({outcome:?})"
        );
    }
}

#[test]
fn headline_without_being_detected() {
    let scenario = Scenario::paper_scale(100, 3);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    world.run(&mut policy).expect("run");
    let victims: Vec<NodeId> = policy.targets().iter().map(|&(n, _)| n).collect();
    assert!(!victims.is_empty());

    let energy = EnergyReportAudit::default().analyze(&world);
    assert!(
        energy.detection_ratio(&victims).expect("victims nonempty") < 0.1,
        "energy audit caught CSA: {energy:?}"
    );
    let rf = RadiatedPowerAudit::default().analyze(&world);
    assert_eq!(
        rf.detection_ratio(&victims),
        Some(0.0),
        "RF audit caught CSA"
    );
}

#[test]
fn the_naive_spoofer_is_caught_where_csa_is_not() {
    let scenario = Scenario::paper_scale(80, 5);

    let mut csa_world = scenario.build();
    let mut csa = CsaAttackPolicy::new(scenario.tide_config());
    csa_world.run(&mut csa).expect("run");
    let csa_victims: Vec<NodeId> = csa.targets().iter().map(|&(n, _)| n).collect();

    let mut eager_world = scenario.build();
    eager_world
        .run(&mut EagerSpoofPolicy::new(3_000.0))
        .expect("run");
    let eager_victims: Vec<NodeId> = eager_world
        .trace()
        .sessions()
        .iter()
        .filter(|s| s.mode == ChargeMode::Spoofed)
        .map(|s| s.node)
        .collect();
    assert!(!eager_victims.is_empty());

    let audit = EnergyReportAudit::default();
    let csa_ratio = audit
        .analyze(&csa_world)
        .detection_ratio(&csa_victims)
        .expect("victims nonempty");
    let eager_ratio = audit
        .analyze(&eager_world)
        .detection_ratio(&eager_victims)
        .expect("victims nonempty");
    assert!(
        csa_ratio + 0.5 < eager_ratio,
        "no separation: csa {csa_ratio} vs eager {eager_ratio}"
    );
}

#[test]
fn spoofed_sessions_deliver_nothing_honest_decoys_deliver_plenty() {
    let scenario = Scenario::paper_scale(60, 9);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    world.run(&mut policy).expect("run");
    let mut spoofed = 0usize;
    let mut honest = 0usize;
    for s in world.trace().sessions() {
        match s.mode {
            ChargeMode::Spoofed => {
                spoofed += 1;
                assert!(
                    s.delivered_j < 0.02 * s.radiated_j,
                    "spoofed session leaked energy: {s:?}"
                );
            }
            ChargeMode::Honest => {
                honest += 1;
                if s.duration_s > 60.0 {
                    assert!(
                        s.delivered_j > 1.0,
                        "decoy session delivered nothing: {s:?}"
                    );
                }
            }
            ChargeMode::Partial { .. } => {
                panic!("naive CSA never issues partial-power sessions: {s:?}");
            }
        }
    }
    assert!(spoofed > 0, "no masquerades happened");
    assert!(honest > 0, "no decoy service happened");
}

#[test]
fn full_campaign_is_deterministic() {
    let run = || {
        let scenario = Scenario::paper_scale(60, 11);
        let mut world = scenario.build();
        let mut policy = CsaAttackPolicy::new(scenario.tide_config());
        let report = world.run(&mut policy).expect("run");
        let deaths: Vec<_> = world.trace().death_times().to_vec();
        (report.sessions, report.charger_energy_used_j, deaths)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn key_nodes_die_earlier_under_attack_than_ordinary_nodes() {
    let scenario = Scenario::paper_scale(100, 13);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    world.run(&mut policy).expect("run");
    let census: Vec<NodeId> = policy
        .initial_instance()
        .unwrap()
        .victims
        .iter()
        .map(|v| v.node)
        .collect();
    let deaths = world.trace().death_times();
    let key_deaths: Vec<f64> = deaths
        .iter()
        .filter(|(n, _)| census.contains(n))
        .map(|&(_, t)| t)
        .collect();
    let other_deaths: Vec<f64> = deaths
        .iter()
        .filter(|(n, _)| !census.contains(n))
        .map(|&(_, t)| t)
        .collect();
    assert!(!key_deaths.is_empty());
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    if !other_deaths.is_empty() {
        assert!(
            mean(&key_deaths) < mean(&other_deaths),
            "key nodes should fall first: key {:.0} vs other {:.0}",
            mean(&key_deaths),
            mean(&other_deaths)
        );
    }
}
