//! Comparative behaviour across charger policies — the qualitative shapes
//! the evaluation section relies on.

use wrsn::charge::{EarliestDeadlineFirst, Njnp};
use wrsn::core::attack::CsaAttackPolicy;
use wrsn::core::baseline;
use wrsn::core::tide::TideInstance;
use wrsn::scenario::Scenario;
use wrsn::sim::IdlePolicy;

#[test]
fn benign_charging_outlives_no_charging() {
    let scenario = Scenario::paper_scale(60, 2);
    let mut idle_world = scenario.build();
    idle_world.run(&mut IdlePolicy).expect("run");
    let mut edf_world = scenario.build();
    edf_world
        .run(&mut EarliestDeadlineFirst::new())
        .expect("run");

    let idle_life = idle_world.network_lifetime_s().unwrap_or(f64::INFINITY);
    let edf_life = edf_world.network_lifetime_s().unwrap_or(f64::INFINITY);
    assert!(
        edf_life > idle_life,
        "EDF lifetime {edf_life} not better than idle {idle_life}"
    );
}

#[test]
fn attack_kills_key_nodes_that_benign_charging_saves() {
    let scenario = Scenario::paper_scale(80, 4);

    let mut attack_world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    attack_world.run(&mut policy).expect("run");
    let census: Vec<_> = policy
        .initial_instance()
        .unwrap()
        .victims
        .iter()
        .map(|v| v.node)
        .collect();
    assert!(!census.is_empty());

    // Under the attack, (nearly) every census member is dead by the end of
    // the campaign; under EDF at the same instant, most are alive.
    let t_eval = attack_world
        .trace()
        .sessions()
        .iter()
        .map(|s| s.start_s + s.duration_s)
        .fold(0.0f64, f64::max);
    let mut benign_world = scenario.build();
    benign_world
        .run(&mut EarliestDeadlineFirst::new())
        .expect("run");

    let dead_at = |world: &wrsn::sim::World, t: f64| {
        census
            .iter()
            .filter(|n| {
                world
                    .trace()
                    .death_time_of(**n)
                    .map(|d| d <= t)
                    .unwrap_or(false)
            })
            .count()
    };
    let attacked = dead_at(&attack_world, t_eval);
    let benign = dead_at(&benign_world, t_eval);
    assert!(
        attacked > benign,
        "attack killed {attacked} key nodes by t={t_eval:.0}, benign lost {benign}"
    );
    assert!(
        attacked as f64 >= 0.8 * census.len() as f64,
        "attack only got {attacked}/{}",
        census.len()
    );
}

#[test]
fn csa_beats_every_baseline_on_real_instances() {
    for seed in 0..5u64 {
        let scenario = Scenario::paper_scale(120, seed);
        let world = scenario.build();
        let instance = TideInstance::from_world(&world, &scenario.tide_config());
        let planners = baseline::standard_planners(seed);
        let utilities: Vec<f64> = planners
            .iter()
            .map(|p| instance.utility(&p.plan(&instance)))
            .collect();
        for (k, u) in utilities.iter().enumerate().skip(1) {
            assert!(
                utilities[0] + 1e-9 >= *u,
                "seed {seed}: {} ({u}) beats CSA ({})",
                planners[k].name(),
                utilities[0]
            );
        }
    }
}

#[test]
fn attack_charger_spends_less_energy_per_dead_key_node_than_benign_saves() {
    // Economic sanity: the attack's cost per exhausted key node is finite and
    // far below the benign cost of keeping the network alive for the same
    // period (the attacker free-rides on radiation it never delivers).
    let scenario = Scenario::paper_scale(60, 8);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    let report = world.run(&mut policy).expect("run");
    let outcome = wrsn::core::attack::evaluate_attack(&world, &policy);
    assert!(outcome.exhausted > 0);
    let cost_per_kill = report.charger_energy_used_j / outcome.exhausted as f64;
    assert!(
        cost_per_kill < scenario.mc_energy_j,
        "cost per kill {cost_per_kill} exceeds the whole budget"
    );
}

#[test]
fn njnp_and_edf_both_serve_requesters() {
    let scenario = Scenario::paper_scale(40, 10);
    for (name, mut policy) in [
        (
            "njnp",
            Box::new(Njnp::new()) as Box<dyn wrsn::sim::ChargerPolicy>,
        ),
        ("edf", Box::new(EarliestDeadlineFirst::new())),
    ] {
        let mut world = scenario.build();
        world.run(policy.as_mut()).expect("run");
        assert!(
            !world.trace().sessions().is_empty(),
            "{name} never charged anyone"
        );
        assert!(world.trace().total_delivered_j() > 0.0);
    }
}
