//! Simulation-level invariants across policies, including failure injection.

use wrsn::charge::{EarliestDeadlineFirst, Njnp, PeriodicTsp};
use wrsn::core::attack::CsaAttackPolicy;
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;
use wrsn::sim::{ChargerPolicy, IdlePolicy, SimEvent, World};

fn policies(scenario: &Scenario) -> Vec<Box<dyn ChargerPolicy>> {
    vec![
        Box::new(IdlePolicy),
        Box::new(Njnp::new()),
        Box::new(PeriodicTsp::new(scenario.sink(), 50_000.0)),
        Box::new(EarliestDeadlineFirst::new()),
        Box::new(CsaAttackPolicy::new(scenario.tide_config())),
    ]
}

fn run(scenario: &Scenario, policy: &mut dyn ChargerPolicy) -> World {
    let mut world = scenario.build();
    world.run(policy).expect("run");
    world
}

#[test]
fn batteries_never_leave_bounds_under_any_policy() {
    let scenario = Scenario::paper_scale(40, 17);
    for mut policy in policies(&scenario) {
        let world = run(&scenario, policy.as_mut());
        let net = world.network();
        for i in 0..net.node_count() {
            let level = net.levels_j()[i];
            assert!(
                (0.0..=net.capacities_j()[i] + 1e-9).contains(&level),
                "{}: level {level} out of bounds",
                policy.name()
            );
        }
    }
}

#[test]
fn charger_budget_is_never_overspent() {
    let scenario = Scenario::paper_scale(40, 19);
    for mut policy in policies(&scenario) {
        let world = run(&scenario, policy.as_mut());
        assert!(
            world.charger().energy_j() >= -1e-6,
            "{}: negative charger energy",
            policy.name()
        );
        let report = world.report(policy.name());
        assert!(report.charger_energy_used_j <= world.charger().capacity_j() + 1e-6);
    }
}

#[test]
fn death_events_are_time_ordered_and_unique() {
    let scenario = Scenario::paper_scale(50, 23);
    for mut policy in policies(&scenario) {
        let world = run(&scenario, policy.as_mut());
        let deaths = world.trace().death_times();
        for pair in deaths.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "{}: deaths out of order",
                policy.name()
            );
        }
        let mut ids: Vec<NodeId> = deaths.iter().map(|&(n, _)| n).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "{}: duplicate death", policy.name());
        // Dead nodes really are dead.
        for id in ids {
            assert!(!world.network().alive(id.0));
        }
    }
}

#[test]
fn sessions_are_consistent_with_events() {
    let scenario = Scenario::paper_scale(40, 29);
    let mut policy = Njnp::new();
    let world = run(&scenario, &mut policy);
    for s in world.trace().sessions() {
        assert!(s.duration_s >= 0.0);
        assert!(s.delivered_j >= -1e-9);
        assert!(s.radiated_j >= -1e-9);
        assert!(s.start_s + s.duration_s <= world.time_s() + 1e-6);
    }
    // Every session index mentioned by an event exists.
    for (_, event) in world.trace().events() {
        if let SimEvent::SessionEnded { session } = event {
            assert!(*session < world.trace().sessions().len());
        }
    }
}

#[test]
fn horizon_is_respected_exactly() {
    let mut scenario = Scenario::paper_scale(30, 31);
    scenario.horizon_s = 12_345.0;
    for mut policy in policies(&scenario) {
        let world = run(&scenario, policy.as_mut());
        assert!(
            (world.time_s() - 12_345.0).abs() < 1e-6,
            "{}: ended at {}",
            policy.name(),
            world.time_s()
        );
    }
}

#[test]
fn failure_injection_mid_run_is_survivable() {
    // Kill a batch of nodes at t=0 via direct battery writes, then run every
    // policy: no panics, and the dead stay dead.
    let scenario = Scenario::paper_scale(40, 37);
    for mut policy in policies(&scenario) {
        let mut world = scenario.build();
        for i in (0..40).step_by(5) {
            world.set_battery_level(NodeId(i), 0.0).unwrap();
        }
        world.run(policy.as_mut()).expect("run");
        for i in (0..40).step_by(5) {
            assert!(!world.network().alive(i));
        }
    }
}

#[test]
fn total_delivered_energy_is_bounded_by_radiated() {
    // A charger cannot deliver more DC than it radiates (efficiency ≤ 1 at
    // these geometries).
    let scenario = Scenario::paper_scale(40, 41);
    for mut policy in policies(&scenario) {
        let world = run(&scenario, policy.as_mut());
        let delivered = world.trace().total_delivered_j();
        let radiated = world.trace().total_radiated_j();
        assert!(
            delivered <= radiated + 1e-6,
            "{}: delivered {delivered} > radiated {radiated}",
            policy.name()
        );
    }
}

#[test]
fn world_snapshot_round_trips_through_json() {
    let scenario = Scenario::paper_scale(30, 43);
    let mut world = scenario.build();
    world.run(&mut Njnp::new()).expect("run");
    let json = serde_json::to_string(&world).expect("serialize");
    let back: World = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.time_s(), world.time_s());
    assert_eq!(back.trace().sessions(), world.trace().sessions());
    assert_eq!(back.trace().death_times(), world.trace().death_times());
    assert_eq!(back.network().node_count(), world.network().node_count());
    for (a, b) in back
        .network()
        .levels_j()
        .iter()
        .zip(world.network().levels_j())
    {
        assert_eq!(a, b);
    }
    // Derived routing state (with its INFINITY distances) survived too.
    for id in back.network().ids() {
        assert_eq!(back.tree().is_reachable(id), world.tree().is_reachable(id));
    }
    // Detectors work identically on the reloaded snapshot.
    let suite_a = wrsn::core::detect::run_suite(&world);
    let suite_b = wrsn::core::detect::run_suite(&back);
    assert_eq!(suite_a.total_alarms(), suite_b.total_alarms());
}
