//! Property-based tests of the network substrate.

use proptest::prelude::*;

use wrsn::net::energy::Battery;
use wrsn::net::prelude::*;
use wrsn::net::routing;

fn random_net(n: usize, seed: u64, range: f64) -> Network {
    let nodes = deploy::uniform(&Region::square(80.0), n, seed);
    Network::build(nodes, Point::new(40.0, 40.0), range)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A battery level never leaves [0, capacity] under any operation mix.
    #[test]
    fn battery_stays_in_bounds(ops in prop::collection::vec((-500.0..500.0f64,), 0..50)) {
        let mut b = Battery::new(100.0, 20.0);
        for (amount,) in ops {
            if amount >= 0.0 {
                b.charge(amount);
            } else {
                b.discharge(-amount);
            }
            prop_assert!((0.0..=100.0).contains(&b.level_j()), "level = {}", b.level_j());
        }
    }

    /// Articulation points match the brute-force definition on random nets.
    #[test]
    fn articulation_points_are_correct(n in 5usize..20, seed in 0u64..50, range in 15.0..40.0f64) {
        let net = random_net(n, seed, range);
        let mask = net.alive_mask();
        let fast = net.articulation_points(&mask);
        let before = net.components(&mask).len();
        let brute: Vec<NodeId> = (0..n)
            .filter(|&v| {
                let mut m = mask.clone();
                m[v] = false;
                net.components(&m).len() > before
            })
            .map(NodeId)
            .collect();
        prop_assert_eq!(fast, brute);
    }

    /// Along any routing-tree path, the distance to the sink strictly
    /// decreases hop by hop.
    #[test]
    fn routing_tree_distances_decrease(n in 5usize..30, seed in 0u64..50) {
        let net = random_net(n, seed, 25.0);
        let mask = net.alive_mask();
        let tree = routing::RoutingTree::shortest_path(&net, &mask);
        for id in net.ids() {
            if let Some(parent) = tree.parent(id) {
                prop_assert!(
                    tree.dist_to_sink(parent) < tree.dist_to_sink(id),
                    "{id}: parent {parent} not closer"
                );
            }
        }
    }

    /// Traffic conservation: the sink-adjacent nodes' outgoing traffic equals
    /// the total sensing rate of all reachable nodes.
    #[test]
    fn traffic_is_conserved(n in 5usize..30, seed in 0u64..50) {
        let net = random_net(n, seed, 25.0);
        let mask = net.alive_mask();
        let tree = routing::RoutingTree::shortest_path(&net, &mask);
        let load = routing::traffic_load(&net, &tree, &mask);
        let generated: f64 = net
            .ids()
            .filter(|&id| tree.is_reachable(id))
            .map(|id| net.sensing_rates_bps()[id.0])
            .sum();
        let delivered: f64 = net
            .ids()
            .filter(|&id| tree.is_reachable(id) && tree.parent(id).is_none())
            .map(|id| load.tx_bps[id.0])
            .sum();
        prop_assert!((generated - delivered).abs() < 1e-6 * (1.0 + generated));
    }

    /// Killing any node never increases sink reachability.
    #[test]
    fn deaths_never_help_reachability(n in 5usize..25, seed in 0u64..50, victim in 0usize..25) {
        let net = random_net(n, seed, 25.0);
        prop_assume!(victim < n);
        let mask = net.alive_mask();
        let tree_before = routing::RoutingTree::shortest_path(&net, &mask);
        let mut m = mask.clone();
        m[victim] = false;
        let tree_after = routing::RoutingTree::shortest_path(&net, &m);
        prop_assert!(tree_after.reachable_count() <= tree_before.reachable_count());
    }

    /// The effective power draw is positive for every alive node.
    #[test]
    fn effective_power_draw_is_positive(n in 5usize..25, seed in 0u64..50) {
        let net = random_net(n, seed, 20.0);
        let mask = net.alive_mask();
        let power = keynode::effective_power_draw(&net, &mask, &RadioEnergyModel::classical());
        for id in net.ids() {
            prop_assert!(power[id.0] > 0.0, "{id} has zero drain");
        }
    }

    /// Key-node weights are ≥ 1 and the list is sorted descending.
    #[test]
    fn key_nodes_are_ranked(n in 8usize..30, seed in 0u64..50) {
        let net = random_net(n, seed, 22.0);
        let keys = keynode::identify(&net, &KeyNodeConfig::default());
        for pair in keys.windows(2) {
            prop_assert!(pair[0].weight >= pair[1].weight);
        }
        for k in &keys {
            prop_assert!(k.weight >= 1.0);
        }
    }
}
