//! Property-based tests of the TIDE planners.

use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wrsn::core::schedule::{earliest_times, latest_start_shift};
use wrsn::core::tide::{TideInstance, TimeWindow, Victim};
use wrsn::core::{baseline, csa, exact, theory};
use wrsn::net::{NodeId, Point};

fn random_instance(n: usize, seed: u64, window: f64, budget: f64) -> TideInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let victims = (0..n)
        .map(|i| {
            let open = rng.gen_range(0.0..500.0);
            let len = rng.gen_range(0.2 * window..2.0 * window);
            Victim {
                node: NodeId(i),
                position: Point::new(rng.gen_range(0.0..150.0), rng.gen_range(0.0..150.0)),
                weight: rng.gen_range(1.0..5.0),
                window: TimeWindow {
                    open_s: open,
                    close_s: open + len,
                },
                service_s: rng.gen_range(10.0..80.0),
                death_s: open + len + 100.0,
            }
        })
        .collect();
    TideInstance {
        victims,
        start: Point::new(75.0, 75.0),
        speed_mps: 5.0,
        budget_j: budget,
        move_cost_j_per_m: 1.0,
        radiated_power_w: 1.0,
        now_s: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every planner always emits a schedule the instance validates.
    #[test]
    fn planners_emit_feasible_schedules(n in 1usize..12, seed in 0u64..100, window in 50.0..800.0f64, budget in 100.0..3000.0f64) {
        let inst = random_instance(n, seed, window, budget);
        for planner in baseline::standard_planners(seed) {
            let s = planner.plan(&inst);
            prop_assert!(inst.validate(&s).is_ok(), "{} emitted invalid schedule", planner.name());
            prop_assert!(inst.energy_cost(&s) <= inst.budget_j + 1e-6);
        }
    }

    /// CSA dominates the deterministic baselines on *every* instance — a
    /// structural guarantee, since their orders are in CSA's candidate pool.
    /// (The random baseline can only be dominated on average; `fig5` shows
    /// that.)
    #[test]
    fn csa_dominates_deterministic_baselines(n in 1usize..10, seed in 0u64..100) {
        let inst = random_instance(n, seed, 300.0, 800.0);
        let planners = baseline::standard_planners(seed);
        let csa_u = inst.utility(&planners[0].plan(&inst));
        for p in &planners[1..3] {
            prop_assert!(csa_u + 1e-9 >= inst.utility(&p.plan(&inst)), "beaten by {}", p.name());
        }
    }

    /// CSA never beats the exact optimum, and stays above the guarantee.
    #[test]
    fn csa_between_guarantee_and_optimum(n in 1usize..8, seed in 0u64..100) {
        let inst = random_instance(n, seed, 300.0, 600.0);
        let opt = inst.utility(&exact::solve(&inst));
        let got = inst.utility(&csa::plan(&inst));
        prop_assert!(got <= opt + 1e-6);
        prop_assert!(theory::approximation_ratio(got, opt) >= theory::greedy_guarantee() - 1e-9);
    }

    /// Latest-start shifting preserves feasibility and never starts earlier.
    #[test]
    fn latest_shift_is_sound(n in 1usize..10, seed in 0u64..100) {
        let inst = random_instance(n, seed, 400.0, 5000.0);
        let order: Vec<usize> = (0..inst.victim_count()).collect();
        if let Some(early) = earliest_times(&inst, &order) {
            let late = latest_start_shift(&inst, &early);
            prop_assert!(inst.validate(&late).is_ok());
            for (a, b) in early.stops().iter().zip(late.stops()) {
                prop_assert!(b.begin_s + 1e-9 >= a.begin_s);
            }
            // Same victims, same order.
            prop_assert_eq!(early.order(), late.order());
        }
    }

    /// Utility upper bound dominates everything any planner achieves.
    #[test]
    fn upper_bound_dominates(n in 1usize..10, seed in 0u64..100) {
        let inst = random_instance(n, seed, 250.0, 700.0);
        let ub = theory::utility_upper_bound(&inst);
        for planner in baseline::standard_planners(seed) {
            prop_assert!(ub + 1e-9 >= inst.utility(&planner.plan(&inst)));
        }
    }
}
