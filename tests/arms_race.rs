//! The attacker/defender arms race, end to end — the extension experiments
//! (`fig11`, `fig12`) as executable claims.
//!
//! 1. A charger that ignores its victims (selective neglect) needs no
//!    spoofing hardware but is caught by the fairness audit.
//! 2. CSA's spoofed visits defeat the fairness audit — that is what the
//!    cancellation rig buys.
//! 3. The only audit that sees CSA is post-mortem forensics, whose alarms
//!    arrive at the victims' deaths — after the damage.

use wrsn::core::attack::{CsaAttackPolicy, SelectiveNeglectPolicy};
use wrsn::core::detect::{Detector, FairnessAudit, PostMortemAudit};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;

#[test]
fn neglect_kills_but_fairness_audit_sees_it() {
    let scenario = Scenario::paper_scale(80, 6);
    let mut world = scenario.build();
    let mut policy = SelectiveNeglectPolicy::new();
    world.run(&mut policy).expect("run");
    let victims = policy.census();
    assert!(!victims.is_empty());

    let dead = victims
        .iter()
        .filter(|v| !world.network().alive(v.0))
        .count();
    assert!(
        dead as f64 >= 0.8 * victims.len() as f64,
        "{dead}/{}",
        victims.len()
    );

    let ratio = FairnessAudit::default()
        .analyze(&world)
        .detection_ratio(&victims)
        .expect("victims nonempty");
    assert!(ratio >= 0.6, "fairness audit missed neglect: {ratio}");
}

#[test]
fn csa_defeats_the_fairness_audit() {
    let scenario = Scenario::paper_scale(80, 6);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    world.run(&mut policy).expect("run");
    let victims: Vec<NodeId> = policy.targets().iter().map(|&(n, _)| n).collect();
    assert!(!victims.is_empty());
    let ratio = FairnessAudit::default()
        .analyze(&world)
        .detection_ratio(&victims)
        .expect("victims nonempty");
    assert!(ratio < 0.1, "fairness audit should not see CSA: {ratio}");
}

#[test]
fn post_mortem_forensics_see_csa_but_only_after_each_death() {
    let scenario = Scenario::paper_scale(80, 6);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    world.run(&mut policy).expect("run");
    let victims: Vec<NodeId> = policy.targets().iter().map(|&(n, _)| n).collect();

    let report = PostMortemAudit::default().analyze(&world);
    let ratio = report.detection_ratio(&victims).expect("victims nonempty");
    assert!(ratio > 0.9, "forensics should see CSA: {ratio}");
    // Every alarm coincides with a death — never earlier.
    for alarm in &report.alarms {
        let death = world
            .trace()
            .death_time_of(alarm.node)
            .expect("alarmed node died");
        assert!(alarm.time_s >= death - 1e-6);
    }
}

#[test]
fn depot_provisioned_honest_charging_is_clean_on_every_audit() {
    let mut scenario = Scenario::paper_scale(60, 12);
    scenario.depot = true;
    let mut world = scenario.build();
    let report = world
        .run(&mut wrsn::charge::EarliestDeadlineFirst::new())
        .expect("run");
    assert!(
        report.depot_visits > 0,
        "saturated EDF must visit the depot"
    );
    let served: Vec<NodeId> = world.trace().sessions().iter().map(|s| s.node).collect();
    assert!(!served.is_empty());
    for detector in [
        Box::new(FairnessAudit::default()) as Box<dyn Detector>,
        Box::new(PostMortemAudit::default()),
    ] {
        let ratio = detector
            .analyze(&world)
            .detection_ratio(&served)
            .expect("served nonempty");
        assert!(
            ratio < 0.15,
            "{} flags honest depot-provisioned charging: {ratio}",
            detector.name()
        );
    }
}
