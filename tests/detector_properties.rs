//! Property-style tests of the detector suite over real attack traces:
//! thresholds must act monotonically, and verdicts must be stable across
//! snapshot round-trips.

use wrsn::core::attack::CsaAttackPolicy;
use wrsn::core::detect::{
    Detector, EnergyReportAudit, FairnessAudit, PostMortemAudit, TrajectoryAudit,
};
use wrsn::scenario::Scenario;
use wrsn::sim::World;

fn attacked_world() -> World {
    let scenario = Scenario::paper_scale(60, 14);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    world.run(&mut policy).expect("run");
    world
}

#[test]
fn energy_audit_alarms_grow_with_threshold() {
    let world = attacked_world();
    let mut prev = 0usize;
    for thr in [0.05, 0.2, 0.5, 0.8, 0.95] {
        let alarms = EnergyReportAudit {
            efficiency_threshold: thr,
            ..EnergyReportAudit::default()
        }
        .analyze(&world)
        .alarm_count();
        assert!(
            alarms >= prev,
            "threshold {thr}: {alarms} alarms < previous {prev}"
        );
        prev = alarms;
    }
}

#[test]
fn trajectory_audit_alarms_shrink_with_deadline() {
    let world = attacked_world();
    let mut prev = usize::MAX;
    for deadline in [50_000.0, 150_000.0, 400_000.0, 900_000.0] {
        let alarms = TrajectoryAudit {
            max_response_s: deadline,
        }
        .analyze(&world)
        .alarm_count();
        assert!(
            alarms <= prev,
            "deadline {deadline}: {alarms} alarms > previous {prev}"
        );
        prev = alarms;
    }
}

#[test]
fn post_mortem_alarms_grow_with_grace_period() {
    let world = attacked_world();
    let mut prev = 0usize;
    for grace_h in [0.5, 2.0, 8.0, 48.0] {
        let alarms = PostMortemAudit {
            grace_period_s: grace_h * 3600.0,
        }
        .analyze(&world)
        .alarm_count();
        assert!(alarms >= prev, "grace {grace_h} h: {alarms} < {prev}");
        prev = alarms;
    }
}

#[test]
fn fairness_alarms_shrink_with_latency_factor() {
    let world = attacked_world();
    let mut prev = usize::MAX;
    for factor in [2.0, 5.0, 20.0, 100.0] {
        let alarms = FairnessAudit {
            latency_factor: factor,
        }
        .analyze(&world)
        .alarm_count();
        assert!(alarms <= prev, "factor {factor}: {alarms} > {prev}");
        prev = alarms;
    }
}

#[test]
fn every_alarm_names_a_real_node_within_the_run() {
    let world = attacked_world();
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(TrajectoryAudit {
            max_response_s: 100_000.0,
        }),
        Box::new(EnergyReportAudit::default()),
        Box::new(FairnessAudit::default()),
        Box::new(PostMortemAudit::default()),
    ];
    for detector in detectors {
        for alarm in &detector.analyze(&world).alarms {
            assert!(alarm.node.0 < world.network().node_count(), "{alarm:?}");
            assert!(alarm.time_s >= 0.0 && alarm.time_s <= world.time_s() + 1e-6);
            assert!(!alarm.detail.is_empty());
        }
    }
}

#[test]
fn verdicts_survive_snapshot_round_trip() {
    let world = attacked_world();
    let json = serde_json::to_string(&world).unwrap();
    let back: World = serde_json::from_str(&json).unwrap();
    for detector in [
        Box::new(EnergyReportAudit::default()) as Box<dyn Detector>,
        Box::new(PostMortemAudit::default()),
        Box::new(FairnessAudit::default()),
    ] {
        assert_eq!(
            detector.analyze(&world).alarms,
            detector.analyze(&back).alarms,
            "{} verdicts changed across round-trip",
            detector.name()
        );
    }
}
