//! Quickstart: the physics of charging spoofing in twenty lines.
//!
//! Builds the attack's physical primitive — two transmit antennas tuned so
//! their fields cancel at a victim — and shows that the victim harvests
//! nothing while both antennas radiate at full power.
//!
//! Run with: `cargo run --example quickstart`

use wrsn::em::{superposition, CancelController, Transmitter};

fn main() {
    // A benign charger parked one metre from a sensor node.
    let primary = Transmitter::powercast().at(0.0, 0.0);
    let victim = (1.0, 0.0);
    let honest_w = primary.solo_power_at(victim);
    println!("honest charging power at 1 m:    {:.4} W", honest_w);

    // The attacker adds a second antenna 30 cm to the side and tunes its
    // phase and power so the two arrivals cancel at the victim.
    let helper = Transmitter::powercast().at(0.3, 0.0);
    let controller = CancelController::new(&primary, &helper);
    let solution = controller.solve(victim);
    println!(
        "helper tuned to phase {:.3} rad at {:.0} % power",
        solution.helper_phase,
        solution.helper_power_factor * 100.0
    );
    println!(
        "spoofed charging power at 1 m:   {:.3e} W  ({:.4} % of honest)",
        solution.residual_power_w,
        100.0 * solution.residual_power_w / honest_w
    );

    // The same law, stated as waves: |a·e^{jφ} + a·e^{j(φ+π)}|² = 0.
    let w1 = primary.wave_at(victim);
    let w2 = controller.cancelling_wave(victim);
    println!(
        "coherent sum of the two waves:   {:.3e} W (naive sum would be {:.4} W)",
        superposition::received_power(&[w1, w2]),
        superposition::incoherent_power(&[w1, w2])
    );

    // Imperfect attackers still suppress almost everything.
    for (pe, ae) in [(0.05, 0.02), (0.1, 0.05), (0.3, 0.1)] {
        let residual = controller.residual_with_errors(victim, pe, ae);
        println!(
            "with {pe:.2} rad / {:.0} % tuning error: {:.2} % of honest power leaks through",
            ae * 100.0,
            100.0 * residual / honest_w
        );
    }

    println!("\nThe node believes it is being charged. It is being murdered.");
}
