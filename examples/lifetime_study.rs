//! Network lifetime under different chargers — benign and malicious.
//!
//! Runs the same 60-node network under every benign policy (NJNP, periodic
//! TSP, EDF), no charger at all, and the Charging Spoofing Attack, and
//! prints lifetime, survivors and delivered energy side by side.
//!
//! Run with: `cargo run --release --example lifetime_study`

use wrsn::charge::{EarliestDeadlineFirst, Njnp, PeriodicTsp};
use wrsn::core::attack::CsaAttackPolicy;
use wrsn::scenario::Scenario;
use wrsn::sim::{ChargerPolicy, IdlePolicy, SimReport};

fn show(report: &SimReport) {
    println!(
        "{:<16} alive {:>3}/{:<3}  lifetime {:>8}  delivered {:>9.1} J  charger spent {:>8.0} J",
        report.policy_name,
        report.alive_nodes,
        report.alive_nodes + report.dead_nodes,
        report
            .network_lifetime_s
            .map(|t| format!("{:.1} h", t / 3600.0))
            .unwrap_or_else(|| "survived".to_string()),
        report.total_delivered_j,
        report.charger_energy_used_j,
    );
}

fn main() {
    let scenario = Scenario::paper_scale(60, 21);
    println!(
        "60 nodes, {:.0}×{:.0} m field, {:.0} kJ charger budget, {:.0} h horizon\n",
        scenario.field_side_m,
        scenario.field_side_m,
        scenario.mc_energy_j / 1e3,
        scenario.horizon_s / 3600.0
    );

    let depot = scenario.sink();
    let mut policies: Vec<Box<dyn ChargerPolicy>> = vec![
        Box::new(IdlePolicy),
        Box::new(Njnp::new()),
        Box::new(PeriodicTsp::new(depot, 50_000.0)),
        Box::new(EarliestDeadlineFirst::new()),
        Box::new(CsaAttackPolicy::new(scenario.tide_config())),
    ];

    for policy in policies.iter_mut() {
        let mut world = scenario.build();
        let report = world.run(policy.as_mut()).expect("run");
        show(&report);
    }

    println!(
        "\nBenign chargers extend lifetime; the spoofing charger radiates like one\n\
         while the network dies faster than with no charger at all (key nodes first)."
    );
}
