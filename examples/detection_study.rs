//! Why doesn't anyone notice? The detection study.
//!
//! Runs five charger behaviours on identical 80-node worlds — honest NJNP,
//! the window-aware CSA, a window-oblivious eager spoofer, a selective-
//! neglect attacker, and an absent charger — then audits each run with the
//! live detector suite *and* the forensic extensions, printing who gets
//! caught by what.
//!
//! Run with: `cargo run --release --example detection_study`

use wrsn::core::attack::{CsaAttackPolicy, EagerSpoofPolicy, SelectiveNeglectPolicy};
use wrsn::core::detect::{self, Detector, FairnessAudit, PostMortemAudit};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;
use wrsn::sim::{IdlePolicy, World};

fn detectors() -> Vec<Box<dyn Detector>> {
    let mut suite = detect::standard_detectors();
    suite.push(Box::new(FairnessAudit::default()));
    suite.push(Box::new(PostMortemAudit::default()));
    suite
}

const SHORT_NAMES: [&str; 5] = ["traject", "rf", "energy", "fairness", "mortem"];

fn audit(label: &str, world: &World, victims: &[NodeId]) {
    print!("{label:<18}");
    for detector in detectors() {
        let report = detector.analyze(world);
        match report.detection_ratio(victims) {
            Some(ratio) => print!("  {:>7.1} %", ratio * 100.0),
            None => print!("  {:>9}", "n/a"),
        }
    }
    println!();
}

fn main() {
    // Depot-provisioned worlds: honest behaviours are judged adequately
    // resourced, so their audit rows measure detector quality, not budget
    // starvation.
    let scenario = Scenario::paper_scale(80, 11).with_depot();

    // Honest charging.
    let mut honest = scenario.build();
    honest.run(&mut wrsn::charge::Njnp::new()).expect("run");
    let honest_served: Vec<NodeId> = honest.trace().sessions().iter().map(|s| s.node).collect();

    // The window-aware attack.
    let mut csa_world = scenario.build();
    let mut csa_policy = CsaAttackPolicy::new(scenario.tide_config());
    csa_world.run(&mut csa_policy).expect("run");
    let csa_victims: Vec<NodeId> = csa_policy.targets().iter().map(|&(n, _)| n).collect();

    // The naive spoofer: fakes a charge the moment anyone asks.
    let mut eager_world = scenario.build();
    let mut eager = EagerSpoofPolicy::new(3_000.0);
    eager_world.run(&mut eager).expect("run");
    let eager_victims: Vec<NodeId> = eager_world
        .trace()
        .sessions()
        .iter()
        .map(|s| s.node)
        .collect();

    // The no-hardware attacker: just never visits its victims.
    let mut neglect_world = scenario.build();
    let mut neglect = SelectiveNeglectPolicy::new();
    neglect_world.run(&mut neglect).expect("run");
    let neglect_victims = neglect.census();

    // No charger at all.
    let mut absent = scenario.build();
    absent.run(&mut IdlePolicy).expect("run");
    let everyone: Vec<NodeId> = absent.network().ids().collect();

    print!("{:<18}", "behaviour");
    for name in SHORT_NAMES {
        print!("  {name:>9}");
    }
    println!("\n{}", "-".repeat(18 + 11 * SHORT_NAMES.len()));
    audit("honest-njnp", &honest, &honest_served);
    audit("csa", &csa_world, &csa_victims);
    audit("eager-spoof", &eager_world, &eager_victims);
    audit("selective-neglect", &neglect_world, &neglect_victims);
    audit("absent", &absent, &everyone);

    println!(
        "\nCSA exhausted {}/{} victims; every live audit reads 0 %. Only the\n\
         post-mortem forensic sees it — one alarm per victim, each at the\n\
         moment that victim dies.",
        csa_victims
            .iter()
            .filter(|n| csa_world
                .network()
                .node(**n)
                .map(|x| !x.is_alive())
                .unwrap_or(false))
            .count(),
        csa_victims.len(),
    );
}
