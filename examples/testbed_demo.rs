//! The emulated benchtop, end to end: the Section-II measurement campaigns
//! and the 8-mote attack experiment, printed the way a lab notebook would.
//!
//! Run with: `cargo run --release --example testbed_demo`

use wrsn::testbed::{measure, run_bench_experiment, TestbedParams};

fn main() {
    let params = TestbedParams::default();

    println!("== measurement 1: two-wave superposition (the attack's physics) ==");
    for (dphi, label) in [(0.0, "in phase"), (std::f64::consts::PI, "antiphase")] {
        let (p1, p2, together, naive) = measure::superposition_check(&params, dphi);
        println!(
            "  {label:<9} P1 = {p1:.2} W, P2 = {p2:.2} W → together {together:.2} W (naive sum: {naive:.2} W)"
        );
    }

    println!("\n== measurement 2: charging power vs distance, model fit ==");
    let distances: Vec<f64> = (2..=20).map(|k| k as f64 * 0.1).collect();
    let (series, fit) = measure::distance_campaign(&params, &distances);
    for (d, _, measured) in series.samples.iter().step_by(4) {
        println!("  d = {d:.1} m → {measured:.3} W");
    }
    println!(
        "  fit: P(d) = {:.3}/(d + {:.3})²   (R² = {:.3})",
        fit.alpha, fit.beta, fit.r_squared
    );

    println!("\n== measurement 3: how precise must the cancellation be? ==");
    for (pe, ae, residual) in
        measure::cancellation_robustness_campaign(&params, &[0.0, 0.05, 0.2], &[0.02])
    {
        println!(
            "  phase err {pe:.2} rad, amp err {:.0} % → {:.2} % of honest power leaks",
            ae * 100.0,
            residual * 100.0
        );
    }

    println!("\n== the 8-mote experiment: honest charging vs the spoofing charger ==");
    let outcome = run_bench_experiment(&params, 120_000.0);
    println!(
        "  {:<6} {:>4} {:>20} {:>20} {:>12} {:>8}",
        "mote", "key", "honest delivered (J)", "attack delivered (J)", "death (h)", "flagged"
    );
    for row in &outcome.rows {
        println!(
            "  {:<6} {:>4} {:>20.1} {:>20.1} {:>12} {:>8}",
            row.node.to_string(),
            if row.is_key { "yes" } else { "no" },
            row.honest_delivered_j,
            row.attack_delivered_j,
            row.attack_death_s
                .map(|t| format!("{:.1}", t / 3600.0))
                .unwrap_or_else(|| "alive".into()),
            if row.flagged { "YES" } else { "no" },
        );
    }
    println!(
        "\n  honest run: {}/8 motes alive; attack run: {}/8 alive, {}/{} targeted victims exhausted, detection ratio {:.0} %",
        outcome.honest.alive_nodes,
        outcome.attack.alive_nodes,
        outcome.outcome.exhausted,
        outcome.outcome.targeted,
        outcome.detection_ratio * 100.0
    );
}
