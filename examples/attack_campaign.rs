//! A full Charging Spoofing Attack campaign on a 100-node network.
//!
//! Derives the TIDE instance (key nodes, time windows), plans with CSA,
//! executes the attack in the simulated world, and prints what the paper's
//! evaluation headlines: how many key nodes were exhausted, and at what cost.
//!
//! Run with: `cargo run --release --example attack_campaign`

use wrsn::core::attack::{evaluate_attack, CsaAttackPolicy};
use wrsn::core::csa;
use wrsn::core::tide::TideInstance;
use wrsn::scenario::Scenario;

fn main() {
    let scenario = Scenario::paper_scale(100, 7);
    let mut world = scenario.build();

    // What the attacker sees before it starts.
    let census = TideInstance::from_world(&world, &scenario.tide_config());
    println!(
        "network: {} nodes, {} key nodes (total weight {:.1})",
        world.network().node_count(),
        census.victim_count(),
        census.total_weight()
    );
    let plan = csa::plan(&census);
    println!(
        "CSA static plan: {} victims, utility {:.1}, energy {:.0} kJ of {:.0} kJ budget",
        plan.len(),
        census.utility(&plan),
        census.energy_cost(&plan) / 1e3,
        census.budget_j / 1e3
    );
    for (k, stop) in plan.stops().iter().take(5).enumerate() {
        let v = &census.victims[stop.victim];
        println!(
            "  stop {k}: node {} (weight {:.1}) — window [{:.0}, {:.0}] s, begin {:.0} s, masquerade {:.0} s",
            v.node, v.weight, v.window.open_s, v.window.close_s, stop.begin_s, v.service_s
        );
    }
    if plan.len() > 5 {
        println!("  … and {} more stops", plan.len() - 5);
    }

    // Execute adaptively (replanning after each kill).
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    let report = world.run(&mut policy).expect("run");
    let outcome = evaluate_attack(&world, &policy);

    println!(
        "\nafter {:.1} simulated hours:",
        report.final_time_s / 3600.0
    );
    println!(
        "  targeted {} victims, exhausted {} ({:.0} %)",
        outcome.targeted,
        outcome.exhausted,
        outcome.exhausted_ratio * 100.0
    );
    println!(
        "  key nodes exhausted under a masquerade: {:.0} % of the census (paper headline: ≥80 %)",
        outcome.covered_exhausted_ratio * 100.0
    );
    println!(
        "  key nodes dead for any reason: {:.0} % of the census",
        outcome.key_node_exhausted_ratio * 100.0
    );
    println!(
        "  charger spent {:.0} kJ; delivered {:.2} J to victims across {} fake sessions",
        report.charger_energy_used_j / 1e3,
        report.total_delivered_j,
        report.sessions
    );
    println!(
        "  network: {}/{} nodes alive, sink reachability {:.0} %",
        report.alive_nodes,
        report.alive_nodes + report.dead_nodes,
        report.final_health.sink_reachability * 100.0
    );
    if let Some(t) = report.network_lifetime_s {
        println!("  network lifetime ended at {:.1} h", t / 3600.0);
    }
}
