//! 2-D geometry: points, distances and rectangular field regions.

use serde::{Deserialize, Serialize};

/// A point in the 2-D deployment field, metres.
///
/// # Example
///
/// ```
/// use wrsn_net::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate, metres.
    pub x: f64,
    /// Y coordinate, metres.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point at `(x, y)`.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, metres.
    pub fn distance(&self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance to `other` (cheaper; use for comparisons).
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The midpoint of the segment to `other`.
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// A point `frac` of the way from `self` to `other` (`0` = self, `1` =
    /// other); values outside `[0, 1]` extrapolate.
    pub fn lerp(&self, other: Point, frac: f64) -> Point {
        Point::new(
            self.x + frac * (other.x - self.x),
            self.y + frac * (other.y - self.y),
        )
    }

    /// The point at distance `offset` from `self` along the direction to
    /// `toward`; if the two points coincide, returns `self`.
    pub fn toward(&self, toward: Point, offset: f64) -> Point {
        let d = self.distance(toward);
        if d == 0.0 {
            *self
        } else {
            self.lerp(toward, offset / d)
        }
    }

    /// Conversion to a raw `(x, y)` tuple (used by the physics layer).
    pub fn into_tuple(self) -> (f64, f64) {
        (self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> (f64, f64) {
        (p.x, p.y)
    }
}

/// Total length of the polyline through `points`, metres.
pub fn path_length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// An axis-aligned rectangular deployment field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    min: Point,
    max: Point,
}

impl Region {
    /// Creates a region spanning `[x0, x1] × [y0, y1]`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is inverted or degenerate (`x1 ≤ x0` or
    /// `y1 ≤ y0`) or any bound is non-finite.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(
            x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite(),
            "region bounds must be finite"
        );
        assert!(x1 > x0 && y1 > y0, "region must have positive area");
        Region {
            min: Point::new(x0, y0),
            max: Point::new(x1, y1),
        }
    }

    /// A `side × side` square with its corner at the origin.
    pub fn square(side: f64) -> Self {
        Region::new(0.0, 0.0, side, side)
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width, metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height, metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area, square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The centre of the region.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    pub fn contains(&self, p: Point) -> bool {
        (self.min.x..=self.max.x).contains(&p.x) && (self.min.y..=self.max.y).contains(&p.y)
    }

    /// Clamps `p` to the region.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance_sq(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
    }

    #[test]
    fn toward_moves_exact_offset() {
        let a = Point::ORIGIN;
        let b = Point::new(10.0, 0.0);
        let c = a.toward(b, 3.0);
        assert!((c.x - 3.0).abs() < 1e-12 && c.y.abs() < 1e-12);
    }

    #[test]
    fn toward_same_point_is_identity() {
        let a = Point::new(2.0, 2.0);
        assert_eq!(a.toward(a, 5.0), a);
    }

    #[test]
    fn path_length_of_triangle() {
        let pts = [Point::ORIGIN, Point::new(3.0, 0.0), Point::new(3.0, 4.0)];
        assert!((path_length(&pts) - 7.0).abs() < 1e-12);
        assert_eq!(path_length(&pts[..1]), 0.0);
        assert_eq!(path_length(&[]), 0.0);
    }

    #[test]
    fn region_contains_and_clamp() {
        let r = Region::square(10.0);
        assert!(r.contains(Point::new(0.0, 10.0)));
        assert!(!r.contains(Point::new(-0.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-5.0, 12.0)), Point::new(0.0, 10.0));
    }

    #[test]
    fn region_geometry() {
        let r = Region::new(1.0, 2.0, 4.0, 8.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 18.0);
        assert_eq!(r.center(), Point::new(2.5, 5.0));
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn inverted_region_panics() {
        let _ = Region::new(5.0, 0.0, 1.0, 1.0);
    }
}
