//! Network-level health metrics: survival, coverage, connectivity.

use serde::{Deserialize, Serialize};

use crate::graph::Network;
use crate::routing::RoutingTree;

/// A snapshot of network health at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Number of alive nodes.
    pub alive: usize,
    /// Total number of nodes.
    pub total: usize,
    /// Fraction of alive nodes that can reach the sink.
    pub sink_reachability: f64,
    /// Fraction of the field covered by alive nodes' sensing disks.
    pub coverage: f64,
    /// Whether the alive subgraph is connected.
    pub connected: bool,
}

impl HealthSnapshot {
    /// Fraction of nodes still alive.
    pub fn survival_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.alive as f64 / self.total as f64
        }
    }
}

/// Computes a health snapshot of `net` with the given sensing radius used for
/// coverage estimation (`coverage_grid` sample points per axis).
pub fn snapshot(net: &Network, sensing_radius_m: f64, coverage_grid: usize) -> HealthSnapshot {
    let mask = net.alive_mask();
    let alive = mask.iter().filter(|&&a| a).count();
    HealthSnapshot {
        alive,
        total: net.node_count(),
        sink_reachability: net.sink_reachability(&mask),
        coverage: coverage(net, &mask, sensing_radius_m, coverage_grid),
        connected: net.is_connected(&mask),
    }
}

/// Monte-Carlo-free coverage estimate: fraction of a `grid × grid` lattice of
/// sample points (over the nodes' bounding box) within `sensing_radius_m` of
/// an alive node. A degenerate bounding-box axis (single node, collinear
/// deployment) is padded by `sensing_radius_m` on both sides so such
/// deployments still report the coverage their sensing disks provide.
/// Returns `0.0` for an empty network or a non-positive sensing radius.
pub fn coverage(net: &Network, mask: &[bool], sensing_radius_m: f64, grid: usize) -> f64 {
    if net.node_count() == 0 || grid == 0 || sensing_radius_m <= 0.0 {
        return 0.0;
    }
    let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for p in net.positions() {
        x0 = x0.min(p.x);
        y0 = y0.min(p.y);
        x1 = x1.max(p.x);
        y1 = y1.max(p.y);
    }
    if x1 <= x0 {
        x0 -= sensing_radius_m;
        x1 += sensing_radius_m;
    }
    if y1 <= y0 {
        y0 -= sensing_radius_m;
        y1 += sensing_radius_m;
    }
    let r2 = sensing_radius_m * sensing_radius_m;
    let mut covered = 0usize;
    for gy in 0..grid {
        for gx in 0..grid {
            let px = x0 + (x1 - x0) * (gx as f64 + 0.5) / grid as f64;
            let py = y0 + (y1 - y0) * (gy as f64 + 0.5) / grid as f64;
            let hit = net.positions().iter().enumerate().any(|(i, p)| {
                mask.get(i).copied().unwrap_or(false) && {
                    let dx = p.x - px;
                    let dy = p.y - py;
                    dx * dx + dy * dy <= r2
                }
            });
            if hit {
                covered += 1;
            }
        }
    }
    covered as f64 / (grid * grid) as f64
}

/// Estimated time (s) until the first node dies under current steady-state
/// power draw, or `None` if no node is draining.
pub fn time_to_first_death(net: &Network, power_w: &[f64]) -> Option<f64> {
    (0..net.node_count())
        .zip(power_w)
        .filter(|&(i, &p)| net.alive(i) && p > 0.0)
        .map(|(i, &p)| net.levels_j()[i] / p)
        .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}

/// The classical "network lifetime" definition used in the evaluation: time
/// until the sink-reachable fraction first drops below `threshold`
/// (e.g. `0.9`). This helper just evaluates the predicate on a snapshot; the
/// simulator tracks the crossing time.
pub fn is_alive_by_reachability(net: &Network, tree: &RoutingTree, threshold: f64) -> bool {
    let alive = net.alive_mask().iter().filter(|&&a| a).count();
    if alive == 0 {
        return false;
    }
    tree.reachable_count() as f64 / alive as f64 >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy;
    use crate::geom::{Point, Region};
    use crate::node::SensorNode;

    fn small_net() -> Network {
        let nodes = deploy::grid(&Region::square(40.0), 4, 4, 0.0, 0);
        Network::build(nodes, Point::new(20.0, 20.0), 15.0)
    }

    #[test]
    fn fresh_network_snapshot_is_healthy() {
        let net = small_net();
        let s = snapshot(&net, 10.0, 20);
        assert_eq!(s.alive, 16);
        assert_eq!(s.survival_rate(), 1.0);
        assert_eq!(s.sink_reachability, 1.0);
        assert!(s.connected);
        assert!(s.coverage > 0.9, "coverage = {}", s.coverage);
    }

    #[test]
    fn killing_nodes_reduces_coverage_and_survival() {
        let mut net = small_net();
        for i in 0..8 {
            let cap = net.capacities_j()[i];
            net.energy_mut().discharge(i, cap);
        }
        let s = snapshot(&net, 10.0, 20);
        assert_eq!(s.alive, 8);
        assert_eq!(s.survival_rate(), 0.5);
        assert!(s.coverage < 0.9);
    }

    #[test]
    fn coverage_zero_for_empty_net() {
        let net = Network::build(Vec::new(), Point::ORIGIN, 10.0);
        assert_eq!(coverage(&net, &[], 5.0, 10), 0.0);
    }

    #[test]
    fn coverage_positive_for_single_point_bbox() {
        // A lone node covers a disk; the padded bbox is a 2r × 2r square, so
        // the lattice estimate approaches π/4 ≈ 0.785.
        let net = Network::build(vec![SensorNode::new(Point::ORIGIN)], Point::ORIGIN, 10.0);
        let c = coverage(&net, &[true], 5.0, 40);
        assert!(
            (c - std::f64::consts::FRAC_PI_4).abs() < 0.05,
            "coverage = {c}"
        );
        // A dead lone node still covers nothing.
        assert_eq!(coverage(&net, &[false], 5.0, 40), 0.0);
    }

    #[test]
    fn coverage_positive_for_collinear_deployment() {
        // Five nodes on a horizontal line: the y-axis bbox is degenerate, but
        // the sensing disks obviously cover area. The padded band is
        // 60 m × 10 m; disks of radius 5 m every 10 m cover most of it.
        let nodes: Vec<SensorNode> = (0..5)
            .map(|i| SensorNode::new(Point::new(10.0 * i as f64, 20.0)))
            .collect();
        let net = Network::build(nodes, Point::new(20.0, 20.0), 15.0);
        let c = coverage(&net, &[true; 5], 5.0, 40);
        assert!(c > 0.5, "line deployment must report coverage, got {c}");
        assert!(c <= 1.0);
    }

    #[test]
    fn time_to_first_death_picks_weakest() {
        let net = small_net();
        let mut power = vec![1.0; 16];
        power[3] = 100.0; // hottest node
        let t = time_to_first_death(&net, &power).unwrap();
        let expect = net.levels_j()[3] / 100.0;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn time_to_first_death_none_without_drain() {
        let net = small_net();
        assert!(time_to_first_death(&net, &[0.0; 16]).is_none());
    }

    #[test]
    fn reachability_lifetime_predicate() {
        let net = small_net();
        let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
        assert!(is_alive_by_reachability(&net, &tree, 0.9));
    }
}
