//! Key-node identification.
//!
//! *Key nodes* are the nodes whose exhaustion hurts the network most: cut
//! vertices (their death partitions the graph) and high-traffic relays (their
//! death severs many routes and strands the most data). These are exactly the
//! targets the Charging Spoofing Attack goes after; the paper's headline
//! metric is the fraction of key nodes the attacker exhausts.

use serde::{Deserialize, Serialize};

use crate::energy::RadioEnergyModel;
use crate::graph::Network;
use crate::node::NodeId;
use crate::routing::{self, RoutingTree};

/// Why a node was classified as key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyReason {
    /// Removing the node disconnects the communication graph.
    CutVertex,
    /// The node is among the top traffic relays.
    TrafficHub,
    /// Both a cut vertex and a traffic hub.
    Both,
}

/// A key node with its criticality weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyNode {
    /// The node's id.
    pub id: NodeId,
    /// Why the node is key.
    pub reason: KeyReason,
    /// Criticality weight (≥ 1): the number of nodes stranded from the sink if
    /// this node dies, normalised by network size, plus a betweenness term.
    /// Used as the attack's per-victim utility.
    pub weight: f64,
}

/// Configuration for key-node identification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyNodeConfig {
    /// Fraction of nodes (by betweenness rank) labelled traffic hubs.
    pub hub_fraction: f64,
    /// Include cut vertices regardless of rank.
    pub include_cut_vertices: bool,
    /// Largest network for which the exact pipeline (Brandes betweenness,
    /// Tarjan articulation points, per-candidate stranded counts) runs.
    /// Beyond this, [`identify_with_mask`] switches to the near-linear
    /// approximation: hubs ranked by relayed traffic on the routing tree,
    /// cut vertices skipped. The default never approximates.
    pub max_exact_nodes: usize,
}

impl Default for KeyNodeConfig {
    fn default() -> Self {
        KeyNodeConfig {
            hub_fraction: 0.1,
            include_cut_vertices: true,
            max_exact_nodes: usize::MAX,
        }
    }
}

/// Number of alive nodes stranded from the sink if `victim` dies.
pub fn stranded_if_dead(net: &Network, mask: &[bool], victim: NodeId) -> usize {
    let before = RoutingTree::shortest_path(net, mask).reachable_count();
    let mut m = mask.to_vec();
    if victim.0 < m.len() {
        m[victim.0] = false;
    }
    let after = RoutingTree::shortest_path(net, &m).reachable_count();
    // The victim itself no longer counts as reachable; subtract it out.
    before.saturating_sub(after).saturating_sub(1)
}

/// Identifies the key nodes of the subgraph induced by the alive mask.
///
/// Returns key nodes sorted by descending weight. Weights combine the number
/// of nodes stranded by the victim's death with its (normalised) betweenness,
/// so every key node has `weight ≥ 1`.
///
/// # Example
///
/// ```
/// use wrsn_net::prelude::*;
///
/// let (region, nodes) = deploy::corridor(12, 4, 1);
/// let sink = Point::new(10.0, 50.0);
/// let net = Network::build(nodes, sink, 30.0);
/// let keys = keynode::identify(&net, &KeyNodeConfig::default());
/// assert!(!keys.is_empty());
/// # let _ = region;
/// ```
pub fn identify(net: &Network, config: &KeyNodeConfig) -> Vec<KeyNode> {
    let mask = net.alive_mask();
    identify_with_mask(net, &mask, config)
}

/// [`identify`] over an explicit alive mask.
#[allow(clippy::needless_range_loop)] // index form mirrors the matrix math
pub fn identify_with_mask(net: &Network, mask: &[bool], config: &KeyNodeConfig) -> Vec<KeyNode> {
    let n = net.node_count();
    if n == 0 {
        return Vec::new();
    }
    if n > config.max_exact_nodes {
        return identify_approx(net, mask, config);
    }
    let cuts: std::collections::HashSet<NodeId> = if config.include_cut_vertices {
        net.articulation_points(mask).into_iter().collect()
    } else {
        std::collections::HashSet::new()
    };

    let cb = net.betweenness(mask);
    let max_cb = cb.iter().cloned().fold(0.0f64, f64::max);
    let mut ranked: Vec<usize> = (0..n)
        .filter(|&i| mask.get(i).copied().unwrap_or(false))
        .collect();
    ranked.sort_by(|&a, &b| {
        cb[b]
            .partial_cmp(&cb[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let hub_count = ((n as f64 * config.hub_fraction).ceil() as usize).min(ranked.len());
    let hubs: std::collections::HashSet<NodeId> = ranked[..hub_count]
        .iter()
        .copied()
        .filter(|&i| cb[i] > 0.0)
        .map(NodeId)
        .collect();

    let mut out = Vec::new();
    for i in 0..n {
        let id = NodeId(i);
        let is_cut = cuts.contains(&id);
        let is_hub = hubs.contains(&id);
        if !is_cut && !is_hub {
            continue;
        }
        let reason = match (is_cut, is_hub) {
            (true, true) => KeyReason::Both,
            (true, false) => KeyReason::CutVertex,
            _ => KeyReason::TrafficHub,
        };
        let stranded = stranded_if_dead(net, mask, id) as f64;
        let cb_norm = if max_cb > 0.0 { cb[i] / max_cb } else { 0.0 };
        out.push(KeyNode {
            id,
            reason,
            weight: 1.0 + stranded + cb_norm,
        });
    }
    out.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    out
}

/// Near-linear key-node identification for networks past
/// [`KeyNodeConfig::max_exact_nodes`]: one routing-tree build ranks alive
/// nodes by relayed inbound traffic — the quantity betweenness is a proxy
/// for in a sink-rooted WRSN — and the top `hub_fraction` become hubs with
/// `weight = 1 + rx / max_rx`. Cut vertices and stranded counts are skipped
/// (each would cost further full graph traversals per candidate).
fn identify_approx(net: &Network, mask: &[bool], config: &KeyNodeConfig) -> Vec<KeyNode> {
    let n = net.node_count();
    let tree = RoutingTree::shortest_path(net, mask);
    let load = routing::traffic_load(net, &tree, mask);
    let mut ranked: Vec<usize> = (0..n)
        .filter(|&i| mask.get(i).copied().unwrap_or(false) && load.rx_bps[i] > 0.0)
        .collect();
    ranked.sort_by(|&a, &b| {
        load.rx_bps[b]
            .partial_cmp(&load.rx_bps[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    let hub_count = ((n as f64 * config.hub_fraction).ceil() as usize).min(ranked.len());
    let max_rx = ranked.first().map(|&i| load.rx_bps[i]).unwrap_or(0.0);
    let mut out: Vec<KeyNode> = ranked[..hub_count]
        .iter()
        .map(|&i| KeyNode {
            id: NodeId(i),
            reason: KeyReason::TrafficHub,
            weight: 1.0
                + if max_rx > 0.0 {
                    load.rx_bps[i] / max_rx
                } else {
                    0.0
                },
        })
        .collect();
    out.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    out
}

/// Steady-state power draw (W) of each node — convenience wrapper combining
/// the routing tree, traffic load and radio model. The attacker uses this to
/// predict each victim's depletion deadline.
pub fn power_draw(net: &Network, mask: &[bool], radio: &RadioEnergyModel) -> Vec<f64> {
    let tree = RoutingTree::shortest_path(net, mask);
    let load = routing::traffic_load(net, &tree, mask);
    routing::node_power(net, &tree, &load, radio, mask)
}

/// [`power_draw`] with the *disconnected-drain floor*: alive nodes that
/// cannot reach the sink still idle-listen and beacon their sensed data at
/// full range looking for a route, so they drain
/// `idle + tx(sensing_rate, comm_range)` rather than nothing. This is the
/// drain model the simulator itself uses; depletion predictions (and the
/// attack's time windows) must match it, or stranded key nodes become
/// invisible to the planner.
pub fn effective_power_draw(net: &Network, mask: &[bool], radio: &RadioEnergyModel) -> Vec<f64> {
    let tree = RoutingTree::shortest_path(net, mask);
    let load = routing::traffic_load(net, &tree, mask);
    effective_power_draw_with_tree(net, mask, radio, &tree, &load)
}

/// [`effective_power_draw`] from a precomputed routing tree and traffic load
/// — the hot-path variant. The simulator keeps both current across topology
/// changes, so a refresh no longer pays for a second shortest-path build.
pub fn effective_power_draw_with_tree(
    net: &Network,
    mask: &[bool],
    radio: &RadioEnergyModel,
    tree: &RoutingTree,
    load: &routing::TrafficLoad,
) -> Vec<f64> {
    (0..net.node_count())
        .map(|i| effective_node_power(net, mask, radio, tree, load, i))
        .collect()
}

/// Below this node count the parallel power-draw recompute falls back to the
/// sequential map: spawn overhead would dominate.
const PARALLEL_POWER_MIN_NODES: usize = 8192;

/// [`effective_power_draw_with_tree`] fanned over `threads` scoped worker
/// threads. [`effective_node_power`] is pure and bitwise-stable per node, and
/// each worker writes a disjoint contiguous chunk of the output, so the
/// result is identical at any thread count.
pub fn effective_power_draw_with_tree_threads(
    net: &Network,
    mask: &[bool],
    radio: &RadioEnergyModel,
    tree: &RoutingTree,
    load: &routing::TrafficLoad,
    threads: usize,
) -> Vec<f64> {
    let n = net.node_count();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n < PARALLEL_POWER_MIN_NODES {
        return effective_power_draw_with_tree(net, mask, radio, tree, load);
    }
    let mut power = vec![0.0f64; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, out) in power.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let base = c * chunk;
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = effective_node_power(net, mask, radio, tree, load, base + k);
                }
            });
        }
    });
    power
}

/// Effective power draw of a single node: relay power over the hop to its
/// parent when routed, the disconnected-drain floor when alive but stranded,
/// nothing when dead. Pure in `(mask, aliveness, parent, reachability, load)`
/// — recomputing it with unchanged inputs reproduces the exact same bits,
/// which is what lets [`update_effective_power`] skip untouched nodes.
pub fn effective_node_power(
    net: &Network,
    mask: &[bool],
    radio: &RadioEnergyModel,
    tree: &RoutingTree,
    load: &routing::TrafficLoad,
    i: usize,
) -> f64 {
    let masked_in = mask.get(i).copied().unwrap_or(false);
    let id = NodeId(i);
    if masked_in && tree.is_reachable(id) {
        let hop = match tree.parent(id) {
            Some(p) => net.positions()[i].distance(net.positions()[p.0]),
            None => net.positions()[i].distance(net.sink()),
        };
        radio.relay_power(load.rx_bps[i], load.tx_bps[i], hop)
    } else if masked_in && net.alive(i) {
        radio.idle_w + radio.tx_energy(net.sensing_rates_bps()[i], net.comm_range())
    } else {
        0.0
    }
}

/// Updates `power` in place after an incremental routing repair: only nodes
/// whose routing state may have changed (`affected`, from
/// [`RoutingTree::repair_after_deaths`]) or whose traffic load changed are
/// recomputed. Every other entry is bitwise-stable because its inputs are
/// unchanged. Returns the number of entries recomputed.
#[allow(clippy::too_many_arguments)] // mirrors effective_power_draw's inputs plus the diff state
#[allow(clippy::needless_range_loop)] // co-indexes four same-length vectors
pub fn update_effective_power(
    net: &Network,
    mask: &[bool],
    radio: &RadioEnergyModel,
    tree: &RoutingTree,
    load: &routing::TrafficLoad,
    prev_load: &routing::TrafficLoad,
    affected: &[bool],
    power: &mut [f64],
) -> usize {
    let mut recomputed = 0usize;
    for i in 0..net.node_count() {
        let dirty = affected.get(i).copied().unwrap_or(true)
            || load.rx_bps[i].to_bits() != prev_load.rx_bps[i].to_bits()
            || load.tx_bps[i].to_bits() != prev_load.tx_bps[i].to_bits();
        if dirty {
            power[i] = effective_node_power(net, mask, radio, tree, load, i);
            recomputed += 1;
        }
    }
    recomputed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy;
    use crate::geom::{Point, Region};
    use crate::node::SensorNode;

    fn corridor_net() -> Network {
        let (_, nodes) = deploy::corridor(12, 4, 7);
        Network::build(nodes, Point::new(10.0, 50.0), 30.0)
    }

    #[test]
    fn corridor_bridge_nodes_are_key() {
        let net = corridor_net();
        let keys = identify(&net, &KeyNodeConfig::default());
        assert!(!keys.is_empty());
        // Bridge nodes are ids 24..28 (after 2×12 cluster nodes).
        let bridge_keys = keys.iter().filter(|k| k.id.0 >= 24).count();
        assert!(bridge_keys >= 2, "keys = {keys:?}");
    }

    #[test]
    fn weights_are_sorted_descending_and_at_least_one() {
        let net = corridor_net();
        let keys = identify(&net, &KeyNodeConfig::default());
        for w in keys.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        assert!(keys.iter().all(|k| k.weight >= 1.0));
    }

    #[test]
    fn stranded_counts_far_cluster() {
        let net = corridor_net();
        let mask = net.alive_mask();
        // Killing a mid-bridge node strands the far cluster plus the rest of
        // the bridge: at least 12 nodes.
        let keys = identify(&net, &KeyNodeConfig::default());
        let best = keys[0];
        let stranded = stranded_if_dead(&net, &mask, best.id);
        assert!(stranded >= 12, "stranded = {stranded}");
    }

    #[test]
    fn dense_uniform_net_has_few_or_no_cut_vertices() {
        let nodes = deploy::uniform(&Region::square(50.0), 80, 2);
        let net = Network::build(nodes, Point::new(25.0, 25.0), 25.0);
        let keys = identify(&net, &KeyNodeConfig::default());
        // Hubs exist but the dense net should have almost no cut vertices.
        let cut_like = keys
            .iter()
            .filter(|k| matches!(k.reason, KeyReason::CutVertex | KeyReason::Both))
            .count();
        assert!(cut_like <= 8, "cut-like = {cut_like}");
    }

    #[test]
    fn empty_network_yields_no_keys() {
        let net = Network::build(Vec::new(), Point::ORIGIN, 10.0);
        assert!(identify(&net, &KeyNodeConfig::default()).is_empty());
    }

    #[test]
    fn hub_fraction_zero_keeps_only_cut_vertices() {
        let net = corridor_net();
        let cfg = KeyNodeConfig {
            hub_fraction: 0.0,
            include_cut_vertices: true,
            ..KeyNodeConfig::default()
        };
        let keys = identify(&net, &cfg);
        assert!(keys
            .iter()
            .all(|k| matches!(k.reason, KeyReason::CutVertex | KeyReason::Both)));
    }

    #[test]
    fn threaded_power_draw_matches_sequential() {
        // Above the parallel threshold so the threaded path actually runs.
        let nodes = deploy::uniform(&Region::square(400.0), 9000, 11);
        let net = Network::build(nodes, Point::new(200.0, 200.0), 12.0);
        let mask = net.alive_mask();
        let radio = RadioEnergyModel::classical();
        let tree = RoutingTree::shortest_path(&net, &mask);
        let load = routing::traffic_load(&net, &tree, &mask);
        let seq = effective_power_draw_with_tree(&net, &mask, &radio, &tree, &load);
        for threads in [2, 3, 8] {
            let par =
                effective_power_draw_with_tree_threads(&net, &mask, &radio, &tree, &load, threads);
            assert_eq!(seq.len(), par.len());
            for i in 0..seq.len() {
                assert_eq!(
                    seq[i].to_bits(),
                    par[i].to_bits(),
                    "threads {threads} node {i}"
                );
            }
        }
    }

    #[test]
    fn power_draw_positive_for_reachable_nodes() {
        let net = corridor_net();
        let mask = net.alive_mask();
        let power = power_draw(&net, &mask, &RadioEnergyModel::classical());
        let tree = RoutingTree::shortest_path(&net, &mask);
        for id in net.ids() {
            if tree.is_reachable(id) {
                assert!(power[id.0] > 0.0);
            }
        }
    }

    #[test]
    fn approx_mode_ranks_relays_and_skips_cuts() {
        let net = corridor_net();
        let mask = net.alive_mask();
        let exact = identify_with_mask(&net, &mask, &KeyNodeConfig::default());
        let approx = identify_with_mask(
            &net,
            &mask,
            &KeyNodeConfig {
                max_exact_nodes: 0,
                ..KeyNodeConfig::default()
            },
        );
        assert!(!approx.is_empty());
        assert!(approx
            .iter()
            .all(|k| matches!(k.reason, KeyReason::TrafficHub)));
        for w in approx.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        assert!(approx.iter().all(|k| (1.0..=2.0).contains(&k.weight)));
        // The heaviest relays the exact pipeline finds are still found: the
        // bridge carries everything in a corridor net.
        let exact_ids: std::collections::HashSet<NodeId> = exact.iter().map(|k| k.id).collect();
        assert!(approx.iter().take(2).any(|k| exact_ids.contains(&k.id)));
    }

    #[test]
    fn isolated_node_is_not_key() {
        let mut nodes: Vec<SensorNode> = (0..4)
            .map(|i| SensorNode::new(Point::new(5.0 * i as f64, 0.0)))
            .collect();
        nodes.push(SensorNode::new(Point::new(500.0, 500.0))); // isolated
        let net = Network::build(nodes, Point::new(0.0, 0.0), 6.0);
        let keys = identify(&net, &KeyNodeConfig::default());
        assert!(keys.iter().all(|k| k.id != NodeId(4)));
    }
}
