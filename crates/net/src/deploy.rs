//! Seeded deployment generators.
//!
//! All generators are deterministic in their seed (ChaCha-based), so every
//! experiment in the paper-reproduction harness is exactly reproducible.
//!
//! Deployments of any size feed straight into [`crate::Network::build`],
//! whose grid-bucketed adjacency construction is near-linear in node count —
//! large sweep scenarios no longer pay an O(n²) build per world.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::geom::{Point, Region};
use crate::node::SensorNode;

/// Uniform random deployment of `n` nodes inside `region`.
///
/// # Example
///
/// ```
/// use wrsn_net::{deploy, Region};
///
/// let nodes = deploy::uniform(&Region::square(100.0), 10, 7);
/// assert_eq!(nodes.len(), 10);
/// ```
pub fn uniform(region: &Region, n: usize, seed: u64) -> Vec<SensorNode> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(region.min().x..=region.max().x);
            let y = rng.gen_range(region.min().y..=region.max().y);
            SensorNode::new(Point::new(x, y))
        })
        .collect()
}

/// Regular grid deployment with optional positional jitter.
///
/// Places `cols × rows` nodes on an even grid inside `region`; each position
/// is perturbed by up to `jitter` metres in each axis.
pub fn grid(region: &Region, cols: usize, rows: usize, jitter: f64, seed: u64) -> Vec<SensorNode> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut nodes = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            let fx = (c as f64 + 0.5) / cols as f64;
            let fy = (r as f64 + 0.5) / rows as f64;
            let mut p = Point::new(
                region.min().x + fx * region.width(),
                region.min().y + fy * region.height(),
            );
            if jitter > 0.0 {
                p.x += rng.gen_range(-jitter..=jitter);
                p.y += rng.gen_range(-jitter..=jitter);
            }
            nodes.push(SensorNode::new(region.clamp(p)));
        }
    }
    nodes
}

/// Clustered deployment: `clusters` Gaussian blobs with standard deviation
/// `sigma`, nodes split evenly among them (remainder to the first clusters).
///
/// Clustered topologies produce pronounced cut vertices — the bridges between
/// blobs — and are therefore the attack's most favourable terrain.
pub fn clustered(
    region: &Region,
    n: usize,
    clusters: usize,
    sigma: f64,
    seed: u64,
) -> Vec<SensorNode> {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| {
            Point::new(
                rng.gen_range(region.min().x..=region.max().x),
                rng.gen_range(region.min().y..=region.max().y),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            // Box–Muller normal offsets.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let mag = (-2.0 * u1.ln()).sqrt();
            let dx = sigma * mag * (2.0 * std::f64::consts::PI * u2).cos();
            let dy = sigma * mag * (2.0 * std::f64::consts::PI * u2).sin();
            SensorNode::new(region.clamp(Point::new(c.x + dx, c.y + dy)))
        })
        .collect()
}

/// A "corridor" deployment: two dense clusters joined by a sparse line of
/// relay nodes — the canonical topology where killing a handful of key nodes
/// severs the network. Used by the worked examples and tests.
pub fn corridor(n_per_cluster: usize, n_bridge: usize, seed: u64) -> (Region, Vec<SensorNode>) {
    let region = Region::new(0.0, 0.0, 200.0, 100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut nodes = Vec::new();
    for (cx, cy) in [(30.0, 50.0), (170.0, 50.0)] {
        for _ in 0..n_per_cluster {
            let x = cx + rng.gen_range(-25.0..=25.0);
            let y = cy + rng.gen_range(-25.0..=25.0);
            nodes.push(SensorNode::new(region.clamp(Point::new(x, y))));
        }
    }
    assert!(n_bridge >= 2, "corridor needs at least 2 bridge nodes");
    for k in 0..n_bridge {
        // Evenly from x=60 to x=140: endpoints sit at the cluster edges so the
        // bridge is connected for a 30 m communication range regardless of
        // seed, while interior bridge nodes remain out of the clusters' reach.
        let x = 60.0 + 80.0 * k as f64 / (n_bridge - 1) as f64;
        nodes.push(SensorNode::new(Point::new(x, 50.0)));
    }
    (region, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_inside_region_and_deterministic() {
        let r = Region::square(50.0);
        let a = uniform(&r, 100, 9);
        let b = uniform(&r, 100, 9);
        assert_eq!(a.len(), 100);
        for (na, nb) in a.iter().zip(&b) {
            assert_eq!(na.position(), nb.position());
            assert!(r.contains(na.position()));
        }
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let r = Region::square(50.0);
        let a = uniform(&r, 20, 1);
        let b = uniform(&r, 20, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.position() != y.position()));
    }

    #[test]
    fn grid_has_expected_count_and_stays_inside() {
        let r = Region::square(100.0);
        let nodes = grid(&r, 5, 4, 3.0, 11);
        assert_eq!(nodes.len(), 20);
        assert!(nodes.iter().all(|n| r.contains(n.position())));
    }

    #[test]
    fn grid_without_jitter_is_regular() {
        let r = Region::square(100.0);
        let nodes = grid(&r, 2, 2, 0.0, 0);
        let xs: Vec<f64> = nodes.iter().map(|n| n.position().x).collect();
        assert_eq!(xs, vec![25.0, 75.0, 25.0, 75.0]);
    }

    #[test]
    fn clustered_stays_inside_region() {
        let r = Region::square(100.0);
        let nodes = clustered(&r, 60, 3, 8.0, 5);
        assert_eq!(nodes.len(), 60);
        assert!(nodes.iter().all(|n| r.contains(n.position())));
    }

    #[test]
    fn corridor_places_bridge_on_midline() {
        let (_, nodes) = corridor(10, 4, 3);
        assert_eq!(nodes.len(), 24);
        let bridge = &nodes[20..];
        assert!(bridge.iter().all(|n| n.position().y == 50.0));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let _ = clustered(&Region::square(10.0), 5, 0, 1.0, 0);
    }
}
