//! Shared battery-column view for disjoint parallel per-node updates.
//!
//! This is the one module in the crate that uses `unsafe`: the parallel
//! shard executor in `wrsn-sim` needs several worker threads mutating the
//! *same* energy columns at provably disjoint node indices (spatial shards
//! partition the id space), which safe Rust cannot express over `&mut [f64]`
//! without either cloning columns per shard or serialising the write-back.
//!
//! The contract is narrow and documented on every op: no two threads may
//! touch the same index concurrently. Op bodies are copied verbatim from
//! [`EnergyColumnsMut`] so a cell update is bitwise identical to the
//! equivalent column call — the byte-identity proptests in `wrsn-sim` pin
//! this across thread and shard counts.

#![allow(unsafe_code)]

use crate::graph::EnergyColumnsMut;

/// Shared battery-column view for disjoint parallel updates, obtained from
/// [`EnergyColumnsMut::as_cells`].
///
/// Every mutating op is an `unsafe fn` taking `&self`: callers promise that
/// no two threads ever access the same index concurrently. The simulation
/// engine upholds this structurally — spatial shards partition node ids, and
/// each shard worker only calls ops on its own members.
pub struct EnergyCells<'a> {
    capacity_j: &'a [f64],
    warning_j: &'a [f64],
    level_j: *mut f64,
    depleted: *mut bool,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut f64>,
}

// Safety: all mutation goes through per-index `unsafe fn` ops whose contract
// requires disjoint indices across threads; the shared slices are read-only.
unsafe impl Send for EnergyCells<'_> {}
unsafe impl Sync for EnergyCells<'_> {}

impl<'a> EnergyCells<'a> {
    /// Reborrows mutable columns as a shared cells view. The exclusive
    /// borrow of `cols` guarantees nothing else can touch the columns while
    /// the view lives.
    pub fn new(cols: &'a mut EnergyColumnsMut<'_>) -> Self {
        let len = cols.level_j.len();
        EnergyCells {
            capacity_j: cols.capacity_j,
            warning_j: cols.warning_j,
            level_j: cols.level_j.as_mut_ptr(),
            depleted: cols.depleted.as_mut_ptr(),
            len,
            _borrow: std::marker::PhantomData,
        }
    }

    #[inline]
    fn check(&self, i: usize) {
        assert!(i < self.len, "node index {i} out of range {}", self.len);
    }

    /// Cell form of [`EnergyColumnsMut::discharge`].
    ///
    /// # Safety
    ///
    /// No other thread may access index `i` while this call runs.
    #[inline]
    pub unsafe fn discharge(&self, i: usize, energy_j: f64) -> f64 {
        self.check(i);
        let level = self.level_j.add(i);
        let e = energy_j.max(0.0).min(*level);
        *level -= e;
        if *level <= 0.0 {
            *level = 0.0;
            *self.depleted.add(i) = true;
        }
        e
    }

    /// Cell form of [`EnergyColumnsMut::charge`].
    ///
    /// # Safety
    ///
    /// No other thread may access index `i` while this call runs.
    #[inline]
    pub unsafe fn charge(&self, i: usize, energy_j: f64) -> f64 {
        self.check(i);
        if *self.depleted.add(i) {
            return 0.0;
        }
        let level = self.level_j.add(i);
        let e = energy_j.max(0.0).min(self.capacity_j[i] - *level);
        *level += e;
        e
    }

    /// Cell form of [`EnergyColumnsMut::set_level`].
    ///
    /// # Safety
    ///
    /// No other thread may access index `i` while this call runs.
    #[inline]
    pub unsafe fn set_level(&self, i: usize, level_j: f64) {
        self.check(i);
        let level = self.level_j.add(i);
        *level = level_j.clamp(0.0, self.capacity_j[i]);
        if *level <= 0.0 {
            *self.depleted.add(i) = true;
        }
    }

    /// Cell form of [`EnergyColumnsMut::needs_charging`].
    ///
    /// # Safety
    ///
    /// No other thread may write index `i` while this call runs.
    #[inline]
    pub unsafe fn needs_charging(&self, i: usize) -> bool {
        self.check(i);
        !*self.depleted.add(i) && *self.level_j.add(i) <= self.warning_j[i]
    }

    /// Current level of cell `i`, joules.
    ///
    /// # Safety
    ///
    /// No other thread may write index `i` while this call runs.
    #[inline]
    pub unsafe fn level(&self, i: usize) -> f64 {
        self.check(i);
        *self.level_j.add(i)
    }

    /// Warning threshold of cell `i`, joules (read-only column).
    #[inline]
    pub fn warning(&self, i: usize) -> f64 {
        self.warning_j[i]
    }

    /// Depletion latch of cell `i`.
    ///
    /// # Safety
    ///
    /// No other thread may write index `i` while this call runs.
    #[inline]
    pub unsafe fn depleted(&self, i: usize) -> bool {
        self.check(i);
        *self.depleted.add(i)
    }
}

impl EnergyColumnsMut<'_> {
    /// Reborrows the columns as a shared [`EnergyCells`] view for disjoint
    /// parallel per-index updates.
    pub fn as_cells(&mut self) -> EnergyCells<'_> {
        EnergyCells::new(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::geom::{Point, Region};
    use crate::graph::Network;

    #[test]
    fn energy_cells_match_columns() {
        let nodes = crate::deploy::uniform(&Region::square(60.0), 16, 3);
        let mut a = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
        let mut b = a.clone();
        let mut cols = a.energy_mut();
        let mut cols_b = b.energy_mut();
        let cells = cols_b.as_cells();
        for i in 0..16 {
            let want = cols.discharge(i, 7.5 * (i as f64 + 1.0));
            let got = unsafe { cells.discharge(i, 7.5 * (i as f64 + 1.0)) };
            assert_eq!(want.to_bits(), got.to_bits(), "discharge node {i}");
            let want = cols.charge(i, 3.25);
            let got = unsafe { cells.charge(i, 3.25) };
            assert_eq!(want.to_bits(), got.to_bits(), "charge node {i}");
            unsafe {
                assert_eq!(cols.needs_charging(i), cells.needs_charging(i));
                assert_eq!(cols.level_j[i].to_bits(), cells.level(i).to_bits());
                assert_eq!(cols.depleted[i], cells.depleted(i));
                assert_eq!(cols.warning_j[i].to_bits(), cells.warning(i).to_bits());
            }
            cols.set_level(i, 40.0 + i as f64);
            unsafe {
                cells.set_level(i, 40.0 + i as f64);
                assert_eq!(cols.level_j[i].to_bits(), cells.level(i).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn energy_cells_bounds_checked() {
        let nodes = crate::deploy::uniform(&Region::square(60.0), 4, 3);
        let mut net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
        let mut cols = net.energy_mut();
        let cells = cols.as_cells();
        unsafe {
            cells.level(4);
        }
    }
}
