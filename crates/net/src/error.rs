//! Error types for the `wrsn-net` crate.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors produced by network construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// The operation requires a connected network but the graph is partitioned.
    Disconnected,
    /// No route exists between the two endpoints.
    NoRoute {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// An empty node set was supplied where at least one node is required.
    EmptyNetwork,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            NetError::Disconnected => write!(f, "network is not connected"),
            NetError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            NetError::EmptyNetwork => write!(f, "network has no nodes"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetError::UnknownNode(NodeId(3)).to_string().contains('3'));
        assert!(NetError::Disconnected.to_string().contains("not connected"));
        let msg = NetError::NoRoute {
            from: NodeId(1),
            to: NodeId(2),
        }
        .to_string();
        assert!(msg.contains("n1") && msg.contains("n2"));
    }
}
