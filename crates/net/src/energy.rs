//! Battery and radio energy models.
//!
//! The battery follows the standard WRSN abstraction: capacity `E_max`, a
//! *warning threshold* below which the node requests charging, and a *depletion
//! floor* at which the node dies. The radio uses the classical first-order
//! model: transmitting `k` bits over distance `d` costs
//! `k·(e_elec + ε_amp·d²)`; receiving costs `k·e_elec`.

use serde::{Deserialize, Serialize};

/// A node battery with capacity, warning threshold and depletion tracking.
///
/// Charge and discharge are saturating: the level never leaves
/// `[0, capacity]`.
///
/// # Example
///
/// ```
/// use wrsn_net::energy::Battery;
///
/// let mut b = Battery::new(100.0, 20.0);
/// b.discharge(90.0);
/// assert!(b.needs_charging());
/// b.charge(50.0);
/// assert!(!b.needs_charging());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    level_j: f64,
    warning_j: f64,
    /// Set once the level first reaches zero; a depleted node never revives
    /// (matching the "exhausted in vain" semantics of the paper).
    depleted: bool,
}

/// Default battery capacity: 10.8 kJ (a 1000 mAh cell at 3 V).
pub const DEFAULT_CAPACITY_J: f64 = 10_800.0;

/// Default warning threshold as a fraction of capacity.
pub const DEFAULT_WARNING_FRACTION: f64 = 0.2;

impl Battery {
    /// Creates a full battery with the given capacity and warning threshold
    /// (both joules).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j ≤ 0`, `warning_j < 0`, `warning_j > capacity_j`,
    /// or either is non-finite.
    pub fn new(capacity_j: f64, warning_j: f64) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "capacity must be positive, got {capacity_j}"
        );
        assert!(
            warning_j.is_finite() && (0.0..=capacity_j).contains(&warning_j),
            "warning threshold must be in [0, capacity], got {warning_j}"
        );
        Battery {
            capacity_j,
            level_j: capacity_j,
            warning_j,
            depleted: false,
        }
    }

    /// Creates a battery with the given capacity and the default 20 % warning
    /// threshold.
    pub fn with_capacity(capacity_j: f64) -> Self {
        Battery::new(capacity_j, capacity_j * DEFAULT_WARNING_FRACTION)
    }

    /// Battery capacity, joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Current level, joules.
    pub fn level_j(&self) -> f64 {
        self.level_j
    }

    /// Warning threshold, joules.
    pub fn warning_j(&self) -> f64 {
        self.warning_j
    }

    /// Current level as a fraction of capacity in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.level_j / self.capacity_j
    }

    /// Sets the level directly (clamped to `[0, capacity]`); marks the battery
    /// depleted if the clamped level is zero.
    pub fn set_level(&mut self, level_j: f64) {
        self.level_j = level_j.clamp(0.0, self.capacity_j);
        if self.level_j <= 0.0 {
            self.depleted = true;
        }
    }

    /// Removes `energy_j ≥ 0` joules; saturates at zero and latches the
    /// depleted flag. Returns the energy actually removed.
    pub fn discharge(&mut self, energy_j: f64) -> f64 {
        let e = energy_j.max(0.0).min(self.level_j);
        self.level_j -= e;
        if self.level_j <= 0.0 {
            self.level_j = 0.0;
            self.depleted = true;
        }
        e
    }

    /// Adds `energy_j ≥ 0` joules; saturates at capacity. Returns the energy
    /// actually stored. A depleted battery accepts no charge (the node's
    /// electronics are dead).
    pub fn charge(&mut self, energy_j: f64) -> f64 {
        if self.depleted {
            return 0.0;
        }
        let e = energy_j.max(0.0).min(self.capacity_j - self.level_j);
        self.level_j += e;
        e
    }

    /// Whether the level has ever reached zero.
    pub fn is_depleted(&self) -> bool {
        self.depleted
    }

    /// Whether the node should request charging (at or below the warning
    /// threshold, but not yet dead).
    pub fn needs_charging(&self) -> bool {
        !self.depleted && self.level_j <= self.warning_j
    }

    /// Time until depletion under constant power draw `watts`, seconds;
    /// `None` if the draw is zero or negative.
    pub fn time_to_depletion(&self, watts: f64) -> Option<f64> {
        if watts > 0.0 {
            Some(self.level_j / watts)
        } else {
            None
        }
    }

    /// Energy needed to refill to capacity, joules.
    pub fn deficit_j(&self) -> f64 {
        self.capacity_j - self.level_j
    }

    /// Reassembles a battery from raw state columns. The parts are trusted
    /// (no clamping): they come from a battery that was previously
    /// decomposed, so re-validating would only mask column-update bugs.
    pub(crate) fn from_parts(
        capacity_j: f64,
        level_j: f64,
        warning_j: f64,
        depleted: bool,
    ) -> Self {
        Battery {
            capacity_j,
            level_j,
            warning_j,
            depleted,
        }
    }
}

impl Default for Battery {
    fn default() -> Self {
        Battery::with_capacity(DEFAULT_CAPACITY_J)
    }
}

/// First-order radio energy model.
///
/// * transmit `k` bits over `d` metres: `k·(e_elec + ε_amp·d²)` joules,
/// * receive `k` bits: `k·e_elec` joules,
/// * idle listening: `idle_w` watts continuously.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioEnergyModel {
    /// Electronics energy per bit, J/bit.
    pub e_elec: f64,
    /// Amplifier energy per bit per m², J/bit/m².
    pub eps_amp: f64,
    /// Idle listening power, watts.
    pub idle_w: f64,
}

impl RadioEnergyModel {
    /// The classical parameters used across the WSN literature:
    /// `e_elec = 50 nJ/bit`, `ε_amp = 100 pJ/bit/m²`, idle 1 mW.
    pub fn classical() -> Self {
        RadioEnergyModel {
            e_elec: 50e-9,
            eps_amp: 100e-12,
            idle_w: 1e-3,
        }
    }

    /// Energy to transmit `bits` over distance `d_m`, joules.
    pub fn tx_energy(&self, bits: f64, d_m: f64) -> f64 {
        bits * (self.e_elec + self.eps_amp * d_m * d_m)
    }

    /// Energy to receive `bits`, joules.
    pub fn rx_energy(&self, bits: f64) -> f64 {
        bits * self.e_elec
    }

    /// Power draw of a node relaying `rx_bps` inbound and `tx_bps` outbound
    /// bits per second over hop distance `d_m`, including idle power, watts.
    pub fn relay_power(&self, rx_bps: f64, tx_bps: f64, d_m: f64) -> f64 {
        self.rx_energy(rx_bps) + self.tx_energy(tx_bps, d_m) + self.idle_w
    }
}

impl Default for RadioEnergyModel {
    fn default() -> Self {
        RadioEnergyModel::classical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discharge_saturates_and_latches_depletion() {
        let mut b = Battery::new(10.0, 2.0);
        assert_eq!(b.discharge(4.0), 4.0);
        assert_eq!(b.level_j(), 6.0);
        assert_eq!(b.discharge(100.0), 6.0);
        assert!(b.is_depleted());
        assert_eq!(b.level_j(), 0.0);
    }

    #[test]
    fn depleted_battery_rejects_charge() {
        let mut b = Battery::new(10.0, 2.0);
        b.discharge(10.0);
        assert!(b.is_depleted());
        assert_eq!(b.charge(5.0), 0.0);
        assert_eq!(b.level_j(), 0.0);
    }

    #[test]
    fn charge_saturates_at_capacity() {
        let mut b = Battery::new(10.0, 2.0);
        b.discharge(3.0);
        assert_eq!(b.charge(100.0), 3.0);
        assert_eq!(b.level_j(), 10.0);
    }

    #[test]
    fn warning_threshold_behaviour() {
        let mut b = Battery::new(10.0, 2.0);
        assert!(!b.needs_charging());
        b.discharge(8.0);
        assert!(b.needs_charging());
        b.discharge(2.0);
        // Dead node no longer "needs charging" — it is past saving.
        assert!(!b.needs_charging());
    }

    #[test]
    fn negative_amounts_are_ignored() {
        let mut b = Battery::new(10.0, 2.0);
        assert_eq!(b.discharge(-5.0), 0.0);
        assert_eq!(b.charge(-5.0), 0.0);
        assert_eq!(b.level_j(), 10.0);
    }

    #[test]
    fn time_to_depletion() {
        let b = Battery::new(10.0, 2.0);
        assert_eq!(b.time_to_depletion(2.0), Some(5.0));
        assert_eq!(b.time_to_depletion(0.0), None);
    }

    #[test]
    fn set_level_clamps_and_latches() {
        let mut b = Battery::new(10.0, 2.0);
        b.set_level(25.0);
        assert_eq!(b.level_j(), 10.0);
        b.set_level(-3.0);
        assert_eq!(b.level_j(), 0.0);
        assert!(b.is_depleted());
    }

    #[test]
    fn radio_tx_grows_with_distance_squared() {
        let r = RadioEnergyModel::classical();
        let e1 = r.tx_energy(1000.0, 10.0);
        let e2 = r.tx_energy(1000.0, 20.0);
        assert!(e2 > e1);
        // Amplifier part quadruples; electronics part constant.
        let amp1 = e1 - r.rx_energy(1000.0);
        let amp2 = e2 - r.rx_energy(1000.0);
        assert!((amp2 / amp1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn relay_power_includes_idle() {
        let r = RadioEnergyModel::classical();
        assert!((r.relay_power(0.0, 0.0, 0.0) - r.idle_w).abs() < 1e-15);
        assert!(r.relay_power(1000.0, 1000.0, 15.0) > r.idle_w);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Battery::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "warning threshold")]
    fn warning_above_capacity_panics() {
        let _ = Battery::new(10.0, 11.0);
    }
}
