//! The communication graph of a WRSN and its core graph algorithms.
//!
//! Two nodes are neighbours when their Euclidean distance is at most the
//! communication range. The base station (*sink*) is a distinguished point;
//! nodes within range of it can deliver data directly.
//!
//! Algorithms provided: connectivity / components (BFS), shortest paths
//! (Dijkstra on Euclidean edge weights), articulation points (Tarjan) and
//! betweenness centrality (Brandes) — the latter two feed key-node
//! identification in [`crate::keynode`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize, Value};

use crate::energy::Battery;
use crate::error::NetError;
use crate::geom::Point;
use crate::node::{NodeId, SensorNode};

/// A WRSN communication graph: nodes, a sink and range-derived adjacency.
///
/// Per-node state lives in struct-of-arrays columns (positions, sensing
/// rates, battery levels, status flags) rather than a `Vec<SensorNode>`:
/// the simulation engine's fused segment loop iterates dense parallel
/// slices, and spatial shards advance disjoint column ranges.
/// [`SensorNode`] remains the construction/config view — [`Network::build`]
/// columnises a node list, and [`Network::node`] materialises a node back
/// from the columns on demand.
///
/// # Example
///
/// ```
/// use wrsn_net::{deploy, Network, Point, Region};
///
/// let nodes = deploy::uniform(&Region::square(100.0), 40, 1);
/// let net = Network::build(nodes, Point::new(50.0, 50.0), 20.0);
/// assert_eq!(net.node_count(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    positions: Vec<Point>,
    sensing_rate_bps: Vec<f64>,
    capacity_j: Vec<f64>,
    level_j: Vec<f64>,
    warning_j: Vec<f64>,
    depleted: Vec<bool>,
    failed: Vec<bool>,
    sink: Point,
    comm_range_m: f64,
    adj: Vec<Vec<NodeId>>,
    sink_neighbors: Vec<NodeId>,
}

// Hand-written to keep the wire shape of the former array-of-structs layout
// (`nodes` as a list of SensorNode maps): checkpoints written before the
// column refactor stay loadable, and snapshots stay byte-identical.
impl Serialize for Network {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "nodes".to_string(),
                Value::Seq(
                    (0..self.node_count())
                        .map(|i| self.materialize(i).to_value())
                        .collect(),
                ),
            ),
            ("sink".to_string(), self.sink.to_value()),
            ("comm_range_m".to_string(), self.comm_range_m.to_value()),
            ("adj".to_string(), self.adj.to_value()),
            ("sink_neighbors".to_string(), self.sink_neighbors.to_value()),
        ])
    }
}

impl Deserialize for Network {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "Network"))?;
        let nodes: Vec<SensorNode> = Deserialize::from_value(serde::map_get(entries, "nodes")?)?;
        Ok(Network::from_parts(
            nodes,
            Deserialize::from_value(serde::map_get(entries, "sink")?)?,
            Deserialize::from_value(serde::map_get(entries, "comm_range_m")?)?,
            Deserialize::from_value(serde::map_get(entries, "adj")?)?,
            Deserialize::from_value(serde::map_get(entries, "sink_neighbors")?)?,
        ))
    }
}

/// Mutable struct-of-arrays view of every node's battery state, borrowed
/// from [`Network::energy_mut`]. The ops mirror [`Battery`] exactly — same
/// f64 sequences, same saturation and depletion latch — so a column update
/// is bitwise identical to the equivalent per-node battery call.
pub struct EnergyColumnsMut<'a> {
    /// Battery capacities, joules (read-only: capacity never changes).
    pub capacity_j: &'a [f64],
    /// Warning thresholds, joules (read-only).
    pub warning_j: &'a [f64],
    /// Current levels, joules.
    pub level_j: &'a mut [f64],
    /// Depletion latches.
    pub depleted: &'a mut [bool],
}

impl EnergyColumnsMut<'_> {
    /// Column form of [`Battery::discharge`].
    #[inline]
    pub fn discharge(&mut self, i: usize, energy_j: f64) -> f64 {
        let e = energy_j.max(0.0).min(self.level_j[i]);
        self.level_j[i] -= e;
        if self.level_j[i] <= 0.0 {
            self.level_j[i] = 0.0;
            self.depleted[i] = true;
        }
        e
    }

    /// Column form of [`Battery::charge`].
    #[inline]
    pub fn charge(&mut self, i: usize, energy_j: f64) -> f64 {
        if self.depleted[i] {
            return 0.0;
        }
        let e = energy_j.max(0.0).min(self.capacity_j[i] - self.level_j[i]);
        self.level_j[i] += e;
        e
    }

    /// Column form of [`Battery::set_level`].
    #[inline]
    pub fn set_level(&mut self, i: usize, level_j: f64) {
        self.level_j[i] = level_j.clamp(0.0, self.capacity_j[i]);
        if self.level_j[i] <= 0.0 {
            self.depleted[i] = true;
        }
    }

    /// Column form of [`Battery::needs_charging`].
    #[inline]
    pub fn needs_charging(&self, i: usize) -> bool {
        !self.depleted[i] && self.level_j[i] <= self.warning_j[i]
    }
}

/// Below this node count the parallel build falls back to the sequential
/// half-scan: spawn overhead would dominate the ~O(n) bucket scan.
const PARALLEL_BUILD_MIN_NODES: usize = 8192;

impl Network {
    /// Builds the network, computing adjacency from `comm_range_m`.
    ///
    /// Adjacency is found with a uniform grid bucketed at the communication
    /// range: each node only tests the nodes in its own and the eight
    /// surrounding cells, so construction is ~O(n) for bounded-density
    /// deployments instead of the O(n²) all-pairs scan. Neighbour lists come
    /// out identical to the all-pairs build — sorted ascending by id — so
    /// every downstream traversal order (and thus every float accumulation
    /// order) is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `comm_range_m` is not finite and positive.
    pub fn build(nodes: Vec<SensorNode>, sink: Point, comm_range_m: f64) -> Self {
        assert!(
            comm_range_m.is_finite() && comm_range_m > 0.0,
            "communication range must be positive, got {comm_range_m}"
        );
        let n = nodes.len();
        let r2 = comm_range_m * comm_range_m;
        let positions: Vec<Point> = nodes.iter().map(SensorNode::position).collect();
        let mut adj = vec![Vec::new(); n];
        if n > 0 {
            let inv_cell = 1.0 / comm_range_m;
            let (min_x, min_y) = grid_origin(&positions);
            let cell_of = |p: Point| grid_cell(p, min_x, min_y, inv_cell);
            let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
                std::collections::HashMap::new();
            for (i, &p) in positions.iter().enumerate() {
                buckets.entry(cell_of(p)).or_default().push(i);
            }
            let mut candidates: Vec<usize> = Vec::new();
            for i in 0..n {
                let (cx, cy) = cell_of(positions[i]);
                candidates.clear();
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        if let Some(bucket) = buckets.get(&(cx + dx, cy + dy)) {
                            candidates.extend(bucket.iter().copied().filter(|&j| {
                                j > i && positions[i].distance_sq(positions[j]) <= r2
                            }));
                        }
                    }
                }
                // Ascending ids so neighbour lists match the all-pairs order.
                candidates.sort_unstable();
                for &j in &candidates {
                    adj[i].push(NodeId(j));
                    adj[j].push(NodeId(i));
                }
            }
        }
        let sink_neighbors = (0..n)
            .filter(|&i| positions[i].distance_sq(sink) <= r2)
            .map(NodeId)
            .collect();
        Network::from_parts(nodes, sink, comm_range_m, adj, sink_neighbors)
    }

    /// Like [`Network::build`], but fans the per-node neighbour scan over
    /// `threads` scoped worker threads when the deployment is large enough
    /// to amortise the spawn cost.
    ///
    /// Each worker owns a contiguous range of adjacency lists and scans the
    /// full 3×3 cell neighbourhood for every node (instead of the sequential
    /// half-scan), then sorts ascending — each grid bucket holds ascending
    /// ids by construction, so the resulting lists are identical to the
    /// sequential build's, and the network is byte-for-byte the same at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `comm_range_m` is not finite and positive.
    pub fn build_with_threads(
        nodes: Vec<SensorNode>,
        sink: Point,
        comm_range_m: f64,
        threads: usize,
    ) -> Self {
        let n = nodes.len();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 || n < PARALLEL_BUILD_MIN_NODES {
            return Network::build(nodes, sink, comm_range_m);
        }
        assert!(
            comm_range_m.is_finite() && comm_range_m > 0.0,
            "communication range must be positive, got {comm_range_m}"
        );
        let r2 = comm_range_m * comm_range_m;
        let positions: Vec<Point> = nodes.iter().map(SensorNode::position).collect();
        let inv_cell = 1.0 / comm_range_m;
        let (min_x, min_y) = grid_origin(&positions);
        let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &p) in positions.iter().enumerate() {
            buckets
                .entry(grid_cell(p, min_x, min_y, inv_cell))
                .or_default()
                .push(i);
        }
        let mut adj = vec![Vec::new(); n];
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, chunk_adj) in adj.chunks_mut(chunk).enumerate() {
                let positions = &positions;
                let buckets = &buckets;
                scope.spawn(move || {
                    let base = c * chunk;
                    for (k, out) in chunk_adj.iter_mut().enumerate() {
                        let i = base + k;
                        let (cx, cy) = grid_cell(positions[i], min_x, min_y, inv_cell);
                        for dx in -1..=1 {
                            for dy in -1..=1 {
                                if let Some(bucket) = buckets.get(&(cx + dx, cy + dy)) {
                                    out.extend(
                                        bucket
                                            .iter()
                                            .copied()
                                            .filter(|&j| {
                                                j != i
                                                    && positions[i].distance_sq(positions[j]) <= r2
                                            })
                                            .map(NodeId),
                                    );
                                }
                            }
                        }
                        out.sort_unstable();
                    }
                });
            }
        });
        let sink_neighbors = (0..n)
            .filter(|&i| positions[i].distance_sq(sink) <= r2)
            .map(NodeId)
            .collect();
        Network::from_parts(nodes, sink, comm_range_m, adj, sink_neighbors)
    }

    /// Columnises a node list with precomputed adjacency.
    fn from_parts(
        nodes: Vec<SensorNode>,
        sink: Point,
        comm_range_m: f64,
        adj: Vec<Vec<NodeId>>,
        sink_neighbors: Vec<NodeId>,
    ) -> Self {
        let n = nodes.len();
        let mut net = Network {
            positions: Vec::with_capacity(n),
            sensing_rate_bps: Vec::with_capacity(n),
            capacity_j: Vec::with_capacity(n),
            level_j: Vec::with_capacity(n),
            warning_j: Vec::with_capacity(n),
            depleted: Vec::with_capacity(n),
            failed: Vec::with_capacity(n),
            sink,
            comm_range_m,
            adj,
            sink_neighbors,
        };
        for node in nodes {
            let (position, battery, sensing_rate_bps, failed) = node.into_parts();
            net.positions.push(position);
            net.sensing_rate_bps.push(sensing_rate_bps);
            net.capacity_j.push(battery.capacity_j());
            net.level_j.push(battery.level_j());
            net.warning_j.push(battery.warning_j());
            net.depleted.push(battery.is_depleted());
            net.failed.push(failed);
        }
        net
    }

    /// Reassembles node `i` from the columns (trusted index).
    fn materialize(&self, i: usize) -> SensorNode {
        SensorNode::from_parts(
            self.positions[i],
            Battery::from_parts(
                self.capacity_j[i],
                self.level_j[i],
                self.warning_j[i],
                self.depleted[i],
            ),
            self.sensing_rate_bps[i],
            self.failed[i],
        )
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The node with id `id`, materialised by value from the state columns.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<SensorNode, NetError> {
        if id.0 < self.node_count() {
            Ok(self.materialize(id.0))
        } else {
            Err(NetError::UnknownNode(id))
        }
    }

    /// All node positions, indexed by [`NodeId`].
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// All sensing data rates (bits per second), indexed by [`NodeId`].
    pub fn sensing_rates_bps(&self) -> &[f64] {
        &self.sensing_rate_bps
    }

    /// All battery levels (joules), indexed by [`NodeId`].
    pub fn levels_j(&self) -> &[f64] {
        &self.level_j
    }

    /// All battery capacities (joules), indexed by [`NodeId`].
    pub fn capacities_j(&self) -> &[f64] {
        &self.capacity_j
    }

    /// All battery warning thresholds (joules), indexed by [`NodeId`].
    pub fn warnings_j(&self) -> &[f64] {
        &self.warning_j
    }

    /// Whether node `i` is alive: neither hard-failed nor depleted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn alive(&self, i: usize) -> bool {
        !self.failed[i] && !self.depleted[i]
    }

    /// Whether node `i` should request charging (at or below its warning
    /// threshold, but not yet depleted).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn needs_charging(&self, i: usize) -> bool {
        !self.depleted[i] && self.level_j[i] <= self.warning_j[i]
    }

    /// Mutable view of the battery-state columns.
    pub fn energy_mut(&mut self) -> EnergyColumnsMut<'_> {
        EnergyColumnsMut {
            capacity_j: &self.capacity_j,
            warning_j: &self.warning_j,
            level_j: &mut self.level_j,
            depleted: &mut self.depleted,
        }
    }

    /// Marks a node hard-failed (see [`SensorNode::mark_failed`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for out-of-range ids.
    pub fn mark_failed(&mut self, id: NodeId) -> Result<(), NetError> {
        match self.failed.get_mut(id.0) {
            Some(f) => {
                *f = true;
                Ok(())
            }
            None => Err(NetError::UnknownNode(id)),
        }
    }

    /// The sink (base station) position.
    pub fn sink(&self) -> Point {
        self.sink
    }

    /// The communication range, metres.
    pub fn comm_range(&self) -> f64 {
        self.comm_range_m
    }

    /// Neighbours of `id` (empty for out-of-range ids).
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.adj.get(id.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Degree of `id`.
    pub fn degree(&self, id: NodeId) -> usize {
        self.neighbors(id).len()
    }

    /// Nodes within communication range of the sink.
    pub fn sink_neighbors(&self) -> &[NodeId] {
        &self.sink_neighbors
    }

    /// Iterator over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Euclidean distance between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] if either id is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Result<f64, NetError> {
        let pa = *self.positions.get(a.0).ok_or(NetError::UnknownNode(a))?;
        let pb = *self.positions.get(b.0).ok_or(NetError::UnknownNode(b))?;
        Ok(pa.distance(pb))
    }

    /// A mask of currently alive nodes.
    pub fn alive_mask(&self) -> Vec<bool> {
        (0..self.node_count()).map(|i| self.alive(i)).collect()
    }

    /// Connected components among nodes where `mask[i]` is true; each
    /// component is a sorted list of node ids. Masked-out nodes appear in no
    /// component.
    pub fn components(&self, mask: &[bool]) -> Vec<Vec<NodeId>> {
        let n = self.positions.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for s in 0..n {
            if seen[s] || !mask.get(s).copied().unwrap_or(false) {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![s];
            seen[s] = true;
            while let Some(u) = stack.pop() {
                comp.push(NodeId(u));
                for &v in &self.adj[u] {
                    if !seen[v.0] && mask[v.0] {
                        seen[v.0] = true;
                        stack.push(v.0);
                    }
                }
            }
            comp.sort();
            out.push(comp);
        }
        out
    }

    /// Whether the subgraph induced by `mask` is connected (vacuously true for
    /// zero or one alive node).
    pub fn is_connected(&self, mask: &[bool]) -> bool {
        self.components(mask).len() <= 1
    }

    /// Fraction of masked-in nodes that can reach the sink through masked-in
    /// nodes. Returns `1.0` when no node is masked in.
    pub fn sink_reachability(&self, mask: &[bool]) -> f64 {
        let alive: usize = mask.iter().filter(|&&a| a).count();
        if alive == 0 {
            return 1.0;
        }
        let n = self.positions.len();
        let mut reach = vec![false; n];
        let mut stack: Vec<usize> = self
            .sink_neighbors
            .iter()
            .map(|id| id.0)
            .filter(|&i| mask[i])
            .collect();
        for &s in &stack {
            reach[s] = true;
        }
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                if mask[v.0] && !reach[v.0] {
                    reach[v.0] = true;
                    stack.push(v.0);
                }
            }
        }
        reach.iter().filter(|&&r| r).count() as f64 / alive as f64
    }

    /// Articulation points (cut vertices) of the subgraph induced by `mask`,
    /// via Tarjan's low-link algorithm. Sorted by id.
    pub fn articulation_points(&self, mask: &[bool]) -> Vec<NodeId> {
        let n = self.positions.len();
        let mut disc = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut is_art = vec![false; n];
        let mut timer = 0usize;

        // Iterative DFS to avoid stack overflow on large nets.
        for root in 0..n {
            if disc[root] != usize::MAX || !mask.get(root).copied().unwrap_or(false) {
                continue;
            }
            // Stack frames: (vertex, parent, next-neighbour-index).
            let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
            let mut root_children = 0usize;
            disc[root] = timer;
            low[root] = timer;
            timer += 1;
            while let Some(&mut (u, parent, ref mut idx)) = stack.last_mut() {
                if *idx < self.adj[u].len() {
                    let v = self.adj[u][*idx].0;
                    *idx += 1;
                    if !mask[v] {
                        continue;
                    }
                    if disc[v] == usize::MAX {
                        disc[v] = timer;
                        low[v] = timer;
                        timer += 1;
                        if u == root {
                            root_children += 1;
                        }
                        stack.push((v, u, 0));
                    } else if v != parent {
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    stack.pop();
                    if let Some(&mut (p, _, _)) = stack.last_mut() {
                        low[p] = low[p].min(low[u]);
                        if p != root && low[u] >= disc[p] {
                            is_art[p] = true;
                        }
                    }
                }
            }
            if root_children > 1 {
                is_art[root] = true;
            }
        }
        (0..n).filter(|&i| is_art[i]).map(NodeId).collect()
    }

    /// Unweighted betweenness centrality (Brandes) of the subgraph induced by
    /// `mask`; masked-out nodes score `0`.
    pub fn betweenness(&self, mask: &[bool]) -> Vec<f64> {
        let n = self.positions.len();
        let mut cb = vec![0.0f64; n];
        for s in 0..n {
            if !mask.get(s).copied().unwrap_or(false) {
                continue;
            }
            // BFS from s.
            let mut sigma = vec![0.0f64; n];
            let mut dist = vec![-1i64; n];
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut order = Vec::with_capacity(n);
            sigma[s] = 1.0;
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &v in &self.adj[u] {
                    let v = v.0;
                    if !mask[v] {
                        continue;
                    }
                    if dist[v] < 0 {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                    if dist[v] == dist[u] + 1 {
                        sigma[v] += sigma[u];
                        preds[v].push(u);
                    }
                }
            }
            // Accumulation in reverse BFS order.
            let mut delta = vec![0.0f64; n];
            for &w in order.iter().rev() {
                for &p in &preds[w] {
                    delta[p] += sigma[p] / sigma[w] * (1.0 + delta[w]);
                }
                if w != s {
                    cb[w] += delta[w];
                }
            }
        }
        // Undirected graph: each pair counted twice.
        for c in &mut cb {
            *c /= 2.0;
        }
        cb
    }

    /// Dijkstra shortest-path distances (Euclidean edge weights) from `source`
    /// over the subgraph induced by `mask`. Unreachable nodes get `f64::INFINITY`.
    /// Also returns the predecessor of each node on its shortest path.
    pub fn dijkstra(&self, source: NodeId, mask: &[bool]) -> (Vec<f64>, Vec<Option<NodeId>>) {
        let n = self.positions.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut pred: Vec<Option<NodeId>> = vec![None; n];
        if source.0 >= n || !mask.get(source.0).copied().unwrap_or(false) {
            return (dist, pred);
        }
        dist[source.0] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: 0.0,
            node: source.0,
        });
        while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &v in &self.adj[u] {
                let v = v.0;
                if !mask[v] {
                    continue;
                }
                let w = self.positions[u].distance(self.positions[v]);
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    pred[v] = Some(NodeId(u));
                    heap.push(HeapItem { dist: nd, node: v });
                }
            }
        }
        (dist, pred)
    }
}

/// Origin (minimum x/y) of the uniform grid over `positions` — the anchor
/// both the adjacency build and the simulator's spatial shard map use, so
/// shards partition nodes by exactly the cells adjacency was bucketed by.
///
/// Returns `(0.0, 0.0)` for an empty slice.
pub fn grid_origin(positions: &[Point]) -> (f64, f64) {
    if positions.is_empty() {
        return (0.0, 0.0);
    }
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    for p in positions {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
    }
    (min_x, min_y)
}

/// Cell coordinates of `p` in a uniform grid anchored at `(min_x, min_y)`
/// with cell side `1 / inv_cell`.
#[inline]
pub fn grid_cell(p: Point, min_x: f64, min_y: f64, inv_cell: f64) -> (i64, i64) {
    (
        ((p.x - min_x) * inv_cell).floor() as i64,
        ((p.y - min_y) * inv_cell).floor() as i64,
    )
}

/// Min-heap item for Dijkstra.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Region;

    /// A 5-node path graph: 0 - 1 - 2 - 3 - 4 spaced 10 m apart, range 12 m.
    fn path_net() -> Network {
        let nodes = (0..5)
            .map(|i| SensorNode::new(Point::new(10.0 * i as f64, 0.0)))
            .collect();
        Network::build(nodes, Point::new(0.0, 0.0), 12.0)
    }

    fn all_mask(net: &Network) -> Vec<bool> {
        vec![true; net.node_count()]
    }

    /// Brute-force articulation points: removing v strictly increases the
    /// number of connected components among the remaining masked vertices.
    fn brute_articulation(net: &Network, mask: &[bool]) -> Vec<NodeId> {
        let before = net.components(mask).len();
        let mut out = Vec::new();
        for v in 0..net.node_count() {
            if !mask[v] {
                continue;
            }
            let mut m = mask.to_vec();
            m[v] = false;
            if net.components(&m).len() > before {
                out.push(NodeId(v));
            }
        }
        out
    }

    #[test]
    fn path_graph_interior_nodes_are_cut_vertices() {
        let net = path_net();
        let arts = net.articulation_points(&all_mask(&net));
        assert_eq!(arts, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn articulation_matches_brute_force_on_random_nets() {
        for seed in 0..10 {
            let nodes = crate::deploy::uniform(&Region::square(60.0), 25, seed);
            let net = Network::build(nodes, Point::new(30.0, 30.0), 18.0);
            let mask = all_mask(&net);
            let fast = net.articulation_points(&mask);
            let brute = brute_articulation(&net, &mask);
            assert_eq!(fast, brute, "seed {seed}");
        }
    }

    #[test]
    fn articulation_respects_mask() {
        let net = path_net();
        let mut mask = all_mask(&net);
        mask[4] = false; // path 0-1-2-3: arts are 1, 2
        assert_eq!(net.articulation_points(&mask), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn components_split_when_middle_dies() {
        let net = path_net();
        let mut mask = all_mask(&net);
        mask[2] = false;
        let comps = net.components(&mask);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(3), NodeId(4)]);
        assert!(!net.is_connected(&mask));
    }

    #[test]
    fn sink_reachability_drops_after_cut() {
        let net = path_net(); // sink at (0,0), neighbour of node 0 only
        let mask = all_mask(&net);
        assert_eq!(net.sink_reachability(&mask), 1.0);
        let mut cut = mask.clone();
        cut[1] = false;
        // Only node 0 can still reach the sink out of 4 alive.
        assert!((net.sink_reachability(&cut) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn betweenness_peaks_at_path_center() {
        let net = path_net();
        let cb = net.betweenness(&all_mask(&net));
        // Path P5 betweenness: [0, 3, 4, 3, 0].
        let expect = [0.0, 3.0, 4.0, 3.0, 0.0];
        for (got, want) in cb.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "cb = {cb:?}");
        }
    }

    #[test]
    fn dijkstra_distances_on_path() {
        let net = path_net();
        let (dist, pred) = net.dijkstra(NodeId(0), &all_mask(&net));
        assert!((dist[4] - 40.0).abs() < 1e-9);
        assert_eq!(pred[4], Some(NodeId(3)));
        assert_eq!(pred[0], None);
    }

    #[test]
    fn dijkstra_respects_mask() {
        let net = path_net();
        let mut mask = all_mask(&net);
        mask[2] = false;
        let (dist, _) = net.dijkstra(NodeId(0), &mask);
        assert!(dist[4].is_infinite());
        assert!((dist[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_node_errors() {
        let net = path_net();
        assert!(matches!(
            net.node(NodeId(99)),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn empty_network_is_trivially_connected() {
        let net = Network::build(Vec::new(), Point::ORIGIN, 10.0);
        assert!(net.is_connected(&[]));
        assert_eq!(net.sink_reachability(&[]), 1.0);
    }

    #[test]
    fn grid_adjacency_matches_all_pairs_scan() {
        for seed in 0..8 {
            let nodes = crate::deploy::uniform(&Region::square(120.0), 60, seed);
            let net = Network::build(nodes.clone(), Point::new(60.0, 60.0), 22.0);
            let n = nodes.len();
            let r2 = 22.0f64 * 22.0;
            let mut expect = vec![Vec::new(); n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if nodes[i].position().distance_sq(nodes[j].position()) <= r2 {
                        expect[i].push(NodeId(j));
                        expect[j].push(NodeId(i));
                    }
                }
            }
            for (i, want) in expect.iter().enumerate() {
                assert_eq!(net.neighbors(NodeId(i)), &want[..], "seed {seed} node {i}");
            }
        }
    }

    #[test]
    fn sink_neighbors_detected() {
        // Sink at (0,0), range 12: nodes 0 (d=0) and 1 (d=10) qualify.
        let net = path_net();
        assert_eq!(net.sink_neighbors(), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Above the parallel threshold so the threaded path actually runs.
        let nodes = crate::deploy::uniform(&Region::square(400.0), 9000, 42);
        let seq = Network::build(nodes.clone(), Point::new(200.0, 200.0), 12.0);
        for threads in [2, 3, 8] {
            let par =
                Network::build_with_threads(nodes.clone(), Point::new(200.0, 200.0), 12.0, threads);
            assert_eq!(par.sink_neighbors(), seq.sink_neighbors());
            for i in 0..seq.node_count() {
                assert_eq!(
                    par.neighbors(NodeId(i)),
                    seq.neighbors(NodeId(i)),
                    "threads {threads} node {i}"
                );
            }
        }
    }
}
