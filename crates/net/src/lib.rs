//! # wrsn-net — wireless rechargeable sensor network substrate
//!
//! Everything the Charging Spoofing Attack needs from the *network* side of a
//! WRSN:
//!
//! * 2-D [`geom`]etry and field regions,
//! * seeded [`deploy`]ment generators (uniform, grid, clustered),
//! * [`energy`]: batteries with capacity/thresholds and the first-order radio
//!   energy model,
//! * [`node`]: sensor nodes with position, battery and sensing rate,
//! * [`graph`]: communication graphs, Dijkstra, articulation points (Tarjan),
//!   betweenness centrality (Brandes),
//! * [`routing`]: shortest-path data-gathering trees and per-node traffic /
//!   energy-consumption rates,
//! * [`keynode`]: identification of **key nodes** — the cut vertices and
//!   traffic hubs whose exhaustion partitions the network, which are exactly
//!   the attack's targets,
//! * [`metrics`]: lifetime, coverage and connectivity measures.
//!
//! # Example
//!
//! ```
//! use wrsn_net::prelude::*;
//!
//! let field = Region::square(100.0);
//! let nodes = deploy::uniform(&field, 50, 42);
//! let net = Network::build(nodes, Point::new(50.0, 50.0), 18.0);
//! let keys = keynode::identify(&net, &KeyNodeConfig::default());
//! assert!(keys.len() <= net.node_count());
//! ```

// `deny` rather than `forbid`: the [`cells`] module opts back in for the one
// shared battery-column view that parallel shard execution needs. Every other
// module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod deploy;
pub mod energy;
pub mod error;
pub mod geom;
pub mod graph;
pub mod keynode;
pub mod metrics;
pub mod node;
pub mod routing;

pub use cells::EnergyCells;
pub use error::NetError;
pub use geom::{Point, Region};
pub use graph::{EnergyColumnsMut, Network};
pub use keynode::KeyNode;
pub use node::{NodeId, SensorNode};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::deploy;
    pub use crate::energy::{Battery, RadioEnergyModel};
    pub use crate::geom::{Point, Region};
    pub use crate::graph::Network;
    pub use crate::keynode::{self, KeyNode, KeyNodeConfig};
    pub use crate::metrics;
    pub use crate::node::{NodeId, SensorNode};
    pub use crate::routing::{self, RoutingTree};
}
