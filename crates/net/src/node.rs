//! Sensor node identity and state.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

use crate::energy::Battery;
use crate::geom::Point;

/// Identifier of a sensor node: its index in the network's node vector.
///
/// Displayed as `n<index>`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// A rechargeable sensor node.
///
/// # Example
///
/// ```
/// use wrsn_net::{node::SensorNode, Point};
///
/// let n = SensorNode::new(Point::new(1.0, 2.0));
/// assert!(n.is_alive());
/// assert_eq!(n.battery().level_j(), n.battery().capacity_j());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorNode {
    position: Point,
    battery: Battery,
    /// Sensing data generation rate, bits per second.
    sensing_rate_bps: f64,
    /// Hard failure (crash, tamper, enclosure damage): the node is dead even
    /// though its battery may hold residual charge. Set by fault injection;
    /// never cleared — a crashed node stays down, like a depleted one.
    failed: bool,
}

// Hand-written so the `failed` flag stays out of snapshots of healthy nodes:
// the JSON shape is identical to the pre-fault-injection derived form unless
// a node actually hard-failed.
impl Serialize for SensorNode {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("position".to_string(), self.position.to_value()),
            ("battery".to_string(), self.battery.to_value()),
            (
                "sensing_rate_bps".to_string(),
                self.sensing_rate_bps.to_value(),
            ),
        ];
        if self.failed {
            entries.push(("failed".to_string(), Value::Bool(true)));
        }
        Value::Map(entries)
    }
}

impl Deserialize for SensorNode {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "SensorNode"))?;
        let failed = match entries.iter().find(|(k, _)| k == "failed") {
            Some((_, v)) => bool::from_value(v)?,
            None => false,
        };
        Ok(SensorNode {
            position: Deserialize::from_value(serde::map_get(entries, "position")?)?,
            battery: Deserialize::from_value(serde::map_get(entries, "battery")?)?,
            sensing_rate_bps: Deserialize::from_value(serde::map_get(
                entries,
                "sensing_rate_bps",
            )?)?,
            failed,
        })
    }
}

/// Default sensing data rate: 1 kb/s.
pub const DEFAULT_SENSING_RATE_BPS: f64 = 1_000.0;

impl SensorNode {
    /// Creates a node at `position` with the default battery and sensing rate.
    pub fn new(position: Point) -> Self {
        SensorNode {
            position,
            battery: Battery::default(),
            sensing_rate_bps: DEFAULT_SENSING_RATE_BPS,
            failed: false,
        }
    }

    /// Creates a node with an explicit battery.
    pub fn with_battery(position: Point, battery: Battery) -> Self {
        SensorNode {
            position,
            battery,
            sensing_rate_bps: DEFAULT_SENSING_RATE_BPS,
            failed: false,
        }
    }

    /// Sets the sensing rate (bits per second), returning the node.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or non-finite.
    pub fn with_sensing_rate(mut self, bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps >= 0.0,
            "sensing rate must be finite and non-negative"
        );
        self.sensing_rate_bps = bps;
        self
    }

    /// The node's fixed position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Immutable battery access.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Mutable battery access.
    pub fn battery_mut(&mut self) -> &mut Battery {
        &mut self.battery
    }

    /// Sensing data generation rate, bits per second.
    pub fn sensing_rate_bps(&self) -> f64 {
        self.sensing_rate_bps
    }

    /// Whether the node still has usable energy and has not hard-failed.
    pub fn is_alive(&self) -> bool {
        !self.failed && !self.battery.is_depleted()
    }

    /// Whether the node hard-failed (as opposed to draining its battery).
    pub fn has_failed(&self) -> bool {
        self.failed
    }

    /// Marks the node hard-failed: it drops out of the network immediately,
    /// keeping whatever battery charge it had. Irreversible, like depletion.
    /// Used by fault injection (`wrsn_sim::fault`) to model crashes that a
    /// detector must tell apart from attack-induced exhaustion — a crashed
    /// node leaves residual energy behind, an exhausted one dies at zero.
    pub fn mark_failed(&mut self) {
        self.failed = true;
    }

    /// Reassembles a node from the network's state columns. Parts are
    /// trusted; see [`Battery::from_parts`].
    pub(crate) fn from_parts(
        position: Point,
        battery: Battery,
        sensing_rate_bps: f64,
        failed: bool,
    ) -> Self {
        SensorNode {
            position,
            battery,
            sensing_rate_bps,
            failed,
        }
    }

    /// Decomposes the node into `(position, battery, sensing_rate_bps,
    /// failed)` — the inverse of [`SensorNode::from_parts`], used when a
    /// constructed node list is columnised into the network.
    pub(crate) fn into_parts(self) -> (Point, Battery, f64, bool) {
        (
            self.position,
            self.battery,
            self.sensing_rate_bps,
            self.failed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(17);
        assert_eq!(id.to_string(), "n17");
        assert_eq!(id.index(), 17);
        assert_eq!(NodeId::from(17), id);
    }

    #[test]
    fn new_node_is_alive_and_full() {
        let n = SensorNode::new(Point::ORIGIN);
        assert!(n.is_alive());
        assert_eq!(n.battery().level_j(), n.battery().capacity_j());
    }

    #[test]
    fn draining_battery_kills_node() {
        let mut n = SensorNode::new(Point::ORIGIN);
        let cap = n.battery().capacity_j();
        n.battery_mut().discharge(cap * 2.0);
        assert!(!n.is_alive());
    }

    #[test]
    fn sensing_rate_builder() {
        let n = SensorNode::new(Point::ORIGIN).with_sensing_rate(512.0);
        assert_eq!(n.sensing_rate_bps(), 512.0);
    }

    #[test]
    #[should_panic(expected = "sensing rate")]
    fn negative_sensing_rate_panics() {
        let _ = SensorNode::new(Point::ORIGIN).with_sensing_rate(-1.0);
    }

    #[test]
    fn hard_failure_kills_node_but_keeps_battery() {
        let mut n = SensorNode::new(Point::ORIGIN);
        n.mark_failed();
        assert!(!n.is_alive());
        assert!(n.has_failed());
        assert_eq!(n.battery().level_j(), n.battery().capacity_j());
    }

    #[test]
    fn serde_omits_failed_flag_on_healthy_nodes() {
        use serde::{Deserialize, Serialize};
        let healthy = SensorNode::new(Point::new(1.0, 2.0));
        let v = healthy.to_value();
        let keys: Vec<&str> = v
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["position", "battery", "sensing_rate_bps"]);
        assert_eq!(SensorNode::from_value(&v).unwrap(), healthy);

        let mut crashed = healthy.clone();
        crashed.mark_failed();
        let v = crashed.to_value();
        assert!(v.as_map().unwrap().iter().any(|(k, _)| k == "failed"));
        let back = SensorNode::from_value(&v).unwrap();
        assert!(back.has_failed());
        assert_eq!(back, crashed);
    }
}
