//! Data-gathering routing and per-node energy consumption.
//!
//! Nodes route sensed data to the sink along a shortest-path tree (Euclidean
//! edge weights, computed with a virtual sink source). The tree determines
//! each node's relayed traffic, and with the radio model, its *power draw* —
//! which is what the attacker needs to predict when each victim will die.

use serde::{Deserialize, Serialize};

use crate::energy::RadioEnergyModel;
use crate::graph::Network;
use crate::node::NodeId;

/// A shortest-path data-gathering tree rooted (virtually) at the sink.
///
/// # Example
///
/// ```
/// use wrsn_net::prelude::*;
///
/// let nodes = deploy::uniform(&Region::square(80.0), 30, 3);
/// let net = Network::build(nodes, Point::new(40.0, 40.0), 25.0);
/// let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
/// for id in net.ids() {
///     if tree.is_reachable(id) {
///         assert!(tree.dist_to_sink(id).is_finite());
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTree {
    /// Next hop toward the sink; `None` for sink-adjacent nodes (they deliver
    /// directly) and for unreachable nodes.
    parent: Vec<Option<NodeId>>,
    /// Shortest distance to the sink (m); `INFINITY` if unreachable.
    dist: Vec<f64>,
    /// Whether each node can reach the sink at all.
    reachable: Vec<bool>,
}

// Hand-written impls because `dist` holds `INFINITY` for unreachable nodes
// and JSON has no non-finite numbers: infinite entries round-trip as `null`.
impl Serialize for RoutingTree {
    fn to_value(&self) -> serde::Value {
        let dist: Vec<Option<f64>> = self
            .dist
            .iter()
            .map(|&d| if d.is_finite() { Some(d) } else { None })
            .collect();
        serde::Value::Map(vec![
            ("parent".to_string(), self.parent.to_value()),
            ("dist".to_string(), dist.to_value()),
            ("reachable".to_string(), self.reachable.to_value()),
        ])
    }
}

impl Deserialize for RoutingTree {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "RoutingTree"))?;
        let dist: Vec<Option<f64>> = Deserialize::from_value(serde::map_get(entries, "dist")?)?;
        Ok(RoutingTree {
            parent: Deserialize::from_value(serde::map_get(entries, "parent")?)?,
            dist: dist
                .into_iter()
                .map(|d| d.unwrap_or(f64::INFINITY))
                .collect(),
            reachable: Deserialize::from_value(serde::map_get(entries, "reachable")?)?,
        })
    }
}

impl RoutingTree {
    /// Builds the shortest-path tree over the subgraph induced by `mask`.
    pub fn shortest_path(net: &Network, mask: &[bool]) -> Self {
        let n = net.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();

        for &s in net.sink_neighbors() {
            if !mask.get(s.0).copied().unwrap_or(false) {
                continue;
            }
            let d0 = net.positions()[s.0].distance(net.sink());
            if d0 < dist[s.0] {
                dist[s.0] = d0;
                heap.push(Item { d: d0, v: s.0 });
            }
        }
        while let Some(Item { d, v }) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            for &u in net.neighbors(NodeId(v)) {
                if !mask[u.0] {
                    continue;
                }
                let w = net.positions()[v].distance(net.positions()[u.0]);
                let nd = d + w;
                if nd < dist[u.0] {
                    dist[u.0] = nd;
                    parent[u.0] = Some(NodeId(v));
                    heap.push(Item { d: nd, v: u.0 });
                }
            }
        }
        let reachable = dist.iter().map(|d| d.is_finite()).collect();
        RoutingTree {
            parent,
            dist,
            reachable,
        }
    }

    /// Repairs the tree in place after the nodes in `dead` left the alive
    /// set, touching only the invalidated subtrees instead of rebuilding from
    /// scratch.
    ///
    /// The *affected* set — the dead nodes plus their routing-tree
    /// descendants — is the only part of the tree a death can change: every
    /// other node keeps a shortest path that avoids the dead nodes, and its
    /// distance, parent and reachability (including Dijkstra tie-breaks) are
    /// provably bit-identical to a full [`RoutingTree::shortest_path`] run
    /// over the shrunken mask. Affected nodes are re-relaxed from the
    /// frontier: their alive, still-routed neighbours re-enter the heap at
    /// their existing distances, so pops interleave in the same global
    /// `(dist, id)` order a full build would produce.
    ///
    /// `mask` must already exclude the dead nodes. `affected` is an output
    /// buffer (reused across calls) set to the affected mask; callers use it
    /// to limit downstream power-draw recomputation. When a death
    /// invalidates most of the tree the repair falls back to a full rebuild
    /// (same result, cheaper) and reports it.
    ///
    /// Debug builds re-run the full computation and assert bitwise equality
    /// — the equality harness backing the `routing_repair` property tests.
    pub fn repair_after_deaths(
        &mut self,
        net: &Network,
        mask: &[bool],
        dead: &[NodeId],
        affected: &mut Vec<bool>,
    ) -> RepairReport {
        self.repair_after_deaths_budgeted(net, mask, dead, affected, None)
    }

    /// [`RoutingTree::repair_after_deaths`] with an explicit relaxation
    /// budget (`None` = the default `max(alive / 2, 4096)`). Exposed for the
    /// budget-fallback unit tests; production callers use the default.
    #[allow(clippy::needless_range_loop)] // `affected` co-indexes self.dist/parent/reachable
    fn repair_after_deaths_budgeted(
        &mut self,
        net: &Network,
        mask: &[bool],
        dead: &[NodeId],
        affected: &mut Vec<bool>,
        budget_override: Option<usize>,
    ) -> RepairReport {
        let n = net.node_count();
        debug_assert_eq!(self.dist.len(), n);
        affected.clear();
        affected.resize(n, false);

        // Classify every node: 0 = unknown, 1 = clean, 2 = affected,
        // 3 = on the current walk. Affected = dead ∪ descendants, found by
        // memoized parent-chain walks (O(n) amortized).
        let mut status = vec![0u8; n];
        for &d in dead {
            if d.0 < n {
                status[d.0] = 2;
            }
        }
        let mut path = Vec::new();
        for i in 0..n {
            if status[i] != 0 {
                continue;
            }
            path.clear();
            let mut cur = i;
            let verdict = loop {
                match status[cur] {
                    1 => break 1,
                    2 => break 2,
                    3 => break 1, // defensive: parent pointers form a forest
                    _ => {}
                }
                status[cur] = 3;
                path.push(cur);
                match self.parent[cur] {
                    Some(p) => cur = p.0,
                    // Chain root: sink-adjacent or unreachable — both keep
                    // their state when other nodes die.
                    None => break 1,
                }
            };
            for &v in &path {
                status[v] = verdict;
            }
        }
        let mut affected_count = 0usize;
        let mut alive_count = 0usize;
        for i in 0..n {
            if status[i] == 2 {
                affected[i] = true;
                affected_count += 1;
            }
            if mask.get(i).copied().unwrap_or(false) {
                alive_count += 1;
            }
        }

        // A death that guts most of the tree is repaired fastest by simply
        // rebuilding; the result is identical either way.
        if 2 * affected_count > alive_count {
            *self = RoutingTree::shortest_path(net, mask);
            return RepairReport {
                relaxed: 0,
                full_rebuild: true,
            };
        }

        for i in 0..n {
            if affected[i] {
                self.dist[i] = f64::INFINITY;
                self.parent[i] = None;
            }
        }
        let mut heap = std::collections::BinaryHeap::new();
        // Re-seed affected sink-neighbours exactly as the full build does.
        for &s in net.sink_neighbors() {
            if !affected[s.0] || !mask.get(s.0).copied().unwrap_or(false) {
                continue;
            }
            let d0 = net.positions()[s.0].distance(net.sink());
            if d0 < self.dist[s.0] {
                self.dist[s.0] = d0;
                heap.push(Item { d: d0, v: s.0 });
            }
        }
        // Frontier donors: clean, alive, routed neighbours of affected alive
        // nodes re-enter the heap at their final distances. Their own state
        // cannot improve (their distances are already shortest), but they
        // re-relax the affected region in full-build pop order.
        let mut seeded = vec![false; n];
        for i in 0..n {
            if !affected[i] || !mask[i] {
                continue;
            }
            for &u in net.neighbors(NodeId(i)) {
                if affected[u.0] || seeded[u.0] || !mask[u.0] || !self.dist[u.0].is_finite() {
                    continue;
                }
                seeded[u.0] = true;
                heap.push(Item {
                    d: self.dist[u.0],
                    v: u.0,
                });
            }
        }
        // Relaxation budget: the affected-fraction gate above bounds the
        // *invalidated* region, but frontier donors can still blow the
        // re-relaxation up to a large multiple of it at scale (13.2M settles
        // across a 1M-node run before this bound existed). Past the budget a
        // full rebuild is cheaper — and identical, full build being the
        // semantic reference — so abandon the repair mid-relax; the rebuild
        // overwrites all distance/parent/reachability state wholesale. Each
        // non-stale pop settles a node at its final distance once, so
        // `relaxed <= alive_count`: with the 4096 floor the budget can only
        // trigger above 4096 alive nodes, leaving the paper-scale figure
        // experiments (and their golden traces) untouched.
        let budget = budget_override.unwrap_or_else(|| (alive_count / 2).max(4096));
        let mut relaxed = 0usize;
        while let Some(Item { d, v }) = heap.pop() {
            if d > self.dist[v] {
                continue;
            }
            relaxed += 1;
            if relaxed > budget {
                *self = RoutingTree::shortest_path(net, mask);
                return RepairReport {
                    relaxed: 0,
                    full_rebuild: true,
                };
            }
            for &u in net.neighbors(NodeId(v)) {
                if !mask[u.0] {
                    continue;
                }
                let w = net.positions()[v].distance(net.positions()[u.0]);
                let nd = d + w;
                if nd < self.dist[u.0] {
                    self.dist[u.0] = nd;
                    self.parent[u.0] = Some(NodeId(v));
                    heap.push(Item { d: nd, v: u.0 });
                }
            }
        }
        for i in 0..n {
            if affected[i] {
                self.reachable[i] = self.dist[i].is_finite();
            }
        }
        #[cfg(debug_assertions)]
        debug_assert!(
            self.bitwise_eq(&RoutingTree::shortest_path(net, mask)),
            "incremental routing repair diverged from the full recomputation"
        );
        RepairReport {
            relaxed,
            full_rebuild: false,
        }
    }

    /// Exact (bitwise on distances) equality — the repair harness oracle.
    #[cfg(debug_assertions)]
    fn bitwise_eq(&self, other: &RoutingTree) -> bool {
        self.parent == other.parent
            && self.reachable == other.reachable
            && self
                .dist
                .iter()
                .zip(&other.dist)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Next hop of `id` toward the sink (`None` = delivers directly to the
    /// sink, or is unreachable — check [`RoutingTree::is_reachable`]).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent.get(id.0).copied().flatten()
    }

    /// Shortest distance from `id` to the sink, metres (`INFINITY` if
    /// unreachable).
    pub fn dist_to_sink(&self, id: NodeId) -> f64 {
        self.dist.get(id.0).copied().unwrap_or(f64::INFINITY)
    }

    /// Whether `id` can reach the sink.
    pub fn is_reachable(&self, id: NodeId) -> bool {
        self.reachable.get(id.0).copied().unwrap_or(false)
    }

    /// Number of nodes that can reach the sink.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// The hop path from `id` to the sink (inclusive of `id`, exclusive of the
    /// sink); empty if unreachable.
    pub fn path_to_sink(&self, id: NodeId) -> Vec<NodeId> {
        if !self.is_reachable(id) {
            return Vec::new();
        }
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }
}

/// Outcome of [`RoutingTree::repair_after_deaths`].
#[derive(Debug, Clone, Copy)]
pub struct RepairReport {
    /// Nodes settled by the incremental re-relaxation (frontier donors plus
    /// re-routed affected nodes); `0` when a full rebuild ran instead.
    pub relaxed: usize,
    /// Whether the repair fell back to a full rebuild because the deaths
    /// invalidated most of the tree.
    pub full_rebuild: bool,
}

/// Per-node traffic derived from a routing tree, bits per second.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficLoad {
    /// Inbound relayed traffic per node, b/s.
    pub rx_bps: Vec<f64>,
    /// Outbound traffic (own sensing + relayed) per node, b/s.
    pub tx_bps: Vec<f64>,
}

/// Computes each node's steady-state traffic under `tree`.
///
/// Unreachable or masked-out nodes carry no traffic.
pub fn traffic_load(net: &Network, tree: &RoutingTree, mask: &[bool]) -> TrafficLoad {
    let n = net.node_count();
    let mut rx = vec![0.0; n];
    let mut tx = vec![0.0; n];

    // Process nodes farthest-first so children are accumulated before parents.
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| mask.get(i).copied().unwrap_or(false) && tree.is_reachable(NodeId(i)))
        .collect();
    order.sort_by(|&a, &b| {
        tree.dist_to_sink(NodeId(b))
            .partial_cmp(&tree.dist_to_sink(NodeId(a)))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for &i in &order {
        tx[i] += net.sensing_rates_bps()[i];
        if let Some(p) = tree.parent(NodeId(i)) {
            rx[p.0] += tx[i];
            tx[p.0] += tx[i];
        }
    }
    TrafficLoad {
        rx_bps: rx,
        tx_bps: tx,
    }
}

/// Steady-state power draw of every node (W): relay traffic over the hop to
/// its parent (or the sink for sink-adjacent nodes) plus idle power.
///
/// Dead/unreachable nodes draw nothing (their radios are down or they have
/// nothing to send — the conservative choice for lifetime estimates is made
/// in `wrsn-sim`, which still drains idle power from alive-but-disconnected
/// nodes).
#[allow(clippy::needless_range_loop)] // index form mirrors the matrix math
pub fn node_power(
    net: &Network,
    tree: &RoutingTree,
    load: &TrafficLoad,
    radio: &RadioEnergyModel,
    mask: &[bool],
) -> Vec<f64> {
    let n = net.node_count();
    let mut out = vec![0.0; n];
    for i in 0..n {
        if !mask.get(i).copied().unwrap_or(false) || !tree.is_reachable(NodeId(i)) {
            continue;
        }
        let hop = match tree.parent(NodeId(i)) {
            Some(p) => net.positions()[i].distance(net.positions()[p.0]),
            None => net.positions()[i].distance(net.sink()),
        };
        out[i] = radio.relay_power(load.rx_bps[i], load.tx_bps[i], hop);
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Item {
    d: f64,
    v: usize,
}

impl Eq for Item {}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .d
            .partial_cmp(&self.d)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::node::SensorNode;

    /// Path 0-1-2-3-4 with sink next to node 0.
    fn path_net() -> Network {
        let nodes = (0..5)
            .map(|i| SensorNode::new(Point::new(10.0 * (i + 1) as f64, 0.0)))
            .collect();
        Network::build(nodes, Point::new(0.0, 0.0), 12.0)
    }

    #[test]
    fn tree_points_toward_sink() {
        let net = path_net();
        let mask = net.alive_mask();
        let tree = RoutingTree::shortest_path(&net, &mask);
        assert_eq!(tree.parent(NodeId(0)), None); // direct to sink
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(tree.parent(NodeId(4)), Some(NodeId(3)));
        assert!((tree.dist_to_sink(NodeId(4)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn path_to_sink_lists_hops() {
        let net = path_net();
        let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
        assert_eq!(
            tree.path_to_sink(NodeId(3)),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn unreachable_after_cut() {
        let net = path_net();
        let mut mask = net.alive_mask();
        mask[1] = false;
        let tree = RoutingTree::shortest_path(&net, &mask);
        assert!(tree.is_reachable(NodeId(0)));
        assert!(!tree.is_reachable(NodeId(2)));
        assert!(tree.path_to_sink(NodeId(2)).is_empty());
        assert_eq!(tree.reachable_count(), 1);
    }

    #[test]
    fn traffic_accumulates_toward_sink() {
        let net = path_net();
        let mask = net.alive_mask();
        let tree = RoutingTree::shortest_path(&net, &mask);
        let load = traffic_load(&net, &tree, &mask);
        let rate = net.sensing_rates_bps()[0];
        // Node 0 relays everyone: tx = 5·rate, rx = 4·rate.
        assert!((load.tx_bps[0] - 5.0 * rate).abs() < 1e-9);
        assert!((load.rx_bps[0] - 4.0 * rate).abs() < 1e-9);
        // Leaf node 4: tx = rate, rx = 0.
        assert!((load.tx_bps[4] - rate).abs() < 1e-9);
        assert_eq!(load.rx_bps[4], 0.0);
    }

    #[test]
    fn sink_adjacent_node_burns_most_power() {
        let net = path_net();
        let mask = net.alive_mask();
        let tree = RoutingTree::shortest_path(&net, &mask);
        let load = traffic_load(&net, &tree, &mask);
        let power = node_power(&net, &tree, &load, &RadioEnergyModel::classical(), &mask);
        let max = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max, 0, "power = {power:?}");
        assert!(power.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn repair_after_tail_death_matches_full_rebuild() {
        let net = path_net();
        let mut mask = net.alive_mask();
        let mut tree = RoutingTree::shortest_path(&net, &mask);
        mask[3] = false;
        let mut affected = Vec::new();
        let report = tree.repair_after_deaths(&net, &mask, &[NodeId(3)], &mut affected);
        assert!(!report.full_rebuild, "small subtree should repair in place");
        let full = RoutingTree::shortest_path(&net, &mask);
        for i in 0..net.node_count() {
            let id = NodeId(i);
            assert_eq!(tree.parent(id), full.parent(id), "parent of {i}");
            assert_eq!(tree.is_reachable(id), full.is_reachable(id));
            assert_eq!(
                tree.dist_to_sink(id).to_bits(),
                full.dist_to_sink(id).to_bits()
            );
        }
        // The dead node and its downstream subtree are the affected set.
        assert_eq!(affected, vec![false, false, false, true, true]);
        assert!(!tree.is_reachable(NodeId(4)));
    }

    #[test]
    fn repair_of_sink_neighbor_death_reroutes_survivors() {
        // Two parallel chains to the sink; killing one sink-adjacent node
        // reroutes its child through the other chain's frontier.
        let nodes = vec![
            SensorNode::new(Point::new(10.0, 0.0)),  // 0: sink-adjacent
            SensorNode::new(Point::new(0.0, 10.0)),  // 1: sink-adjacent
            SensorNode::new(Point::new(10.0, 10.0)), // 2: tied child of 0/1
            SensorNode::new(Point::new(0.0, 20.0)),  // 3: child of 1
            SensorNode::new(Point::new(0.0, 30.0)),  // 4: child of 3
        ];
        let net = Network::build(nodes, Point::new(0.0, 0.0), 12.0);
        let mut mask = net.alive_mask();
        let mut tree = RoutingTree::shortest_path(&net, &mask);
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(0)));
        mask[0] = false;
        let mut affected = Vec::new();
        let report = tree.repair_after_deaths(&net, &mask, &[NodeId(0)], &mut affected);
        assert!(!report.full_rebuild);
        assert!(report.relaxed > 0, "frontier donors must re-relax");
        let full = RoutingTree::shortest_path(&net, &mask);
        for i in 0..net.node_count() {
            let id = NodeId(i);
            assert_eq!(tree.parent(id), full.parent(id));
            assert_eq!(
                tree.dist_to_sink(id).to_bits(),
                full.dist_to_sink(id).to_bits()
            );
        }
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn exhausted_relaxation_budget_falls_back_to_full_rebuild() {
        // Same topology as the reroute test: killing sink-adjacent node 0
        // re-relaxes node 2 through donor node 1 — normally in place, but a
        // zero budget forces the fallback, which must be bitwise identical.
        let nodes = vec![
            SensorNode::new(Point::new(10.0, 0.0)),
            SensorNode::new(Point::new(0.0, 10.0)),
            SensorNode::new(Point::new(10.0, 10.0)),
            SensorNode::new(Point::new(0.0, 20.0)),
            SensorNode::new(Point::new(0.0, 30.0)),
        ];
        let net = Network::build(nodes, Point::new(0.0, 0.0), 12.0);
        let mut mask = net.alive_mask();
        let mut tree = RoutingTree::shortest_path(&net, &mask);
        mask[0] = false;
        let mut affected = Vec::new();
        let report =
            tree.repair_after_deaths_budgeted(&net, &mask, &[NodeId(0)], &mut affected, Some(0));
        assert!(report.full_rebuild, "a zero budget must force the fallback");
        assert_eq!(report.relaxed, 0);
        let full = RoutingTree::shortest_path(&net, &mask);
        for i in 0..net.node_count() {
            let id = NodeId(i);
            assert_eq!(tree.parent(id), full.parent(id), "parent of {i}");
            assert_eq!(tree.is_reachable(id), full.is_reachable(id));
            assert_eq!(
                tree.dist_to_sink(id).to_bits(),
                full.dist_to_sink(id).to_bits()
            );
        }
    }

    #[test]
    fn default_budget_never_triggers_at_figure_scale() {
        // The default budget floor is 4096 settles and `relaxed` is bounded
        // by the alive count, so small worlds must always repair in place.
        let net = path_net();
        let mut mask = net.alive_mask();
        let mut tree = RoutingTree::shortest_path(&net, &mask);
        mask[3] = false;
        let mut affected = Vec::new();
        let report = tree.repair_after_deaths(&net, &mask, &[NodeId(3)], &mut affected);
        assert!(!report.full_rebuild);
    }

    #[test]
    fn masked_out_nodes_carry_no_traffic_or_power() {
        let net = path_net();
        let mut mask = net.alive_mask();
        mask[2] = false;
        let tree = RoutingTree::shortest_path(&net, &mask);
        let load = traffic_load(&net, &tree, &mask);
        let power = node_power(&net, &tree, &load, &RadioEnergyModel::classical(), &mask);
        assert_eq!(load.tx_bps[2], 0.0);
        assert_eq!(power[2], 0.0);
        // Downstream nodes are cut off, so they carry no deliverable traffic.
        assert_eq!(load.tx_bps[3], 0.0);
        assert_eq!(power[3], 0.0);
    }
}
