//! Data-gathering routing and per-node energy consumption.
//!
//! Nodes route sensed data to the sink along a shortest-path tree (Euclidean
//! edge weights, computed with a virtual sink source). The tree determines
//! each node's relayed traffic, and with the radio model, its *power draw* —
//! which is what the attacker needs to predict when each victim will die.

use serde::{Deserialize, Serialize};

use crate::energy::RadioEnergyModel;
use crate::graph::Network;
use crate::node::NodeId;

/// A shortest-path data-gathering tree rooted (virtually) at the sink.
///
/// # Example
///
/// ```
/// use wrsn_net::prelude::*;
///
/// let nodes = deploy::uniform(&Region::square(80.0), 30, 3);
/// let net = Network::build(nodes, Point::new(40.0, 40.0), 25.0);
/// let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
/// for id in net.ids() {
///     if tree.is_reachable(id) {
///         assert!(tree.dist_to_sink(id).is_finite());
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTree {
    /// Next hop toward the sink; `None` for sink-adjacent nodes (they deliver
    /// directly) and for unreachable nodes.
    parent: Vec<Option<NodeId>>,
    /// Shortest distance to the sink (m); `INFINITY` if unreachable.
    dist: Vec<f64>,
    /// Whether each node can reach the sink at all.
    reachable: Vec<bool>,
}

// Hand-written impls because `dist` holds `INFINITY` for unreachable nodes
// and JSON has no non-finite numbers: infinite entries round-trip as `null`.
impl Serialize for RoutingTree {
    fn to_value(&self) -> serde::Value {
        let dist: Vec<Option<f64>> = self
            .dist
            .iter()
            .map(|&d| if d.is_finite() { Some(d) } else { None })
            .collect();
        serde::Value::Map(vec![
            ("parent".to_string(), self.parent.to_value()),
            ("dist".to_string(), dist.to_value()),
            ("reachable".to_string(), self.reachable.to_value()),
        ])
    }
}

impl Deserialize for RoutingTree {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "RoutingTree"))?;
        let dist: Vec<Option<f64>> = Deserialize::from_value(serde::map_get(entries, "dist")?)?;
        Ok(RoutingTree {
            parent: Deserialize::from_value(serde::map_get(entries, "parent")?)?,
            dist: dist
                .into_iter()
                .map(|d| d.unwrap_or(f64::INFINITY))
                .collect(),
            reachable: Deserialize::from_value(serde::map_get(entries, "reachable")?)?,
        })
    }
}

impl RoutingTree {
    /// Builds the shortest-path tree over the subgraph induced by `mask`.
    pub fn shortest_path(net: &Network, mask: &[bool]) -> Self {
        let n = net.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();

        for &s in net.sink_neighbors() {
            if !mask.get(s.0).copied().unwrap_or(false) {
                continue;
            }
            let d0 = net.nodes()[s.0].position().distance(net.sink());
            if d0 < dist[s.0] {
                dist[s.0] = d0;
                heap.push(Item { d: d0, v: s.0 });
            }
        }
        while let Some(Item { d, v }) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            for &u in net.neighbors(NodeId(v)) {
                if !mask[u.0] {
                    continue;
                }
                let w = net.nodes()[v]
                    .position()
                    .distance(net.nodes()[u.0].position());
                let nd = d + w;
                if nd < dist[u.0] {
                    dist[u.0] = nd;
                    parent[u.0] = Some(NodeId(v));
                    heap.push(Item { d: nd, v: u.0 });
                }
            }
        }
        let reachable = dist.iter().map(|d| d.is_finite()).collect();
        RoutingTree {
            parent,
            dist,
            reachable,
        }
    }

    /// Next hop of `id` toward the sink (`None` = delivers directly to the
    /// sink, or is unreachable — check [`RoutingTree::is_reachable`]).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent.get(id.0).copied().flatten()
    }

    /// Shortest distance from `id` to the sink, metres (`INFINITY` if
    /// unreachable).
    pub fn dist_to_sink(&self, id: NodeId) -> f64 {
        self.dist.get(id.0).copied().unwrap_or(f64::INFINITY)
    }

    /// Whether `id` can reach the sink.
    pub fn is_reachable(&self, id: NodeId) -> bool {
        self.reachable.get(id.0).copied().unwrap_or(false)
    }

    /// Number of nodes that can reach the sink.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// The hop path from `id` to the sink (inclusive of `id`, exclusive of the
    /// sink); empty if unreachable.
    pub fn path_to_sink(&self, id: NodeId) -> Vec<NodeId> {
        if !self.is_reachable(id) {
            return Vec::new();
        }
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }
}

/// Per-node traffic derived from a routing tree, bits per second.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficLoad {
    /// Inbound relayed traffic per node, b/s.
    pub rx_bps: Vec<f64>,
    /// Outbound traffic (own sensing + relayed) per node, b/s.
    pub tx_bps: Vec<f64>,
}

/// Computes each node's steady-state traffic under `tree`.
///
/// Unreachable or masked-out nodes carry no traffic.
pub fn traffic_load(net: &Network, tree: &RoutingTree, mask: &[bool]) -> TrafficLoad {
    let n = net.node_count();
    let mut rx = vec![0.0; n];
    let mut tx = vec![0.0; n];

    // Process nodes farthest-first so children are accumulated before parents.
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| mask.get(i).copied().unwrap_or(false) && tree.is_reachable(NodeId(i)))
        .collect();
    order.sort_by(|&a, &b| {
        tree.dist_to_sink(NodeId(b))
            .partial_cmp(&tree.dist_to_sink(NodeId(a)))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for &i in &order {
        tx[i] += net.nodes()[i].sensing_rate_bps();
        if let Some(p) = tree.parent(NodeId(i)) {
            rx[p.0] += tx[i];
            tx[p.0] += tx[i];
        }
    }
    TrafficLoad {
        rx_bps: rx,
        tx_bps: tx,
    }
}

/// Steady-state power draw of every node (W): relay traffic over the hop to
/// its parent (or the sink for sink-adjacent nodes) plus idle power.
///
/// Dead/unreachable nodes draw nothing (their radios are down or they have
/// nothing to send — the conservative choice for lifetime estimates is made
/// in `wrsn-sim`, which still drains idle power from alive-but-disconnected
/// nodes).
#[allow(clippy::needless_range_loop)] // index form mirrors the matrix math
pub fn node_power(
    net: &Network,
    tree: &RoutingTree,
    load: &TrafficLoad,
    radio: &RadioEnergyModel,
    mask: &[bool],
) -> Vec<f64> {
    let n = net.node_count();
    let mut out = vec![0.0; n];
    for i in 0..n {
        if !mask.get(i).copied().unwrap_or(false) || !tree.is_reachable(NodeId(i)) {
            continue;
        }
        let hop = match tree.parent(NodeId(i)) {
            Some(p) => net.nodes()[i]
                .position()
                .distance(net.nodes()[p.0].position()),
            None => net.nodes()[i].position().distance(net.sink()),
        };
        out[i] = radio.relay_power(load.rx_bps[i], load.tx_bps[i], hop);
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Item {
    d: f64,
    v: usize,
}

impl Eq for Item {}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .d
            .partial_cmp(&self.d)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::node::SensorNode;

    /// Path 0-1-2-3-4 with sink next to node 0.
    fn path_net() -> Network {
        let nodes = (0..5)
            .map(|i| SensorNode::new(Point::new(10.0 * (i + 1) as f64, 0.0)))
            .collect();
        Network::build(nodes, Point::new(0.0, 0.0), 12.0)
    }

    #[test]
    fn tree_points_toward_sink() {
        let net = path_net();
        let mask = net.alive_mask();
        let tree = RoutingTree::shortest_path(&net, &mask);
        assert_eq!(tree.parent(NodeId(0)), None); // direct to sink
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(tree.parent(NodeId(4)), Some(NodeId(3)));
        assert!((tree.dist_to_sink(NodeId(4)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn path_to_sink_lists_hops() {
        let net = path_net();
        let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
        assert_eq!(
            tree.path_to_sink(NodeId(3)),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn unreachable_after_cut() {
        let net = path_net();
        let mut mask = net.alive_mask();
        mask[1] = false;
        let tree = RoutingTree::shortest_path(&net, &mask);
        assert!(tree.is_reachable(NodeId(0)));
        assert!(!tree.is_reachable(NodeId(2)));
        assert!(tree.path_to_sink(NodeId(2)).is_empty());
        assert_eq!(tree.reachable_count(), 1);
    }

    #[test]
    fn traffic_accumulates_toward_sink() {
        let net = path_net();
        let mask = net.alive_mask();
        let tree = RoutingTree::shortest_path(&net, &mask);
        let load = traffic_load(&net, &tree, &mask);
        let rate = net.nodes()[0].sensing_rate_bps();
        // Node 0 relays everyone: tx = 5·rate, rx = 4·rate.
        assert!((load.tx_bps[0] - 5.0 * rate).abs() < 1e-9);
        assert!((load.rx_bps[0] - 4.0 * rate).abs() < 1e-9);
        // Leaf node 4: tx = rate, rx = 0.
        assert!((load.tx_bps[4] - rate).abs() < 1e-9);
        assert_eq!(load.rx_bps[4], 0.0);
    }

    #[test]
    fn sink_adjacent_node_burns_most_power() {
        let net = path_net();
        let mask = net.alive_mask();
        let tree = RoutingTree::shortest_path(&net, &mask);
        let load = traffic_load(&net, &tree, &mask);
        let power = node_power(&net, &tree, &load, &RadioEnergyModel::classical(), &mask);
        let max = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max, 0, "power = {power:?}");
        assert!(power.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn masked_out_nodes_carry_no_traffic_or_power() {
        let net = path_net();
        let mut mask = net.alive_mask();
        mask[2] = false;
        let tree = RoutingTree::shortest_path(&net, &mask);
        let load = traffic_load(&net, &tree, &mask);
        let power = node_power(&net, &tree, &load, &RadioEnergyModel::classical(), &mask);
        assert_eq!(load.tx_bps[2], 0.0);
        assert_eq!(power[2], 0.0);
        // Downstream nodes are cut off, so they carry no deliverable traffic.
        assert_eq!(load.tx_bps[3], 0.0);
        assert_eq!(power[3], 0.0);
    }
}
