//! Property tests for incremental routing repair.
//!
//! Over random deployments and random death sequences, the incrementally
//! repaired [`RoutingTree`] and the incrementally updated power-draw vector
//! must equal the from-scratch [`RoutingTree::shortest_path`] +
//! [`keynode::effective_power_draw`] results *exactly*: bitwise on parents
//! and reachability, 0 ulp on distances and power. The repair re-relaxes the
//! invalidated subtree through the same heap discipline as a full build, so
//! equality holds by construction — these tests pin that invariant against
//! regressions in release builds too (the `debug_assert` inside
//! `repair_after_deaths` only guards debug builds).

use proptest::prelude::*;

use wrsn_net::energy::RadioEnergyModel;
use wrsn_net::keynode;
use wrsn_net::routing::{self, RoutingTree, TrafficLoad};
use wrsn_net::{deploy, Network, NodeId, Point, Region};

fn assert_tree_bitwise(incr: &RoutingTree, full: &RoutingTree, n: usize) {
    for i in 0..n {
        let id = NodeId(i);
        assert_eq!(incr.parent(id), full.parent(id), "parent of node {i}");
        assert_eq!(
            incr.is_reachable(id),
            full.is_reachable(id),
            "reachability of node {i}"
        );
        assert_eq!(
            incr.dist_to_sink(id).to_bits(),
            full.dist_to_sink(id).to_bits(),
            "distance of node {i}"
        );
    }
}

/// Kills the nodes in `deaths` one at a time, repairing incrementally after
/// each, and asserts tree + power equality with the from-scratch computation
/// at every step.
fn check_death_sequence(net: &Network, deaths: &[usize]) {
    let n = net.node_count();
    let radio = RadioEnergyModel::classical();
    let mut mask = vec![true; n];
    let mut tree = RoutingTree::shortest_path(net, &mask);
    let mut load: TrafficLoad = routing::traffic_load(net, &tree, &mask);
    let mut power = keynode::effective_power_draw_with_tree(net, &mask, &radio, &tree, &load);
    let mut affected = Vec::new();

    for &d in deaths {
        let d = d % n;
        if !mask[d] {
            continue;
        }
        mask[d] = false;
        tree.repair_after_deaths(net, &mask, &[NodeId(d)], &mut affected);
        let full = RoutingTree::shortest_path(net, &mask);
        assert_tree_bitwise(&tree, &full, n);

        let new_load = routing::traffic_load(net, &tree, &mask);
        keynode::update_effective_power(
            net, &mask, &radio, &tree, &new_load, &load, &affected, &mut power,
        );
        let full_power = keynode::effective_power_draw(net, &mask, &radio);
        for i in 0..n {
            assert_eq!(
                power[i].to_bits(),
                full_power[i].to_bits(),
                "power of node {i} after killing node {d}: {} vs {}",
                power[i],
                full_power[i]
            );
        }
        load = new_load;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_repair_matches_full_rebuild(
        n in 5usize..60,
        seed in 0u64..1_000,
        range in 15.0f64..35.0,
        deaths in proptest::collection::vec(0usize..60, 1..12),
    ) {
        let nodes = deploy::uniform(&Region::square(100.0), n, seed);
        let net = Network::build(nodes, Point::new(50.0, 50.0), range);
        check_death_sequence(&net, &deaths);
    }
}

/// A zero-jitter grid is maximally tie-heavy: many equal distances exercise
/// the Dijkstra tie-break (`(dist, id)` pop order) that the repair must
/// reproduce exactly.
#[test]
fn repair_preserves_tie_breaks_on_exact_grid() {
    let nodes = deploy::grid(&Region::square(60.0), 5, 5, 0.0, 0);
    let net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
    check_death_sequence(&net, &[12, 6, 18, 0, 24, 7, 11, 13, 17]);
}
