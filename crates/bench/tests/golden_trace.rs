//! Golden snapshot of the JSONL trace for one small deterministic run.
//!
//! Pins the serialized schema (field names, envelope, float formatting) so
//! accidental format drift is caught even when round-trip tests still pass.
//! Regenerate after an *intentional* schema change (and bump
//! `obs::SCHEMA_VERSION` if record shapes changed) with:
//!
//! ```text
//! WRSN_BLESS=1 cargo test -p wrsn-bench --test golden_trace
//! ```

use wrsn::charge::Njnp;
use wrsn::net::deploy;
use wrsn::net::energy::Battery;
use wrsn::net::node::SensorNode;
use wrsn::net::{Network, NodeId, Point, Region};
use wrsn::sim::obs::StatsRecorder;
use wrsn::sim::{MobileCharger, World, WorldConfig};

use wrsn_bench::obs;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_trace.jsonl");

/// One fully deterministic small run: a 2×2 grid, pre-drained, served by
/// NJNP over a short horizon.
fn golden_stream() -> String {
    let nodes: Vec<SensorNode> = deploy::grid(&Region::square(40.0), 2, 2, 0.0, 0)
        .into_iter()
        .map(|n| SensorNode::with_battery(n.position(), Battery::new(200.0, 40.0)))
        .collect();
    let net = Network::build(nodes, Point::new(20.0, 20.0), 30.0);
    let mut world = World::new(
        net,
        MobileCharger::standard(Point::new(20.0, 20.0)),
        WorldConfig {
            horizon_s: 20_000.0,
            ..WorldConfig::default()
        },
    );
    // Staggered levels below the 40 J warning threshold: every node
    // requests immediately, so the trace exercises requests, moves,
    // charging sessions, and the final health snapshot.
    for (i, level) in [35.0, 30.0, 25.0, 2.0].into_iter().enumerate() {
        world.set_battery_level(NodeId(i), level).unwrap();
    }
    let mut rec = StatsRecorder::new();
    world.run_with(&mut Njnp::new(), &mut rec).expect("run");
    rec.emit_counters("golden");
    let mut stream = String::new();
    for record in rec.records() {
        stream.push_str(&obs::to_jsonl_line(record).unwrap());
        stream.push('\n');
    }
    stream
}

#[test]
fn golden_trace_matches_snapshot() {
    let stream = golden_stream();
    assert_eq!(stream, golden_stream(), "trace must be deterministic");
    if std::env::var_os("WRSN_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).unwrap();
        std::fs::write(GOLDEN_PATH, &stream).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; regenerate with WRSN_BLESS=1 (see module docs)");
    assert_eq!(
        stream, golden,
        "JSONL trace drifted from the golden snapshot; if the change is \
         intentional, regenerate with WRSN_BLESS=1 (see module docs)"
    );
}
