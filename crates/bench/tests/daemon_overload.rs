//! Daemon-level overload and hostile-client hardening: typed shedding under
//! a full queue with retry-to-success byte identity, streamed responses
//! cancelled by mid-stream client disconnects without poisoning the cache,
//! oversized request lines, idle-connection reaping, and a full load run
//! through the fault-injecting chaos proxy — all through the real binary
//! and real sockets.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use wrsn_bench::service::chaos;
use wrsn_bench::service::loadgen::{run_load, LoadConfig};
use wrsn_bench::service::request::{parse_response, ParsedResponse};
use wrsn_bench::service::server::MAX_LINE_BYTES;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wrsnd-ov-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running daemon plus the address it bound.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boots `wrsnd serve --listen 127.0.0.1:0` on `store` with `extra`
    /// flags (queue cap, cache cap, idle timeout) and waits for the banner.
    fn spawn(store: &Path, workers: usize, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut command = Command::new(env!("CARGO_BIN_EXE_wrsnd"));
        command
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--store",
                &store.display().to_string(),
                "--workers",
                &workers.to_string(),
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (key, value) in envs {
            command.env(key, value);
        }
        let mut child = command.spawn().expect("spawn wrsnd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("banner line").expect("readable banner");
        let addr = banner
            .strip_prefix("wrsnd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Daemon { child, addr }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { stream, reader }
    }

    /// A counter from a fresh `stats` request (0 when absent).
    fn stat_u64(&self, key: &str) -> u64 {
        let mut conn = self.connect();
        let stats = conn.request(r#"{"id":"s","op":"stats"}"#);
        assert_eq!(stats.status, "ok", "stats failed: {:?}", stats.error);
        let body = stats.result_canonical.expect("stats body");
        let value: serde::Value = serde_json::from_str(&body).expect("stats body parses");
        value
            .as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map_or(0, |(_, v)| match v {
                serde::Value::U64(n) => *n,
                _ => 0,
            })
    }

    /// Asks for a graceful shutdown and waits for the process to exit 0.
    fn shutdown(&mut self) {
        let mut conn = self.connect();
        let bye = conn.request(r#"{"id":"bye","op":"shutdown"}"#);
        assert_eq!(bye.status, "ok");
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exited {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send(&mut self, line: &str) {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .expect("send request");
    }

    fn recv(&mut self) -> ParsedResponse {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        parse_response(line.trim_end()).expect("parse response")
    }

    fn request(&mut self, line: &str) -> ParsedResponse {
        self.send(line);
        self.recv()
    }
}

#[test]
fn a_full_queue_sheds_typed_and_retries_land_byte_identically() {
    let store = temp_dir("shed");
    // One worker, one queue slot: wedge the worker (forced fig5 hang until
    // its 3 s deadline), fill the slot, and the next distinct request must
    // be shed with a typed `overloaded` + backoff hint.
    let mut daemon = Daemon::spawn(
        &store,
        1,
        &["--queue-cap", "1"],
        &[("WRSN_FORCE_HANG", "fig5")],
    );
    let mut busy = daemon.connect();
    busy.send(r#"{"id":"hang","exp":"fig5","deadline_s":3}"#);
    std::thread::sleep(Duration::from_millis(400)); // worker picks it up
    busy.send(r#"{"id":"fill","scenario":{"nodes":24,"seed":1,"horizon_s":20000}}"#);
    std::thread::sleep(Duration::from_millis(100)); // fill occupies the queue

    const SPEC_C: &str = r#"{"id":"c","scenario":{"nodes":24,"seed":2,"horizon_s":20000}}"#;
    let mut client = daemon.connect();
    let first = client.request(SPEC_C);
    assert_eq!(first.status, "overloaded", "error: {:?}", first.error);
    let hint = first.retry_after_ms.expect("overloaded carries a hint");
    assert!(hint >= 25, "hint {hint} below the floor");

    // The client contract: keep retrying on the daemon's hint and the
    // request eventually succeeds (the wedge times out at 3 s).
    let mut shed_seen = 1u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    let settled = loop {
        assert!(Instant::now() < deadline, "retries never landed");
        std::thread::sleep(Duration::from_millis(hint.min(200)));
        let attempt = client.request(SPEC_C);
        match attempt.status.as_str() {
            "overloaded" => shed_seen += 1,
            "ok" => break attempt,
            other => panic!("unexpected status {other}: {:?}", attempt.error),
        }
    };
    let bytes = settled.result_canonical.expect("ok has a result");
    let digest = settled.digest.expect("ok has a digest");

    // Byte identity across the shed/retry episode: a replay is a cache hit
    // with the same bytes.
    let replay = client.request(SPEC_C);
    assert_eq!(replay.status, "ok");
    assert_eq!(replay.cache.as_deref(), Some("hit"));
    assert_eq!(replay.digest.as_deref(), Some(digest.as_str()));
    assert_eq!(replay.result_canonical.as_deref(), Some(bytes.as_str()));

    // The wedged and queued requests resolved on their own connection.
    let wedged = busy.recv();
    assert_eq!(wedged.status, "timeout", "error: {:?}", wedged.error);
    let filled = busy.recv();
    assert_eq!(filled.status, "ok", "error: {:?}", filled.error);

    assert!(daemon.stat_u64("requests_shed") >= shed_seen);
    assert!(daemon.stat_u64("queue_high_watermark") >= 1);
    drop(client);
    drop(busy);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

/// A scenario slow enough (seconds, debug build) to stream many progress
/// frames — the disconnect below lands mid-stream with plenty of sim left.
const SLOW_STREAM: &str = r#"{"id":"slow","scenario":{"nodes":1000,"seed":7,"horizon_s":200000},"deadline_s":300,"stream":true}"#;
const SLOW_PLAIN: &str =
    r#"{"id":"plain","scenario":{"nodes":1000,"seed":7,"horizon_s":200000},"deadline_s":300}"#;

#[test]
fn a_mid_stream_disconnect_cancels_the_run_and_leaves_the_cache_valid() {
    let store = temp_dir("stream");
    let mut daemon = Daemon::spawn(&store, 1, &[], &[]);

    // Start a streamed run, read one progress frame to prove we are
    // mid-stream, then vanish.
    let mut conn = daemon.connect();
    conn.send(SLOW_STREAM);
    let frame = conn.recv();
    assert_eq!(frame.status, "progress");
    assert_eq!(frame.seq, Some(0));
    assert!(frame.records.is_some_and(|r| !r.is_empty()));
    drop(conn);

    // The daemon notices the dead client at the next frame flush and
    // cancels the computation cooperatively.
    let deadline = Instant::now() + Duration::from_secs(60);
    while daemon.stat_u64("stream_cancels") == 0 {
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the streamed run"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The cancelled run must not have poisoned the store: the same spec
    // computes fresh, replays as a validated hit, byte-identically.
    let mut conn = daemon.connect();
    let fresh = conn.request(SLOW_PLAIN);
    assert_eq!(fresh.status, "ok", "error: {:?}", fresh.error);
    assert_eq!(fresh.cache.as_deref(), Some("miss"), "no partial artifact");
    let bytes = fresh.result_canonical.expect("ok has a result");
    let replay = conn.request(SLOW_PLAIN);
    assert_eq!(replay.cache.as_deref(), Some("hit"));
    assert_eq!(replay.result_canonical.as_deref(), Some(bytes.as_str()));
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn streamed_and_plain_responses_share_digest_and_final_bytes() {
    let store = temp_dir("streameq");
    let mut daemon = Daemon::spawn(&store, 1, &[], &[]);
    const PLAIN: &str = r#"{"id":"p","scenario":{"nodes":80,"seed":3,"horizon_s":100000}}"#;
    const STREAMED: &str =
        r#"{"id":"q","scenario":{"nodes":80,"seed":3,"horizon_s":100000},"stream":true}"#;

    let mut conn = daemon.connect();
    let plain = conn.request(PLAIN);
    assert_eq!(plain.status, "ok", "error: {:?}", plain.error);

    // The streamed duplicate is a cache hit: final frame only, same bytes.
    let hit = conn.request(STREAMED);
    assert_eq!(hit.status, "ok");
    assert_eq!(hit.cache.as_deref(), Some("hit"));
    assert_eq!(hit.digest, plain.digest);
    assert_eq!(hit.result_canonical, plain.result_canonical);

    // On a cold store the same streamed request emits frames, then a final
    // whose digest and bytes still match the plain run.
    drop(conn);
    daemon.shutdown();
    let cold = temp_dir("streameq-cold");
    let mut daemon = Daemon::spawn(&cold, 1, &[], &[]);
    let mut conn = daemon.connect();
    conn.send(STREAMED);
    let mut frames = 0u64;
    let streamed = loop {
        let line = conn.recv();
        if line.status == "progress" {
            assert_eq!(line.seq, Some(frames));
            frames += 1;
            continue;
        }
        break line;
    };
    assert!(frames > 0, "a cold streamed run must emit progress frames");
    assert_eq!(streamed.status, "ok", "error: {:?}", streamed.error);
    assert_eq!(streamed.cache.as_deref(), Some("miss"));
    assert_eq!(streamed.digest, plain.digest);
    assert_eq!(streamed.result_canonical, plain.result_canonical);
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&cold);
}

#[test]
fn an_oversized_request_line_is_rejected_typed_and_the_connection_closed() {
    let store = temp_dir("oversize");
    let mut daemon = Daemon::spawn(&store, 1, &[], &[]);

    let mut conn = daemon.connect();
    let huge = vec![b'x'; MAX_LINE_BYTES + 64];
    conn.stream.write_all(&huge).expect("write oversized line");
    conn.stream.write_all(b"\n").expect("terminate line");
    conn.stream.flush().expect("flush");
    let reply = conn.recv();
    assert_eq!(reply.status, "invalid");
    assert!(
        reply.error.unwrap_or_default().contains("exceeds"),
        "typed rejection names the cap"
    );
    let mut rest = String::new();
    let n = conn.reader.read_line(&mut rest).expect("read after reject");
    assert_eq!(
        n, 0,
        "daemon must close the connection after an oversized line"
    );

    // The daemon itself is unharmed.
    let mut conn = daemon.connect();
    let pong = conn.request(r#"{"id":"p","op":"ping"}"#);
    assert_eq!(pong.status, "ok");
    assert!(daemon.stat_u64("requests_oversized") >= 1);
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn idle_connections_are_reaped_but_waiting_clients_are_not() {
    let store = temp_dir("idle");
    let mut daemon = Daemon::spawn(&store, 1, &["--idle-timeout-s", "0.3"], &[]);

    // A connection with a request in flight survives the idle window (the
    // forced hang holds the worker well past 0.3 s before the deadline).
    let mut waiting = daemon.connect();
    let slow = waiting.request(
        r#"{"id":"w","scenario":{"nodes":1000,"seed":9,"horizon_s":200000},"deadline_s":300}"#,
    );
    assert_eq!(slow.status, "ok", "error: {:?}", slow.error);
    drop(waiting);

    // A connection that goes quiet with nothing in flight is reaped: the
    // daemon closes it and counts it.
    let mut idle = daemon.connect();
    let pong = idle.request(r#"{"id":"p","op":"ping"}"#);
    assert_eq!(pong.status, "ok");
    let mut line = String::new();
    let started = Instant::now();
    let n = idle.reader.read_line(&mut line).expect("wait for reap");
    assert_eq!(n, 0, "reaped connection closes cleanly, got {line:?}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "reap must happen at the idle timeout"
    );
    assert!(daemon.stat_u64("conns_reaped") >= 1);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn a_load_run_through_the_chaos_proxy_converges_with_zero_violations() {
    let store = temp_dir("chaos");
    // Small capacity so the chaos run exercises shedding too, not just
    // drops and stalls.
    let mut daemon = Daemon::spawn(&store, 2, &["--queue-cap", "4"], &[]);
    let (proxy_addr, proxy) = chaos::spawn(&daemon.addr, 42).expect("spawn chaos proxy");

    let config = LoadConfig {
        connect: proxy_addr.to_string(),
        requests: 24,
        conns: 3,
        dup_frac: 0.4,
        stream_frac: 0.25,
        deadline_s: 120.0,
        seed: 7,
        max_attempts: 10,
        verify_exp: None,
        json_path: None,
        shutdown: false,
    };
    let report = run_load(&config).expect("load run completes");
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "chaos must never produce wrong bytes"
    );
    assert_eq!(
        report.ok, report.sent,
        "every request eventually succeeds through drops and stalls"
    );
    proxy.stop();

    // The daemon shrugged it all off.
    let mut conn = daemon.connect();
    let pong = conn.request(r#"{"id":"p","op":"ping"}"#);
    assert_eq!(pong.status, "ok");
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}
