//! Release-mode golden digest over full experiment traces.
//!
//! The perf work on the simulation hot path (incremental routing repair,
//! zero-allocation advance, spatial-grid network build) promises *byte
//! identical* results. This test pins an FNV-1a digest of the complete JSONL
//! trace of two sim-backed experiments, fig9 and fig13, so CI can run it in
//! release mode (where `debug_assert` equality harnesses are compiled out)
//! and still catch any drift in events, sessions, snapshots or float
//! formatting. Regenerate after an *intentional* trace change with:
//!
//! ```text
//! WRSN_BLESS=1 cargo test --release -p wrsn-bench --test golden_exp_digest
//! ```

use wrsn_bench::obs::{self, StatsRecorder};

const DIGEST_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/golden_exp_digest.txt"
);

/// FNV-1a over the experiment's full JSONL trace.
fn digest(id: &str) -> u64 {
    let mut rec = StatsRecorder::new();
    wrsn_bench::run_with(id, &mut rec).unwrap();
    rec.emit_counters(id);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for record in rec.records() {
        let line = obs::to_jsonl_line(record).unwrap();
        for byte in line.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn fig9_and_fig13_traces_match_golden_digest() {
    let current = format!(
        "fig9:{:016x}\nfig13:{:016x}\n",
        digest("fig9"),
        digest("fig13")
    );
    if std::env::var_os("WRSN_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).unwrap();
        std::fs::write(DIGEST_PATH, &current).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(DIGEST_PATH)
        .expect("golden digest missing; regenerate with WRSN_BLESS=1 (see module docs)");
    assert_eq!(
        current, golden,
        "experiment traces drifted from the golden digest; if the change is \
         intentional, regenerate with WRSN_BLESS=1 (see module docs)"
    );
}
