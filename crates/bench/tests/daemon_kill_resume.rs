//! Daemon-level durability: SIGKILL `wrsnd` mid-request and prove the
//! restarted daemon serves the same scenario digest byte-identically from
//! its artifact store — no duplicate compute, no corrupt cache entry — plus
//! deadline enforcement and worker-thread reuse after a payload panic,
//! exercised through the real binary and real sockets.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use wrsn_bench::service::request::{parse_response, ParsedResponse};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wrsnd-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running daemon plus the address it bound.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boots `wrsnd serve --listen 127.0.0.1:0` on `store` and waits for
    /// its "listening on" banner. `envs` lets a test arm the fault hooks.
    fn spawn(store: &Path, workers: usize, envs: &[(&str, &str)]) -> Daemon {
        let mut command = Command::new(env!("CARGO_BIN_EXE_wrsnd"));
        command
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--store",
                &store.display().to_string(),
                "--workers",
                &workers.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (key, value) in envs {
            command.env(key, value);
        }
        let mut child = command.spawn().expect("spawn wrsnd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("banner line").expect("readable banner");
        let addr = banner
            .strip_prefix("wrsnd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Daemon { child, addr }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { stream, reader }
    }

    /// SIGKILL — the crash the artifact store must survive.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks for a graceful shutdown and waits for the process to exit 0.
    fn shutdown(&mut self) {
        let mut conn = self.connect();
        let bye = conn.request(r#"{"id":"bye","op":"shutdown"}"#);
        assert_eq!(bye.status, "ok");
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exited {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send(&mut self, line: &str) {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .expect("send request");
    }

    fn recv(&mut self) -> ParsedResponse {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        parse_response(line.trim_end()).expect("parse response")
    }

    fn request(&mut self, line: &str) -> ParsedResponse {
        self.send(line);
        self.recv()
    }
}

const SCENARIO_A: &str =
    r#"{"id":"a","scenario":{"nodes":24,"seed":7,"horizon_s":20000},"deadline_s":120}"#;

#[test]
fn sigkill_mid_request_then_restart_serves_the_same_digest_byte_identically() {
    let store = temp_dir("sigkill");

    // Phase 1: a clean daemon computes scenario A and caches it.
    let mut daemon = Daemon::spawn(&store, 2, &[]);
    let mut conn = daemon.connect();
    let first = conn.request(SCENARIO_A);
    assert_eq!(first.status, "ok", "error: {:?}", first.error);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    let digest = first.digest.clone().expect("work response has a digest");
    let bytes = first.result_canonical.clone().expect("ok has a result");

    // Same scenario again: a validated cache hit, byte-identical.
    let again = conn.request(SCENARIO_A);
    assert_eq!(again.cache.as_deref(), Some("hit"));
    assert_eq!(again.digest.as_deref(), Some(digest.as_str()));
    assert_eq!(again.result_canonical.as_deref(), Some(bytes.as_str()));

    // Phase 2: wedge an in-flight request (the fig5 fault hook hangs its
    // worker until cancelled) and SIGKILL the daemon mid-request.
    daemon.kill();
    drop(conn);
    let mut daemon = Daemon::spawn(&store, 2, &[("WRSN_FORCE_HANG", "fig5")]);
    let mut conn = daemon.connect();
    conn.send(r#"{"id":"wedged","exp":"fig5","deadline_s":600}"#);
    std::thread::sleep(Duration::from_millis(400));
    daemon.kill();
    drop(conn);

    // Phase 3: a restarted daemon on the same store must serve scenario A
    // from the artifact store — same digest, same bytes, no recompute — and
    // the store must contain no torn temp files from the kill.
    let mut daemon = Daemon::spawn(&store, 2, &[]);
    let mut conn = daemon.connect();
    let replay = conn.request(SCENARIO_A);
    assert_eq!(replay.status, "ok", "error: {:?}", replay.error);
    assert_eq!(
        replay.cache.as_deref(),
        Some("hit"),
        "restart must serve from the store, not recompute"
    );
    assert_eq!(replay.digest.as_deref(), Some(digest.as_str()));
    assert_eq!(
        replay.result_canonical.as_deref(),
        Some(bytes.as_str()),
        "replayed artifact must be byte-identical across the crash"
    );
    for entry in std::fs::read_dir(&store).expect("read store") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            name.ends_with(".out.json") && !name.contains(".tmp"),
            "unexpected store file after SIGKILL: {name}"
        );
    }

    // The daemon is fully functional after the crash: fresh work computes.
    let fresh = conn.request(r#"{"id":"b","scenario":{"nodes":10,"seed":1,"horizon_s":5000}}"#);
    assert_eq!(fresh.status, "ok");
    assert_eq!(fresh.cache.as_deref(), Some("miss"));
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn a_panicked_worker_thread_is_reused_cleanly() {
    // One worker: the request after the panic runs on the thread that just
    // unwound — the daemon-level pin for the id-keyed ScopedCancel restore.
    let store = temp_dir("panic");
    let mut daemon = Daemon::spawn(&store, 1, &[("WRSN_FORCE_PANIC", "fig2")]);
    let mut conn = daemon.connect();

    let boom = conn.request(r#"{"id":"boom","exp":"fig2"}"#);
    assert_eq!(boom.status, "error");
    assert!(
        boom.error.unwrap_or_default().contains("panicked"),
        "forced panic surfaces as a typed error"
    );

    let after = conn.request(r#"{"id":"after","scenario":{"nodes":10,"seed":3,"horizon_s":5000}}"#);
    assert_eq!(
        after.status, "ok",
        "reused worker thread must not carry stale cancellation: {:?}",
        after.error
    );
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn deadlines_cancel_hung_requests_without_taking_the_daemon_down() {
    let store = temp_dir("deadline");
    let mut daemon = Daemon::spawn(&store, 1, &[("WRSN_FORCE_HANG", "fig5")]);
    let mut conn = daemon.connect();

    let started = Instant::now();
    let hung = conn.request(r#"{"id":"hung","exp":"fig5","deadline_s":0.5}"#);
    assert_eq!(hung.status, "timeout", "error: {:?}", hung.error);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "watchdog cancelled at the deadline, not at test timeout"
    );

    // The worker that was hung is free again: new work completes.
    let after = conn.request(r#"{"id":"ok","scenario":{"nodes":10,"seed":5,"horizon_s":5000}}"#);
    assert_eq!(after.status, "ok", "error: {:?}", after.error);
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn ping_and_stats_report_service_state() {
    let store = temp_dir("stats");
    let mut daemon = Daemon::spawn(&store, 2, &[]);
    let mut conn = daemon.connect();
    let pong = conn.request(r#"{"id":"p","op":"ping"}"#);
    assert_eq!(pong.status, "ok");
    assert!(pong.result_canonical.unwrap().contains("ping"));

    let one = conn.request(r#"{"id":"w","scenario":{"nodes":10,"seed":9,"horizon_s":5000}}"#);
    assert_eq!(one.status, "ok");
    let stats = conn.request(r#"{"id":"s","op":"stats"}"#);
    let body = stats.result_canonical.expect("stats body");
    assert!(
        body.contains("\"cache_misses\":1"),
        "one computed request in {body}"
    );
    assert!(
        body.contains("\"threads\":") && body.contains("\"shards\":"),
        "stats must report the effective execution strategy, got {body}"
    );
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}
