//! Release-mode golden digest for the `scale` experiment at its smallest
//! size (10 000 nodes).
//!
//! `scale` is excluded from `--id all` (it exists to measure wall clock,
//! not paper figures), so the main `golden_exp_digest` never covers the
//! code path that builds paper-density worlds with the approximate
//! key-node census. This test pins an FNV-1a digest of the full JSONL
//! trace of one 10k campaign, driven through
//! [`wrsn_bench::experiments::scale::run_at_size_with`] directly so it
//! cannot race other tests over the `WRSN_SCALE_SIZES` override.
//! Regenerate after an *intentional* trace change with:
//!
//! ```text
//! WRSN_BLESS=1 cargo test --release -p wrsn-bench --test golden_scale_digest
//! ```

use wrsn_bench::experiments::scale;
use wrsn_bench::obs::{self, StatsRecorder};

const DIGEST_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/golden_scale_digest.txt"
);

const NODES: usize = 10_000;

/// FNV-1a over the 10k campaign's full JSONL trace.
fn digest() -> u64 {
    let mut rec = StatsRecorder::new();
    let row = scale::run_at_size_with(NODES, &mut rec);
    assert_eq!(row.nodes, NODES);
    assert!(row.dead > 0, "scaled horizon should exhaust the sink ring");
    rec.emit_counters("scale");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for record in rec.records() {
        let line = obs::to_jsonl_line(record).unwrap();
        for byte in line.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn scale_10k_trace_matches_golden_digest() {
    let current = format!("scale-10k:{:016x}\n", digest());
    if std::env::var_os("WRSN_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).unwrap();
        std::fs::write(DIGEST_PATH, &current).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(DIGEST_PATH)
        .expect("golden digest missing; regenerate with WRSN_BLESS=1 (see module docs)");
    assert_eq!(
        current, golden,
        "scale trace drifted from the golden digest; if the change is \
         intentional, regenerate with WRSN_BLESS=1 (see module docs)"
    );
}
