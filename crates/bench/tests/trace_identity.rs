//! The observability layer must never change what it observes: running an
//! experiment with a [`StatsRecorder`] has to produce byte-identical tables
//! to the default [`NullRecorder`] path, and the JSONL stream itself must be
//! a pure function of the simulation — independent of the worker count.

use wrsn_bench::obs::{self, Counter, StatsRecorder, TraceRecord};
use wrsn_bench::parallel;

fn rendered(tables: &[wrsn_bench::Table]) -> String {
    tables
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n")
}

fn jsonl(rec: &StatsRecorder) -> Vec<String> {
    rec.records()
        .iter()
        .map(|r| obs::to_jsonl_line(r).unwrap())
        .collect()
}

#[test]
fn fig9_tables_identical_and_trace_parses_back_losslessly() {
    let baseline = rendered(&wrsn_bench::run("fig9").unwrap());
    let mut rec = StatsRecorder::new();
    let observed = rendered(&wrsn_bench::run_with("fig9", &mut rec).unwrap());
    assert_eq!(baseline, observed, "recorder must not change the tables");
    rec.emit_counters("fig9");

    // Every record kind the trace promises is present: Meta header first,
    // events, merged sessions, health snapshots, Counters footer last.
    let records = rec.records();
    assert!(matches!(records.first(), Some(TraceRecord::Meta { .. })));
    assert!(records
        .iter()
        .any(|r| matches!(r, TraceRecord::Event { .. })));
    assert!(records
        .iter()
        .any(|r| matches!(r, TraceRecord::Session { .. })));
    assert!(records
        .iter()
        .any(|r| matches!(r, TraceRecord::Snapshot { .. })));
    assert!(matches!(records.last(), Some(TraceRecord::Counters { .. })));

    // Planner counters flowed up from the CSA planner through the attack
    // policy into the experiment's recorder.
    assert!(rec.counter(Counter::PolicyDecisions) > 0);
    assert!(rec.counter(Counter::PlannerRuns) > 0);
    assert!(rec.counter(Counter::Replans) > 0);
    assert!(rec.counter(Counter::CandidateProbes) > 0);
    assert!(rec.counter(Counter::HonestSessions) > 0);

    // Lossless: record → line → record → line reproduces the exact bytes.
    for record in records {
        let line = obs::to_jsonl_line(record).unwrap();
        let back = obs::from_jsonl_line(&line).unwrap();
        assert_eq!(&back, record);
        assert_eq!(obs::to_jsonl_line(&back).unwrap(), line);
    }
}

#[test]
fn jsonl_is_byte_identical_across_thread_counts() {
    // fig11 fans its runs out with `parallel::map_indexed`; per-worker
    // recorders are merged back in index order, so the stream must not
    // depend on how many workers carried them.
    std::env::set_var(parallel::THREADS_ENV, "1");
    let mut sequential = StatsRecorder::new();
    wrsn_bench::run_with("fig11", &mut sequential).unwrap();
    std::env::set_var(parallel::THREADS_ENV, "4");
    let mut threaded = StatsRecorder::new();
    wrsn_bench::run_with("fig11", &mut threaded).unwrap();
    std::env::remove_var(parallel::THREADS_ENV);
    assert_eq!(
        jsonl(&sequential),
        jsonl(&threaded),
        "JSONL changed with the worker count"
    );
    assert_eq!(sequential.counter_entries(), threaded.counter_entries());
}
