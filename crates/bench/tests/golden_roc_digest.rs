//! Release-mode golden digest + semantic gates for the `arms_race` ROC
//! artifact.
//!
//! `arms_race` is excluded from `--id all` (an engineering study, not a
//! paper figure), so `golden_exp_digest` never covers it. This test pins an
//! FNV-1a digest of the experiment's rendered tables — the exact bytes `exp
//! --id arms_race` prints and stores as CSVs — and additionally gates the
//! semantic contract the ROC campaign must keep:
//!
//! * **zero benign false positives**: honest charging never convicts at the
//!   `lax` or `default` detector, fault-injected runs at the default
//!   intensity included;
//! * the `default` detector catches the naive CSA with detection rate
//!   ≥ 0.8 *before* 80 % key-node exhaustion at zero fault noise;
//! * the adaptive (stealth) CSA measurably lowers that detection rate while
//!   paying a nonzero real-energy bill.
//!
//! Regenerate after an *intentional* artifact change with:
//!
//! ```text
//! WRSN_BLESS=1 cargo test --release -p wrsn-bench --test golden_roc_digest
//! ```

use wrsn_bench::experiments::arms_race;
use wrsn_bench::table::Table;

const DIGEST_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/golden_roc_digest.txt"
);

/// FNV-1a over the rendered tables (the transcript/CSV bytes).
fn digest(tables: &[Table]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for table in tables {
        for byte in table.render().bytes().chain(table.to_csv().bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Row index into the ROC table: presets outermost, then policies, then
/// fault intensities — the sweep order `arms_race::run_with` emits.
fn row(preset: &str, policy: &str, intensity: usize) -> usize {
    let p = arms_race::PRESETS
        .iter()
        .position(|&x| x == preset)
        .unwrap();
    let pol = arms_race::POLICIES
        .iter()
        .position(|&x| x == policy)
        .unwrap();
    let i = arms_race::INTENSITIES
        .iter()
        .position(|&x| x == intensity)
        .unwrap();
    (p * arms_race::POLICIES.len() + pol) * arms_race::INTENSITIES.len() + i
}

#[test]
fn arms_race_roc_artifact_matches_golden_digest_and_contract() {
    let tables = arms_race::run();
    assert_eq!(tables.len(), 2, "ROC grid + summary");
    let roc = &tables[0];
    const DETECT: usize = 3;
    const CONVICTIONS: usize = 5;
    const DELIVERED: usize = 9;

    // Zero benign false positives at lax/default aggressiveness — including
    // fault-injected benign runs at the default intensity (1 per kind).
    for preset in ["lax", "default"] {
        for &intensity in arms_race::INTENSITIES {
            let r = row(preset, "benign", intensity);
            assert_eq!(
                roc.cell_f64(r, CONVICTIONS),
                0.0,
                "benign convictions at {preset}/faults={intensity}"
            );
            assert_eq!(
                roc.cell_f64(r, DETECT),
                0.0,
                "benign detection rate at {preset}/faults={intensity}"
            );
        }
    }

    // The default twin+audit detector flags the naive CSA before 80 %
    // key-node exhaustion at zero fault noise ("detect rate" already
    // encodes the conviction-before-deadline classification).
    let naive = roc.cell_f64(row("default", "naive", 0), DETECT);
    assert!(naive >= 0.8, "naive CSA detection rate {naive} < 0.8");

    // The adaptive CSA measurably lowers detection — at a quantified
    // nonzero real-energy cost (naive full-cancellation delivers 0).
    let adaptive = roc.cell_f64(row("default", "adaptive", 0), DETECT);
    assert!(
        adaptive < naive,
        "stealth did not lower detection: {adaptive} vs {naive}"
    );
    let bill = roc.cell_f64(row("default", "adaptive", 0), DELIVERED);
    assert!(bill > 0.0, "stealth must cost real energy, got {bill} kJ");
    assert_eq!(
        roc.cell_f64(row("default", "naive", 0), DELIVERED),
        0.0,
        "naive CSA delivers nothing"
    );

    let current = format!("arms-race:{:016x}\n", digest(&tables));
    if std::env::var_os("WRSN_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).unwrap();
        std::fs::write(DIGEST_PATH, &current).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(DIGEST_PATH)
        .expect("golden digest missing; regenerate with WRSN_BLESS=1 (see module docs)");
    assert_eq!(
        current, golden,
        "arms_race ROC artifact drifted from the golden digest; if the \
         change is intentional, regenerate with WRSN_BLESS=1 (see module docs)"
    );
}
