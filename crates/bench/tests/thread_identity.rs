//! The parallel fan-out must never change experiment output: results are
//! collected in index order, so the rendered tables have to be byte-identical
//! whatever the worker count. This pins that guarantee on the two fastest
//! experiments that use `parallel::map_indexed`.

use wrsn_bench::parallel;

fn rendered(id: &str) -> String {
    wrsn_bench::run(id)
        .unwrap()
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn tables_are_byte_identical_across_thread_counts() {
    // One test (not one per id) so the env-var mutation cannot race a
    // concurrently running sibling.
    for id in ["fig11", "fig13"] {
        std::env::set_var(parallel::THREADS_ENV, "1");
        let sequential = rendered(id);
        std::env::set_var(parallel::THREADS_ENV, "4");
        let threaded = rendered(id);
        std::env::remove_var(parallel::THREADS_ENV);
        assert_eq!(
            sequential, threaded,
            "{id}: tables changed with the worker count"
        );
    }
}
