//! The daemon's frontends: a TCP listener and a stdin/stdout pipe mode, both
//! speaking the newline-delimited JSON protocol of [`super::request`].
//!
//! Each TCP connection gets a reader thread (parse → submit to the
//! scheduler, control ops answered inline) and a writer thread draining a
//! per-connection channel — so responses stream back in completion order
//! while later requests on the same connection are still being parsed
//! (pipelining). Stdin mode wires the same loop to the process's standard
//! streams for harnesses that prefer pipes to sockets.
//!
//! Shutdown (`{"op":"shutdown"}`) stops the accept loop, half-closes every
//! connection's read side so its reader sees EOF, drains the scheduler
//! queue, and joins everything — queued work is answered, new work is
//! refused.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use serde::Value;

use super::cache::ResultCache;
use super::request::{self, ControlOp, RequestKind};
use super::scheduler::Scheduler;
use crate::error::BenchError;

/// Daemon configuration (assembled by the `wrsnd serve` CLI).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (`None` for stdin mode).
    pub listen: Option<String>,
    /// Artifact store directory.
    pub store_dir: std::path::PathBuf,
    /// Worker pool size.
    pub workers: usize,
    /// Default per-request deadline.
    pub default_deadline: Duration,
    /// Exit after this many work requests (`None` = run until shutdown).
    /// A load-test guard rail so an orphaned daemon cannot outlive its
    /// driver forever.
    pub max_requests: Option<u64>,
}

/// Shared per-daemon state driving shutdown.
struct Control {
    stop: AtomicBool,
    /// Work requests accepted so far (for `max_requests`).
    accepted: AtomicU64,
    /// Read-half handles of live connections, half-closed on shutdown.
    conns: Mutex<Vec<TcpStream>>,
}

impl Control {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let conns = self.conns.lock().expect("conns lock");
        for stream in conns.iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// Runs the daemon until shutdown. In TCP mode prints
/// `wrsnd listening on <addr>` to stdout once the socket is bound (the
/// line load generators and tests wait for).
///
/// # Errors
///
/// [`BenchError::Io`] if the store directory or listen socket cannot be
/// set up. Per-connection I/O errors only end that connection.
pub fn serve(config: &ServeConfig) -> Result<(), BenchError> {
    let cache = ResultCache::open(&config.store_dir)
        .map_err(|e| BenchError::io("open artifact store", &config.store_dir, &e))?;
    let scheduler = Arc::new(Scheduler::new(
        cache,
        config.workers,
        config.default_deadline,
    ));
    let control = Arc::new(Control {
        stop: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        conns: Mutex::new(Vec::new()),
    });
    match &config.listen {
        Some(addr) => serve_tcp(addr, config, &scheduler, &control)?,
        None => serve_stdio(config, &scheduler, &control),
    }
    match Arc::try_unwrap(scheduler) {
        Ok(scheduler) => scheduler.shutdown(),
        Err(_) => unreachable!("all connection threads were joined"),
    }
    Ok(())
}

fn serve_tcp(
    addr: &str,
    config: &ServeConfig,
    scheduler: &Arc<Scheduler>,
    control: &Arc<Control>,
) -> Result<(), BenchError> {
    let path = std::path::Path::new(addr);
    let listener =
        TcpListener::bind(addr).map_err(|e| BenchError::io("bind listen socket", path, &e))?;
    let local: SocketAddr = listener
        .local_addr()
        .map_err(|e| BenchError::io("resolve listen socket", path, &e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| BenchError::io("configure listen socket", path, &e))?;
    println!("wrsnd listening on {local}");
    std::io::stdout().flush().ok();

    let mut conn_threads = Vec::new();
    let mut next_conn = 0u64;
    while !control.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn;
                next_conn += 1;
                if let Ok(read_half) = stream.try_clone() {
                    control.conns.lock().expect("conns lock").push(read_half);
                }
                let scheduler = Arc::clone(scheduler);
                let control = Arc::clone(control);
                let config = config.clone();
                conn_threads.push(
                    thread::Builder::new()
                        .name(format!("wrsnd-conn-{conn_id}"))
                        .spawn(move || serve_connection(stream, &config, &scheduler, &control))
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("wrsnd: accept failed: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    for handle in conn_threads {
        let _ = handle.join();
    }
    Ok(())
}

/// One TCP connection: reader parses and submits on this thread, a writer
/// thread drains the reply channel. Returns when the client closes (or
/// shutdown half-closes) the read side and all pending replies have gone
/// out.
fn serve_connection(
    stream: TcpStream,
    config: &ServeConfig,
    scheduler: &Arc<Scheduler>,
    control: &Arc<Control>,
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wrsnd: cannot clone connection: {e}");
            return;
        }
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::Builder::new()
        .name("wrsnd-conn-writer".to_string())
        .spawn(move || {
            let mut out = std::io::BufWriter::new(write_half);
            // Ends when every sender (reader + in-flight jobs) is dropped.
            while let Ok(line) = rx.recv() {
                if out.write_all(line.as_bytes()).is_err()
                    || out.write_all(b"\n").is_err()
                    || out.flush().is_err()
                {
                    break;
                }
            }
        })
        .expect("spawn connection writer");
    let reader = BufReader::new(stream);
    read_loop(reader, &tx, config, scheduler, control);
    drop(tx);
    let _ = writer.join();
}

/// The protocol loop shared by TCP connections and stdin mode.
fn read_loop<R: BufRead>(
    reader: R,
    reply: &mpsc::Sender<String>,
    config: &ServeConfig,
    scheduler: &Arc<Scheduler>,
    control: &Arc<Control>,
) {
    let mut seq = 0u64;
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if control.stop.load(Ordering::Acquire) {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request = match request::parse_line(trimmed, seq) {
            Ok(request) => request,
            Err(detail) => {
                let _ = reply.send(request::error_line(&format!("r{seq}"), &detail));
                seq += 1;
                continue;
            }
        };
        seq += 1;
        match request.kind {
            RequestKind::Control(ControlOp::Ping) => {
                let pong = Value::Map(vec![("op".to_string(), Value::Str("ping".to_string()))]);
                let _ = reply.send(request::control_line(&request.id, &pong));
            }
            RequestKind::Control(ControlOp::Stats) => {
                let _ = reply.send(request::control_line(
                    &request.id,
                    &scheduler.counters().to_value(),
                ));
            }
            RequestKind::Control(ControlOp::Shutdown) => {
                let bye = Value::Map(vec![("op".to_string(), Value::Str("shutdown".to_string()))]);
                let _ = reply.send(request::control_line(&request.id, &bye));
                control.request_stop();
                break;
            }
            RequestKind::Work(payload) => {
                let accepted = control.accepted.fetch_add(1, Ordering::Relaxed) + 1;
                let deadline = request.deadline_s.map(Duration::from_secs_f64);
                scheduler.submit(request.id, payload, deadline, reply.clone());
                if let Some(max) = config.max_requests {
                    if accepted >= max {
                        eprintln!("wrsnd: reached max-requests={max}, shutting down");
                        control.request_stop();
                        break;
                    }
                }
            }
        }
    }
}

fn serve_stdio(config: &ServeConfig, scheduler: &Arc<Scheduler>, control: &Arc<Control>) {
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::Builder::new()
        .name("wrsnd-stdout".to_string())
        .spawn(move || {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            while let Ok(line) = rx.recv() {
                if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                    break;
                }
            }
        })
        .expect("spawn stdout writer");
    println!("wrsnd listening on stdin");
    std::io::stdout().flush().ok();
    let stdin = std::io::stdin();
    read_loop(stdin.lock(), &tx, config, scheduler, control);
    drop(tx);
    let _ = writer.join();
}
