//! The daemon's frontends: a TCP listener and a stdin/stdout pipe mode, both
//! speaking the newline-delimited JSON protocol of [`super::request`].
//!
//! Each TCP connection gets a reader thread (parse → submit to the
//! scheduler, control ops answered inline) and a writer thread draining a
//! per-connection channel — so responses stream back in completion order
//! while later requests on the same connection are still being parsed
//! (pipelining). Stdin mode wires the same loop to the process's standard
//! streams for harnesses that prefer pipes to sockets.
//!
//! The frontends are hardened against hostile or broken clients:
//!
//! - **Line cap**: a request line longer than [`MAX_LINE_BYTES`] is answered
//!   with a typed `invalid` response and the connection is closed — the
//!   daemon never buffers an unbounded line.
//! - **Idle reaping**: with an idle timeout configured, socket reads and
//!   writes time out. A connection that has been silent past the timeout
//!   with no requests in flight (or that stalled mid-line) is reaped and
//!   counted; a client merely waiting on a slow computation is left alone.
//! - **In-flight tracking**: the reader counts every reply-expecting request
//!   up front and the writer counts final (`fin`) lines back down, so the
//!   idle sweep knows the difference between "quiet because waiting" and
//!   "quiet because gone". Streaming `progress` frames do not resolve a
//!   request and leave the count untouched.
//!
//! Shutdown (`{"op":"shutdown"}`) stops the accept loop, half-closes every
//! connection's read side so its reader sees EOF, drains the scheduler
//! queue, and joins everything — queued work is answered, new work is
//! refused.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use serde::Value;

use super::cache::ResultCache;
use super::request::{self, ControlOp, RequestKind};
use super::scheduler::{Reply, Scheduler};
use crate::error::BenchError;

/// Longest request line the daemon will buffer. Anything longer is rejected
/// with a typed `invalid` response and the connection is dropped.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// Daemon configuration (assembled by the `wrsnd serve` CLI).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (`None` for stdin mode).
    pub listen: Option<String>,
    /// Artifact store directory.
    pub store_dir: std::path::PathBuf,
    /// Worker pool size.
    pub workers: usize,
    /// Default per-request deadline.
    pub default_deadline: Duration,
    /// Exit after this many work requests (`None` = run until shutdown).
    /// A load-test guard rail so an orphaned daemon cannot outlive its
    /// driver forever.
    pub max_requests: Option<u64>,
    /// Admission bound: submissions against a queue this deep are shed with
    /// a typed `overloaded` response.
    pub queue_cap: usize,
    /// Result-cache size bound (`None` = unbounded, the pre-hardening
    /// behaviour).
    pub cache_cap_bytes: Option<u64>,
    /// Reap connections silent for this long with nothing in flight
    /// (`None` = never; reads and writes then block indefinitely).
    pub idle_timeout: Option<Duration>,
}

impl ServeConfig {
    /// The default admission bound for a pool of `workers` threads: enough
    /// queue to keep every worker fed through scheduling jitter, small
    /// enough that queueing delay stays bounded.
    pub fn default_queue_cap(workers: usize) -> usize {
        workers.max(1) * 4
    }
}

/// Shared per-daemon state driving shutdown.
struct Control {
    stop: AtomicBool,
    /// Work requests accepted so far (for `max_requests`).
    accepted: AtomicU64,
    /// Read-half handles of live connections keyed by connection id,
    /// half-closed on shutdown. Each connection removes (and fully closes)
    /// its own entry on exit — a lingering clone here would hold the socket
    /// open after the protocol decided to close it.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl Control {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let conns = self.conns.lock().expect("conns lock");
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    /// Drops the registry clone for `conn_id` and tears the socket down, so
    /// the client observes EOF as soon as its connection thread finishes.
    fn release_conn(&self, conn_id: u64) {
        let removed = self.conns.lock().expect("conns lock").remove(&conn_id);
        if let Some(stream) = removed {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Runs the daemon until shutdown. In TCP mode prints
/// `wrsnd listening on <addr>` to stdout once the socket is bound (the
/// line load generators and tests wait for).
///
/// # Errors
///
/// [`BenchError::Io`] if the store directory or listen socket cannot be
/// set up. Per-connection I/O errors only end that connection.
pub fn serve(config: &ServeConfig) -> Result<(), BenchError> {
    let cache = match config.cache_cap_bytes {
        Some(cap) => ResultCache::open_bounded(&config.store_dir, cap),
        None => ResultCache::open(&config.store_dir),
    }
    .map_err(|e| BenchError::io("open artifact store", &config.store_dir, &e))?;
    let scheduler = Arc::new(Scheduler::new(
        cache,
        config.workers,
        config.default_deadline,
        config.queue_cap,
    ));
    let control = Arc::new(Control {
        stop: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
    });
    match &config.listen {
        Some(addr) => serve_tcp(addr, config, &scheduler, &control)?,
        None => serve_stdio(config, &scheduler, &control),
    }
    match Arc::try_unwrap(scheduler) {
        Ok(scheduler) => scheduler.shutdown(),
        Err(_) => unreachable!("all connection threads were joined"),
    }
    Ok(())
}

fn serve_tcp(
    addr: &str,
    config: &ServeConfig,
    scheduler: &Arc<Scheduler>,
    control: &Arc<Control>,
) -> Result<(), BenchError> {
    let path = std::path::Path::new(addr);
    let listener =
        TcpListener::bind(addr).map_err(|e| BenchError::io("bind listen socket", path, &e))?;
    let local: SocketAddr = listener
        .local_addr()
        .map_err(|e| BenchError::io("resolve listen socket", path, &e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| BenchError::io("configure listen socket", path, &e))?;
    println!("wrsnd listening on {local}");
    std::io::stdout().flush().ok();

    let mut conn_threads = Vec::new();
    let mut next_conn = 0u64;
    while !control.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn;
                next_conn += 1;
                if let Ok(read_half) = stream.try_clone() {
                    control
                        .conns
                        .lock()
                        .expect("conns lock")
                        .insert(conn_id, read_half);
                }
                let scheduler = Arc::clone(scheduler);
                let control = Arc::clone(control);
                let config = config.clone();
                conn_threads.push(
                    thread::Builder::new()
                        .name(format!("wrsnd-conn-{conn_id}"))
                        .spawn(move || {
                            serve_connection(stream, conn_id, &config, &scheduler, &control)
                        })
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("wrsnd: accept failed: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    for handle in conn_threads {
        let _ = handle.join();
    }
    Ok(())
}

/// One TCP connection: reader parses and submits on this thread, a writer
/// thread drains the reply channel. Returns when the client closes (or
/// shutdown half-closes, or the idle sweep reaps) the read side and all
/// pending replies have gone out.
fn serve_connection(
    stream: TcpStream,
    conn_id: u64,
    config: &ServeConfig,
    scheduler: &Arc<Scheduler>,
    control: &Arc<Control>,
) {
    if let Some(idle) = config.idle_timeout {
        let _ = stream.set_read_timeout(Some(idle));
        let _ = stream.set_write_timeout(Some(idle));
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wrsnd: cannot clone connection: {e}");
            return;
        }
    };
    let inflight = Arc::new(AtomicU64::new(0));
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer = {
        let inflight = Arc::clone(&inflight);
        thread::Builder::new()
            .name("wrsnd-conn-writer".to_string())
            .spawn(move || {
                let mut out = std::io::BufWriter::new(write_half);
                // Ends when every sender (reader + in-flight jobs) is
                // dropped, or a write stalls past the socket timeout.
                while let Ok(reply) = rx.recv() {
                    let sent = out.write_all(reply.line.as_bytes()).is_ok()
                        && out.write_all(b"\n").is_ok()
                        && out.flush().is_ok();
                    if reply.fin {
                        inflight.fetch_sub(1, Ordering::AcqRel);
                    }
                    if !sent {
                        break;
                    }
                }
            })
            .expect("spawn connection writer")
    };
    let reader = BufReader::new(stream);
    read_loop(reader, &tx, &inflight, config, scheduler, control);
    drop(tx);
    let _ = writer.join();
    control.release_conn(conn_id);
}

/// What one capped, timeout-aware line read produced.
enum LineRead {
    /// A complete line (without its `\n`), within the cap.
    Line(String),
    /// Clean end of stream (or the accumulated final unterminated line).
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] before a newline arrived.
    Oversized,
    /// The socket has been silent past its timeout; `mid_line` says whether
    /// a partial request was left hanging.
    Idle { mid_line: bool },
    /// Any other read error.
    Failed,
}

/// Reads the next newline-terminated line into `buf`, enforcing the length
/// cap. `buf` carries partial data across idle timeouts so a slow-but-live
/// client is never corrupted by the retry.
fn read_capped_line<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> LineRead {
    loop {
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(buf.len()) as u64;
        if budget == 0 {
            return LineRead::Oversized;
        }
        match reader.by_ref().take(budget).read_until(b'\n', buf) {
            Ok(0) => {
                return if buf.is_empty() {
                    LineRead::Eof
                } else if buf.len() > MAX_LINE_BYTES {
                    LineRead::Oversized
                } else {
                    // Final line without a trailing newline: serve it.
                    let line = String::from_utf8_lossy(buf).into_owned();
                    buf.clear();
                    LineRead::Line(line)
                };
            }
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.len() > MAX_LINE_BYTES {
                        return LineRead::Oversized;
                    }
                    let line = String::from_utf8_lossy(buf).into_owned();
                    buf.clear();
                    return LineRead::Line(line);
                }
                if buf.len() > MAX_LINE_BYTES {
                    return LineRead::Oversized;
                }
                // take() ran out before a newline: loop and keep reading.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineRead::Idle {
                    mid_line: !buf.is_empty(),
                };
            }
            Err(_) => return LineRead::Failed,
        }
    }
}

/// The protocol loop shared by TCP connections and stdin mode.
fn read_loop<R: BufRead>(
    mut reader: R,
    reply: &mpsc::Sender<Reply>,
    inflight: &AtomicU64,
    config: &ServeConfig,
    scheduler: &Arc<Scheduler>,
    control: &Arc<Control>,
) {
    let mut seq = 0u64;
    let mut buf = Vec::new();
    loop {
        let line = match read_capped_line(&mut reader, &mut buf) {
            LineRead::Line(line) => line,
            LineRead::Eof | LineRead::Failed => break,
            LineRead::Oversized => {
                scheduler.counters().note_oversized();
                inflight.fetch_add(1, Ordering::AcqRel);
                let _ = reply.send(Reply::fin(request::invalid_line(
                    &format!("r{seq}"),
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                )));
                break;
            }
            LineRead::Idle { mid_line } => {
                // A client waiting on a slow computation is quiet but not
                // idle; a client with nothing in flight (or one stalled
                // mid-line) gets reaped.
                if !mid_line && inflight.load(Ordering::Acquire) > 0 {
                    continue;
                }
                scheduler.counters().note_conn_reaped();
                if mid_line {
                    inflight.fetch_add(1, Ordering::AcqRel);
                    let _ = reply.send(Reply::fin(request::invalid_line(
                        &format!("r{seq}"),
                        "request line stalled past the idle timeout",
                    )));
                }
                break;
            }
        };
        if control.stop.load(Ordering::Acquire) {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request = match request::parse_line(trimmed, seq) {
            Ok(request) => request,
            Err(detail) => {
                inflight.fetch_add(1, Ordering::AcqRel);
                let _ = reply.send(Reply::fin(request::error_line(&format!("r{seq}"), &detail)));
                seq += 1;
                continue;
            }
        };
        seq += 1;
        // Every accepted request resolves with exactly one fin line; count
        // it before anything can answer, so the writer's decrement can
        // never race ahead of the increment.
        inflight.fetch_add(1, Ordering::AcqRel);
        match request.kind {
            RequestKind::Control(ControlOp::Ping) => {
                let pong = Value::Map(vec![("op".to_string(), Value::Str("ping".to_string()))]);
                let _ = reply.send(Reply::fin(request::control_line(&request.id, &pong)));
            }
            RequestKind::Control(ControlOp::Stats) => {
                let _ = reply.send(Reply::fin(request::control_line(
                    &request.id,
                    &scheduler.stats_value(),
                )));
            }
            RequestKind::Control(ControlOp::Shutdown) => {
                let bye = Value::Map(vec![("op".to_string(), Value::Str("shutdown".to_string()))]);
                let _ = reply.send(Reply::fin(request::control_line(&request.id, &bye)));
                control.request_stop();
                break;
            }
            RequestKind::Work(payload) => {
                let accepted = control.accepted.fetch_add(1, Ordering::Relaxed) + 1;
                let deadline = request.deadline_s.map(Duration::from_secs_f64);
                scheduler.submit_audited(
                    request.id,
                    payload,
                    deadline,
                    request.stream,
                    request.detector,
                    reply.clone(),
                );
                if let Some(max) = config.max_requests {
                    if accepted >= max {
                        eprintln!("wrsnd: reached max-requests={max}, shutting down");
                        control.request_stop();
                        break;
                    }
                }
            }
        }
    }
}

fn serve_stdio(config: &ServeConfig, scheduler: &Arc<Scheduler>, control: &Arc<Control>) {
    let inflight = Arc::new(AtomicU64::new(0));
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer = {
        let inflight = Arc::clone(&inflight);
        thread::Builder::new()
            .name("wrsnd-stdout".to_string())
            .spawn(move || {
                let stdout = std::io::stdout();
                let mut out = stdout.lock();
                while let Ok(reply) = rx.recv() {
                    let sent = writeln!(out, "{}", reply.line).is_ok() && out.flush().is_ok();
                    if reply.fin {
                        inflight.fetch_sub(1, Ordering::AcqRel);
                    }
                    if !sent {
                        break;
                    }
                }
            })
            .expect("spawn stdout writer")
    };
    println!("wrsnd listening on stdin");
    std::io::stdout().flush().ok();
    let stdin = std::io::stdin();
    read_loop(stdin.lock(), &tx, &inflight, config, scheduler, control);
    drop(tx);
    let _ = writer.join();
}
