//! The daemon's content-addressed result store.
//!
//! One file per request digest, `<dir>/<digest>.out.json`, holding a header
//! line and the canonical result bytes:
//!
//! ```text
//! WRSNSVC v1 req=<digest 16 hex> len=<result bytes> fnv=<result FNV-1a 64, 16 hex>
//! <result JSON>
//! ```
//!
//! A lookup replays the stored bytes **verbatim** — the daemon's dedupe
//! guarantee is that a cache hit is byte-identical to the miss that produced
//! it. The header makes corruption detectable instead of believable: the
//! `req` digest catches a file renamed or hard-linked onto the wrong key,
//! `len` catches truncation (the failure mode of a non-atomic write cut off
//! by SIGKILL), and `fnv` catches bit rot inside the body. Anything that
//! fails validation is reported as [`CacheLookup::Rejected`] and recomputed —
//! never served.
//!
//! Writes go through [`store::write_atomic`] (same-directory temp file +
//! fsync + rename), so a daemon killed mid-write leaves either the old entry
//! or the new one, never a torn file at the final path.

use std::fs;
use std::path::{Path, PathBuf};

use wrsn::sim::store;

/// Magic + version prefix of every cache entry header.
pub const HEADER_MAGIC: &str = "WRSNSVC v1";

/// The outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// Entry present and validated; the stored canonical result bytes.
    Hit(String),
    /// No entry for this digest.
    Miss,
    /// An entry exists but failed validation (reason inside). The caller
    /// recomputes and overwrites it.
    Rejected(String),
}

/// A directory of digest-keyed result artifacts.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// An [`std::io::Error`] if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The entry path for a request digest.
    pub fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.out.json"))
    }

    /// Looks up `digest`, validating the entry end to end.
    pub fn lookup(&self, digest: &str) -> CacheLookup {
        let path = self.entry_path(digest);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return CacheLookup::Rejected(format!("read {}: {e}", path.display())),
        };
        match validate(digest, &raw) {
            Ok(result) => CacheLookup::Hit(result),
            Err(reason) => CacheLookup::Rejected(reason),
        }
    }

    /// Stores `result` (canonical bytes) under `digest`, atomically.
    ///
    /// # Errors
    ///
    /// A [`store::StoreError`] if the temp-file write or rename fails.
    pub fn save(&self, digest: &str, result: &str) -> Result<(), store::StoreError> {
        let body = format!(
            "{HEADER_MAGIC} req={digest} len={} fnv={:016x}\n{result}",
            result.len(),
            store::fnv1a64(result.as_bytes())
        );
        store::write_atomic(&self.entry_path(digest), body.as_bytes())
    }
}

/// Validates a raw cache entry against its expected request digest and
/// returns the embedded result bytes.
fn validate(digest: &str, raw: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "entry is not UTF-8".to_string())?;
    let (header, body) = text
        .split_once('\n')
        .ok_or("entry has no header/body separator (truncated?)")?;
    let mut fields = header.split(' ');
    let magic = (fields.next(), fields.next());
    if magic != (Some("WRSNSVC"), Some("v1")) {
        return Err(format!("bad header magic `{header}`"));
    }
    let mut req = None;
    let mut len = None;
    let mut fnv = None;
    for field in fields {
        match field.split_once('=') {
            Some(("req", v)) => req = Some(v.to_string()),
            Some(("len", v)) => {
                len = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad len field `{v}`"))?,
                )
            }
            Some(("fnv", v)) => {
                fnv = Some(u64::from_str_radix(v, 16).map_err(|_| format!("bad fnv field `{v}`"))?)
            }
            _ => return Err(format!("unknown header field `{field}`")),
        }
    }
    let req = req.ok_or("header missing req=")?;
    let len = len.ok_or("header missing len=")?;
    let fnv = fnv.ok_or("header missing fnv=")?;
    if req != digest {
        return Err(format!("entry is for digest {req}, expected {digest}"));
    }
    if body.len() != len {
        return Err(format!(
            "body is {} bytes, header says {len} (truncated or padded)",
            body.len()
        ));
    }
    let got = store::fnv1a64(body.as_bytes());
    if got != fnv {
        return Err(format!("body digest {got:016x} != header {fnv:016x}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wrsn-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_lookup_replays_exact_bytes() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let digest = "00112233deadbeef";
        let result = r#"{"scenario":{"nodes":40},"report":{"x":1.25}}"#;
        assert_eq!(cache.lookup(digest), CacheLookup::Miss);
        cache.save(digest, result).unwrap();
        assert_eq!(cache.lookup(digest), CacheLookup::Hit(result.to_string()));
        // Overwrite is idempotent and still atomic.
        cache.save(digest, result).unwrap();
        assert_eq!(cache.lookup(digest), CacheLookup::Hit(result.to_string()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_prefix_is_rejected_never_served() {
        // The SIGKILL-mid-write failure mode: a prefix of a valid entry. No
        // prefix may validate — a hit must mean the full original bytes.
        let dir = temp_dir("truncate");
        let cache = ResultCache::open(&dir).unwrap();
        let digest = "feedface01234567";
        let result = r#"{"exp":"fig2","rendered":["table"]}"#;
        cache.save(digest, result).unwrap();
        let path = cache.entry_path(digest);
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            match cache.lookup(digest) {
                CacheLookup::Rejected(_) => {}
                other => panic!("prefix of {cut} bytes validated as {other:?}"),
            }
        }
        // Restoring the full bytes validates again.
        fs::write(&path, &full).unwrap();
        assert_eq!(cache.lookup(digest), CacheLookup::Hit(result.to_string()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let dir = temp_dir("bitflip");
        let cache = ResultCache::open(&dir).unwrap();
        let digest = "0123456789abcdef";
        let result = r#"{"v":[1,2,3]}"#;
        cache.save(digest, result).unwrap();
        let path = cache.entry_path(digest);
        let full = fs::read(&path).unwrap();
        for pos in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[pos] ^= 0x01;
            fs::write(&path, &corrupt).unwrap();
            match cache.lookup(digest) {
                CacheLookup::Rejected(_) => {}
                other => panic!("flip at byte {pos} validated as {other:?}"),
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_entry_filed_under_the_wrong_digest_is_rejected() {
        let dir = temp_dir("wrongkey");
        let cache = ResultCache::open(&dir).unwrap();
        cache.save("aaaaaaaaaaaaaaaa", "{}").unwrap();
        fs::rename(
            cache.entry_path("aaaaaaaaaaaaaaaa"),
            cache.entry_path("bbbbbbbbbbbbbbbb"),
        )
        .unwrap();
        match cache.lookup("bbbbbbbbbbbbbbbb") {
            CacheLookup::Rejected(reason) => assert!(reason.contains("aaaaaaaaaaaaaaaa")),
            other => panic!("mis-filed entry validated as {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saves_leave_no_temp_droppings() {
        let dir = temp_dir("tmpfiles");
        let cache = ResultCache::open(&dir).unwrap();
        for k in 0..8 {
            cache.save(&format!("{k:016x}"), "{\"k\":1}").unwrap();
        }
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(
                name.ends_with(".out.json") && !name.contains(".tmp"),
                "unexpected file {name}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
