//! The daemon's content-addressed result store.
//!
//! One file per request digest, `<dir>/<digest>.out.json`, holding a header
//! line and the canonical result bytes:
//!
//! ```text
//! WRSNSVC v1 req=<digest 16 hex> len=<result bytes> fnv=<result FNV-1a 64, 16 hex>
//! <result JSON>
//! ```
//!
//! A lookup replays the stored bytes **verbatim** — the daemon's dedupe
//! guarantee is that a cache hit is byte-identical to the miss that produced
//! it. The header makes corruption detectable instead of believable: the
//! `req` digest catches a file renamed or hard-linked onto the wrong key,
//! `len` catches truncation (the failure mode of a non-atomic write cut off
//! by SIGKILL), and `fnv` catches bit rot inside the body. Anything that
//! fails validation is reported as [`CacheLookup::Rejected`] and recomputed —
//! never served.
//!
//! Writes go through [`store::write_atomic`] (same-directory temp file +
//! fsync + rename), so a daemon killed mid-write leaves either the old entry
//! or the new one, never a torn file at the final path.
//!
//! A cache opened with [`ResultCache::open_bounded`] additionally keeps the
//! store under a byte cap with **deterministic LRU eviction**: every save and
//! validated hit stamps the entry with a monotonically increasing generation,
//! and when the total (body + header) bytes exceed the cap, entries are
//! removed in ascending `(generation, digest)` order until the store fits.
//! Pre-existing entries found on open are indexed in digest order (so a
//! restarted daemon evicts the same entries a fresh one would, given the same
//! request sequence). Evicting an entry mid-lookup is benign: the reader sees
//! `NotFound` → a miss → recompute, never a torn read, because removal only
//! unlinks a complete file.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use wrsn::sim::store;

/// Magic + version prefix of every cache entry header.
pub const HEADER_MAGIC: &str = "WRSNSVC v1";

/// The outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// Entry present and validated; the stored canonical result bytes.
    Hit(String),
    /// No entry for this digest.
    Miss,
    /// An entry exists but failed validation (reason inside). The caller
    /// recomputes and overwrites it.
    Rejected(String),
}

/// A point-in-time summary of a bounded cache's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Configured byte cap.
    pub cap_bytes: u64,
    /// Live entries in the index.
    pub entries: u64,
    /// Total on-disk bytes of live entries (headers included).
    pub total_bytes: u64,
    /// Entries evicted since open.
    pub evictions: u64,
}

/// Per-entry bookkeeping of a bounded cache.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    bytes: u64,
    /// LRU stamp: the bound-wide generation at the entry's last save or
    /// validated hit. Strictly increasing, so `(last_used, digest)` orders
    /// eviction deterministically.
    last_used: u64,
}

#[derive(Debug)]
struct BoundState {
    cap_bytes: u64,
    total_bytes: u64,
    clock: u64,
    entries: HashMap<String, EntryMeta>,
    evictions: u64,
}

/// A directory of digest-keyed result artifacts.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    /// LRU index + cap; `None` for an unbounded cache. Shared across clones
    /// so every worker sees one consistent byte budget.
    bound: Option<Arc<Mutex<BoundState>>>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory, unbounded.
    ///
    /// # Errors
    ///
    /// An [`std::io::Error`] if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            bound: None,
        })
    }

    /// Opens the cache directory with a byte cap. Entries already on disk
    /// are indexed (in digest order, oldest-stamped first) and the cap is
    /// enforced immediately, so a daemon restarted onto an over-full store
    /// trims it before serving.
    ///
    /// # Errors
    ///
    /// An [`std::io::Error`] if the directory cannot be created or scanned.
    pub fn open_bounded(dir: &Path, cap_bytes: u64) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut found: Vec<(String, u64)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(digest) = name
                .to_string_lossy()
                .strip_suffix(".out.json")
                .map(String::from)
            else {
                continue;
            };
            found.push((digest, entry.metadata()?.len()));
        }
        found.sort_by(|a, b| a.0.cmp(&b.0));
        let mut state = BoundState {
            cap_bytes,
            total_bytes: found.iter().map(|(_, bytes)| bytes).sum(),
            clock: 0,
            entries: HashMap::new(),
            evictions: 0,
        };
        for (digest, bytes) in found {
            state.clock += 1;
            state.entries.insert(
                digest,
                EntryMeta {
                    bytes,
                    last_used: state.clock,
                },
            );
        }
        let cache = ResultCache {
            dir: dir.to_path_buf(),
            bound: Some(Arc::new(Mutex::new(state))),
        };
        cache.with_bound(evict_to_cap);
        Ok(cache)
    }

    /// The bookkeeping snapshot of a bounded cache; `None` when unbounded.
    pub fn stats(&self) -> Option<CacheStats> {
        self.bound.as_ref().map(|bound| {
            let state = bound.lock().expect("cache bound lock");
            CacheStats {
                cap_bytes: state.cap_bytes,
                entries: state.entries.len() as u64,
                total_bytes: state.total_bytes,
                evictions: state.evictions,
            }
        })
    }

    fn with_bound(&self, f: impl FnOnce(&mut BoundState, &Path)) {
        if let Some(bound) = &self.bound {
            let mut state = bound.lock().expect("cache bound lock");
            f(&mut state, &self.dir);
        }
    }

    /// The entry path for a request digest.
    pub fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.out.json"))
    }

    /// Looks up `digest`, validating the entry end to end. A validated hit
    /// refreshes the entry's LRU stamp in a bounded cache.
    pub fn lookup(&self, digest: &str) -> CacheLookup {
        let path = self.entry_path(digest);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return CacheLookup::Rejected(format!("read {}: {e}", path.display())),
        };
        match validate(digest, &raw) {
            Ok(result) => {
                self.with_bound(|state, _| {
                    state.clock += 1;
                    let stamp = state.clock;
                    if let Some(meta) = state.entries.get_mut(digest) {
                        meta.last_used = stamp;
                    }
                });
                CacheLookup::Hit(result)
            }
            Err(reason) => CacheLookup::Rejected(reason),
        }
    }

    /// Stores `result` (canonical bytes) under `digest`, atomically. In a
    /// bounded cache this may evict least-recently-used entries to fit the
    /// cap — possibly including the just-saved entry, if it alone exceeds
    /// the cap (the caller already holds the result in memory, so the
    /// response is unaffected; the digest just recomputes next time).
    ///
    /// # Errors
    ///
    /// A [`store::StoreError`] if the temp-file write or rename fails.
    pub fn save(&self, digest: &str, result: &str) -> Result<(), store::StoreError> {
        let body = format!(
            "{HEADER_MAGIC} req={digest} len={} fnv={:016x}\n{result}",
            result.len(),
            store::fnv1a64(result.as_bytes())
        );
        store::write_atomic(&self.entry_path(digest), body.as_bytes())?;
        self.with_bound(|state, dir| {
            state.clock += 1;
            let stamp = state.clock;
            let bytes = body.len() as u64;
            let old = state.entries.insert(
                digest.to_string(),
                EntryMeta {
                    bytes,
                    last_used: stamp,
                },
            );
            state.total_bytes = state.total_bytes - old.map_or(0, |o| o.bytes) + bytes;
            evict_to_cap(state, dir);
        });
        Ok(())
    }
}

/// Removes entries in ascending `(last_used, digest)` order until the store
/// fits its cap. Called with the bound lock held.
fn evict_to_cap(state: &mut BoundState, dir: &Path) {
    while state.total_bytes > state.cap_bytes && !state.entries.is_empty() {
        let victim = state
            .entries
            .iter()
            .min_by(|a, b| (a.1.last_used, a.0).cmp(&(b.1.last_used, b.0)))
            .map(|(digest, meta)| (digest.clone(), meta.bytes))
            .expect("non-empty entry index");
        let path = dir.join(format!("{}.out.json", victim.0));
        if let Err(e) = fs::remove_file(&path) {
            if e.kind() != std::io::ErrorKind::NotFound {
                eprintln!("wrsnd: cache eviction of {} failed: {e}", path.display());
                // Drop it from the index anyway so eviction cannot loop
                // forever on an unremovable file.
            }
        }
        state.entries.remove(&victim.0);
        state.total_bytes = state.total_bytes.saturating_sub(victim.1);
        state.evictions += 1;
    }
}

/// Validates a raw cache entry against its expected request digest and
/// returns the embedded result bytes.
fn validate(digest: &str, raw: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "entry is not UTF-8".to_string())?;
    let (header, body) = text
        .split_once('\n')
        .ok_or("entry has no header/body separator (truncated?)")?;
    let mut fields = header.split(' ');
    let magic = (fields.next(), fields.next());
    if magic != (Some("WRSNSVC"), Some("v1")) {
        return Err(format!("bad header magic `{header}`"));
    }
    let mut req = None;
    let mut len = None;
    let mut fnv = None;
    for field in fields {
        match field.split_once('=') {
            Some(("req", v)) => req = Some(v.to_string()),
            Some(("len", v)) => {
                len = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad len field `{v}`"))?,
                )
            }
            Some(("fnv", v)) => {
                fnv = Some(u64::from_str_radix(v, 16).map_err(|_| format!("bad fnv field `{v}`"))?)
            }
            _ => return Err(format!("unknown header field `{field}`")),
        }
    }
    let req = req.ok_or("header missing req=")?;
    let len = len.ok_or("header missing len=")?;
    let fnv = fnv.ok_or("header missing fnv=")?;
    if req != digest {
        return Err(format!("entry is for digest {req}, expected {digest}"));
    }
    if body.len() != len {
        return Err(format!(
            "body is {} bytes, header says {len} (truncated or padded)",
            body.len()
        ));
    }
    let got = store::fnv1a64(body.as_bytes());
    if got != fnv {
        return Err(format!("body digest {got:016x} != header {fnv:016x}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wrsn-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_lookup_replays_exact_bytes() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let digest = "00112233deadbeef";
        let result = r#"{"scenario":{"nodes":40},"report":{"x":1.25}}"#;
        assert_eq!(cache.lookup(digest), CacheLookup::Miss);
        cache.save(digest, result).unwrap();
        assert_eq!(cache.lookup(digest), CacheLookup::Hit(result.to_string()));
        // Overwrite is idempotent and still atomic.
        cache.save(digest, result).unwrap();
        assert_eq!(cache.lookup(digest), CacheLookup::Hit(result.to_string()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_prefix_is_rejected_never_served() {
        // The SIGKILL-mid-write failure mode: a prefix of a valid entry. No
        // prefix may validate — a hit must mean the full original bytes.
        let dir = temp_dir("truncate");
        let cache = ResultCache::open(&dir).unwrap();
        let digest = "feedface01234567";
        let result = r#"{"exp":"fig2","rendered":["table"]}"#;
        cache.save(digest, result).unwrap();
        let path = cache.entry_path(digest);
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            match cache.lookup(digest) {
                CacheLookup::Rejected(_) => {}
                other => panic!("prefix of {cut} bytes validated as {other:?}"),
            }
        }
        // Restoring the full bytes validates again.
        fs::write(&path, &full).unwrap();
        assert_eq!(cache.lookup(digest), CacheLookup::Hit(result.to_string()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let dir = temp_dir("bitflip");
        let cache = ResultCache::open(&dir).unwrap();
        let digest = "0123456789abcdef";
        let result = r#"{"v":[1,2,3]}"#;
        cache.save(digest, result).unwrap();
        let path = cache.entry_path(digest);
        let full = fs::read(&path).unwrap();
        for pos in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[pos] ^= 0x01;
            fs::write(&path, &corrupt).unwrap();
            match cache.lookup(digest) {
                CacheLookup::Rejected(_) => {}
                other => panic!("flip at byte {pos} validated as {other:?}"),
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_entry_filed_under_the_wrong_digest_is_rejected() {
        let dir = temp_dir("wrongkey");
        let cache = ResultCache::open(&dir).unwrap();
        cache.save("aaaaaaaaaaaaaaaa", "{}").unwrap();
        fs::rename(
            cache.entry_path("aaaaaaaaaaaaaaaa"),
            cache.entry_path("bbbbbbbbbbbbbbbb"),
        )
        .unwrap();
        match cache.lookup("bbbbbbbbbbbbbbbb") {
            CacheLookup::Rejected(reason) => assert!(reason.contains("aaaaaaaaaaaaaaaa")),
            other => panic!("mis-filed entry validated as {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// The on-disk size of one `save(digest, result)` entry.
    fn entry_bytes(result: &str) -> u64 {
        let dir = temp_dir("sizeprobe");
        let cache = ResultCache::open(&dir).unwrap();
        cache.save("00000000000000aa", result).unwrap();
        let bytes = fs::metadata(cache.entry_path("00000000000000aa"))
            .unwrap()
            .len();
        let _ = fs::remove_dir_all(&dir);
        bytes
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used_first() {
        let dir = temp_dir("evict-lru");
        let result = r#"{"k":1}"#;
        let per_entry = entry_bytes(result);
        // Room for exactly two entries.
        let cache = ResultCache::open_bounded(&dir, 2 * per_entry).unwrap();
        cache.save("aaaaaaaaaaaaaaaa", result).unwrap();
        cache.save("bbbbbbbbbbbbbbbb", result).unwrap();
        // Touch `a` so `b` is now the least recently used…
        assert!(matches!(
            cache.lookup("aaaaaaaaaaaaaaaa"),
            CacheLookup::Hit(_)
        ));
        // …and a third save must evict exactly `b`.
        cache.save("cccccccccccccccc", result).unwrap();
        assert!(matches!(
            cache.lookup("aaaaaaaaaaaaaaaa"),
            CacheLookup::Hit(_)
        ));
        assert_eq!(cache.lookup("bbbbbbbbbbbbbbbb"), CacheLookup::Miss);
        assert!(matches!(
            cache.lookup("cccccccccccccccc"),
            CacheLookup::Hit(_)
        ));
        let stats = cache.stats().unwrap();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.total_bytes <= stats.cap_bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_cache_trims_preexisting_entries_on_open() {
        let dir = temp_dir("evict-open");
        let result = r#"{"k":2}"#;
        let per_entry = entry_bytes(result);
        {
            let unbounded = ResultCache::open(&dir).unwrap();
            for k in 0..4 {
                unbounded.save(&format!("{k:016x}"), result).unwrap();
            }
        }
        // Reopen bounded to two entries: the two lexicographically smallest
        // digests (= oldest seed stamps) go first, deterministically.
        let cache = ResultCache::open_bounded(&dir, 2 * per_entry).unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!(stats.evictions, 2);
        assert_eq!(cache.lookup("0000000000000000"), CacheLookup::Miss);
        assert_eq!(cache.lookup("0000000000000001"), CacheLookup::Miss);
        assert!(matches!(
            cache.lookup("0000000000000002"),
            CacheLookup::Hit(_)
        ));
        assert!(matches!(
            cache.lookup("0000000000000003"),
            CacheLookup::Hit(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_entry_larger_than_the_cap_is_evicted_after_save() {
        let dir = temp_dir("evict-giant");
        let cache = ResultCache::open_bounded(&dir, 8).unwrap();
        let big = r#"{"payload":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}"#;
        cache.save("dddddddddddddddd", big).unwrap();
        assert_eq!(cache.lookup("dddddddddddddddd"), CacheLookup::Miss);
        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.total_bytes, 0);
        assert_eq!(stats.evictions, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_has_no_stats_and_never_evicts() {
        let dir = temp_dir("unbounded");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.stats(), None);
        for k in 0..16 {
            cache.save(&format!("{k:016x}"), r#"{"k":3}"#).unwrap();
        }
        for k in 0..16 {
            assert!(matches!(
                cache.lookup(&format!("{k:016x}")),
                CacheLookup::Hit(_)
            ));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saves_leave_no_temp_droppings() {
        let dir = temp_dir("tmpfiles");
        let cache = ResultCache::open(&dir).unwrap();
        for k in 0..8 {
            cache.save(&format!("{k:016x}"), "{\"k\":1}").unwrap();
        }
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(
                name.ends_with(".out.json") && !name.contains(".tmp"),
                "unexpected file {name}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
