//! The synthetic load generator behind `wrsnd load` and `BENCH_pr7.json`.
//!
//! Opens `conns` TCP connections to a running daemon and drives `requests`
//! scenario requests through them, pipelined (every connection keeps its
//! requests in flight without waiting for earlier responses). The request
//! mix is deterministic in `seed`: node counts drawn from a mixed-size
//! palette and a configurable fraction of *duplicates* — requests whose
//! canonical payload (and hence digest) repeats — to exercise the dedupe
//! path the way a real campaign with overlapping sweeps would.
//!
//! Besides throughput/latency it **verifies** the daemon's contract and
//! fails loudly (nonzero exit from the CLI) when it is violated:
//!
//! - every request is answered exactly once, with `status: ok`;
//! - responses sharing a digest carry byte-identical `result` values,
//!   whatever mix of `miss`/`hit`/`coalesced` served them;
//! - with `--verify-exp <id>`, the daemon's result for that experiment must
//!   match this process's own in-process computation byte for byte — the
//!   daemon path and the `exp` single-shot path cannot drift apart.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Value;
use wrsn::sim::store;

use super::request::{self, DeploymentKind, ParsedResponse, Payload, ScenarioSpec};
use crate::error::BenchError;

/// Node-count palette for the mixed-size request stream.
const NODE_SIZES: &[usize] = &[10, 20, 40, 80];

/// Scenario horizon used by generated requests — short enough that a single
/// request is milliseconds of compute, so the benchmark measures the
/// *service*, not one giant simulation.
const LOAD_HORIZON_S: f64 = 5_000.0;

/// Load-run configuration (assembled by the `wrsnd load` CLI).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7878`.
    pub connect: String,
    /// Total work requests to send.
    pub requests: usize,
    /// Concurrent connections to spread them over.
    pub conns: usize,
    /// Fraction of requests that repeat an earlier digest (`0.0..=1.0`).
    pub dup_frac: f64,
    /// Per-request deadline sent with every request, seconds.
    pub deadline_s: f64,
    /// Stream seed.
    pub seed: u64,
    /// Also send this experiment id and compare against an in-process run.
    pub verify_exp: Option<String>,
    /// Write the JSON report here (atomically) when set.
    pub json_path: Option<std::path::PathBuf>,
    /// Send `{"op":"shutdown"}` after the run completes.
    pub shutdown: bool,
}

/// What a completed load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: usize,
    /// `ok` responses.
    pub ok: usize,
    /// Responses by cache path: `(miss, hit, coalesced)`.
    pub cache_paths: (usize, usize, usize),
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// Sustained throughput, requests per second.
    pub throughput_rps: f64,
    /// Per-request latency samples, milliseconds.
    pub latency_ms: Vec<f64>,
    /// Contract violations (empty for a passing run).
    pub violations: Vec<String>,
}

impl LoadReport {
    /// The JSON report body (`BENCH_pr7.json` schema).
    pub fn to_value(&self, config: &LoadConfig) -> Value {
        let opt = |x: Option<f64>| x.map(Value::F64).unwrap_or(Value::Null);
        let lat = &self.latency_ms;
        Value::Map(vec![
            ("bench".to_string(), Value::Str("wrsnd-loadgen".to_string())),
            ("requests".to_string(), Value::U64(self.sent as u64)),
            ("conns".to_string(), Value::U64(config.conns as u64)),
            ("dup_frac".to_string(), Value::F64(config.dup_frac)),
            ("seed".to_string(), Value::U64(config.seed)),
            (
                "node_sizes".to_string(),
                Value::Seq(NODE_SIZES.iter().map(|&n| Value::U64(n as u64)).collect()),
            ),
            ("ok".to_string(), Value::U64(self.ok as u64)),
            (
                "cache".to_string(),
                Value::Map(vec![
                    ("miss".to_string(), Value::U64(self.cache_paths.0 as u64)),
                    ("hit".to_string(), Value::U64(self.cache_paths.1 as u64)),
                    (
                        "coalesced".to_string(),
                        Value::U64(self.cache_paths.2 as u64),
                    ),
                ]),
            ),
            ("wall_s".to_string(), Value::F64(self.wall_s)),
            (
                "throughput_rps".to_string(),
                Value::F64(self.throughput_rps),
            ),
            (
                "latency_ms".to_string(),
                Value::Map(vec![
                    ("mean".to_string(), Value::F64(crate::stats::mean(lat))),
                    ("p50".to_string(), opt(crate::stats::p50(lat))),
                    ("p99".to_string(), opt(crate::stats::p99(lat))),
                    ("max".to_string(), opt(crate::stats::max(lat))),
                ]),
            ),
            (
                "violations".to_string(),
                Value::Seq(
                    self.violations
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The deterministic request stream: `(request line, payload digest)` pairs.
///
/// A pool of `ceil(requests * (1 - dup_frac))` unique scenarios is generated
/// first; the stream then samples from it so that roughly `dup_frac` of
/// requests repeat an earlier digest, interleaved across connections.
pub fn request_stream(config: &LoadConfig) -> Vec<(String, String)> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x6c6f_6164);
    let dup_frac = config.dup_frac.clamp(0.0, 1.0);
    let unique = ((config.requests as f64 * (1.0 - dup_frac)).ceil() as usize)
        .clamp(1, config.requests.max(1));
    let pool: Vec<ScenarioSpec> = (0..unique)
        .map(|k| ScenarioSpec {
            nodes: NODE_SIZES[rng.gen_range(0..NODE_SIZES.len())],
            seed: k as u64, // distinct seeds keep pool entries distinct
            horizon_s: LOAD_HORIZON_S,
            deployment: DeploymentKind::Uniform,
        })
        .collect();
    (0..config.requests)
        .map(|k| {
            // First pass covers the pool in order (every unique scenario is
            // computed at least once); the tail re-samples — duplicates.
            let spec = if k < pool.len() {
                &pool[k]
            } else {
                &pool[rng.gen_range(0..pool.len())]
            };
            let payload = Payload::Scenario(spec.clone());
            let line = format!(
                "{{\"id\":\"q{k}\",\"scenario\":{{\"nodes\":{},\"seed\":{},\"horizon_s\":{}}},\
                 \"deadline_s\":{}}}",
                spec.nodes, spec.seed, spec.horizon_s, config.deadline_s
            );
            (line, payload.digest())
        })
        .collect()
}

struct ConnOutcome {
    responses: Vec<(ParsedResponse, f64)>,
    error: Option<String>,
}

/// Runs the load, returning the measured report.
///
/// # Errors
///
/// [`BenchError::Io`] when the daemon cannot be reached at all; protocol
/// violations are collected in [`LoadReport::violations`] instead so one
/// bad response does not mask the rest of the run.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, BenchError> {
    let addr_path = std::path::Path::new(&config.connect);
    let stream_plan = request_stream(config);
    let conns = config.conns.clamp(1, stream_plan.len().max(1));

    let mut expected: HashMap<String, String> = HashMap::new(); // id → digest
    for (line, digest) in &stream_plan {
        // ids are q<k>, embedded in the line we built above.
        let id = line
            .split('"')
            .nth(3)
            .expect("generated line has an id")
            .to_string();
        expected.insert(id, digest.clone());
    }

    let started = Instant::now();
    let (result_tx, result_rx) = mpsc::channel::<ConnOutcome>();
    let mut handles = Vec::new();
    for conn_id in 0..conns {
        // Round-robin the stream across connections.
        let lines: Vec<String> = stream_plan
            .iter()
            .enumerate()
            .filter(|(k, _)| k % conns == conn_id)
            .map(|(_, (line, _))| line.clone())
            .collect();
        let connect = config.connect.clone();
        let verify_line = if conn_id == 0 {
            config
                .verify_exp
                .as_ref()
                .map(|id| format!("{{\"id\":\"verify\",\"exp\":\"{id}\"}}"))
        } else {
            None
        };
        let tx = result_tx.clone();
        handles.push(
            thread::Builder::new()
                .name(format!("loadgen-conn-{conn_id}"))
                .spawn(move || {
                    let outcome = drive_connection(&connect, &lines, verify_line.as_deref());
                    let _ = tx.send(outcome);
                })
                .map_err(|e| {
                    BenchError::io(
                        "spawn load connection",
                        std::path::Path::new("loadgen"),
                        &std::io::Error::other(e.to_string()),
                    )
                })?,
        );
    }
    drop(result_tx);

    let mut responses: Vec<(ParsedResponse, f64)> = Vec::new();
    let mut violations = Vec::new();
    while let Ok(outcome) = result_rx.recv() {
        if let Some(error) = outcome.error {
            violations.push(error);
        }
        responses.extend(outcome.responses);
    }
    for handle in handles {
        let _ = handle.join();
    }
    let wall_s = started.elapsed().as_secs_f64();
    if responses.is_empty() && !violations.is_empty() {
        // Nothing came back at all — surface connectivity as a hard error.
        return Err(BenchError::io(
            "drive load against daemon",
            addr_path,
            &std::io::Error::other(violations.join("; ")),
        ));
    }

    // --- Contract checks -------------------------------------------------
    let mut by_digest: HashMap<String, String> = HashMap::new(); // digest → result bytes
    let mut verify_result: Option<String> = None;
    let mut seen_ids: HashMap<String, u64> = HashMap::new();
    let mut ok = 0usize;
    let mut cache_paths = (0usize, 0usize, 0usize);
    let mut latency_ms = Vec::new();
    for (response, latency) in &responses {
        *seen_ids.entry(response.id.clone()).or_default() += 1;
        if response.id == "verify" {
            if response.status == "ok" {
                verify_result = response.result_canonical.clone();
            } else {
                violations.push(format!(
                    "verify request failed: {}",
                    response.error.clone().unwrap_or_default()
                ));
            }
            continue;
        }
        if response.status != "ok" {
            violations.push(format!(
                "{}: status {} ({})",
                response.id,
                response.status,
                response.error.clone().unwrap_or_default()
            ));
            continue;
        }
        ok += 1;
        latency_ms.push(*latency);
        match response.cache.as_deref() {
            Some("miss") => cache_paths.0 += 1,
            Some("hit") => cache_paths.1 += 1,
            Some("coalesced") => cache_paths.2 += 1,
            other => violations.push(format!("{}: bad cache tag {other:?}", response.id)),
        }
        let (Some(digest), Some(result)) = (&response.digest, &response.result_canonical) else {
            violations.push(format!(
                "{}: ok response missing digest/result",
                response.id
            ));
            continue;
        };
        if let Some(want) = expected.get(&response.id) {
            if want != digest {
                violations.push(format!(
                    "{}: digest {digest} != expected {want}",
                    response.id
                ));
            }
        }
        match by_digest.get(digest) {
            None => {
                by_digest.insert(digest.clone(), result.clone());
            }
            Some(first) if first != result => violations.push(format!(
                "{}: duplicate digest {digest} served different bytes",
                response.id
            )),
            Some(_) => {}
        }
    }
    for (id, digest) in &expected {
        match seen_ids.get(id) {
            Some(1) => {}
            Some(n) => violations.push(format!("{id}: answered {n} times")),
            None => violations.push(format!("{id}: never answered (digest {digest})")),
        }
    }
    if let Some(exp_id) = &config.verify_exp {
        match verify_result {
            None => violations.push(format!("verify-exp {exp_id}: no ok response")),
            Some(daemon_bytes) => {
                let local = request::execute(&Payload::Exp(exp_id.clone())).map_err(|e| {
                    BenchError::InvalidFlag {
                        flag: "--verify-exp",
                        detail: format!("local run of {exp_id} failed: {e:?}"),
                    }
                })?;
                if local != daemon_bytes {
                    violations.push(format!(
                        "verify-exp {exp_id}: daemon bytes (fnv {:016x}) != local bytes (fnv {:016x})",
                        store::fnv1a64(daemon_bytes.as_bytes()),
                        store::fnv1a64(local.as_bytes())
                    ));
                }
            }
        }
    }

    let report = LoadReport {
        sent: stream_plan.len(),
        ok,
        cache_paths,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            stream_plan.len() as f64 / wall_s
        } else {
            0.0
        },
        latency_ms,
        violations,
    };
    if let Some(path) = &config.json_path {
        let text = serde_json::to_string(&report.to_value(config))
            .expect("report has no non-finite floats");
        store::write_atomic(path, format!("{text}\n").as_bytes()).map_err(|e| {
            BenchError::Manifest {
                path: path.clone(),
                detail: e.to_string(),
            }
        })?;
    }
    Ok(report)
}

/// Sends `lines` down one connection, pipelined, and collects the responses
/// with per-request latency (send → response arrival).
fn drive_connection(connect: &str, lines: &[String], verify_line: Option<&str>) -> ConnOutcome {
    let mut outcome = ConnOutcome {
        responses: Vec::new(),
        error: None,
    };
    let stream = match TcpStream::connect(connect) {
        Ok(s) => s,
        Err(e) => {
            outcome.error = Some(format!("connect {connect}: {e}"));
            return outcome;
        }
    };
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            outcome.error = Some(format!("clone {connect}: {e}"));
            return outcome;
        }
    };
    let expected = lines.len() + usize::from(verify_line.is_some());
    let reader = thread::spawn(move || {
        let mut collected = Vec::new();
        let reader = BufReader::new(read_half);
        for line in reader.lines() {
            let arrived = Instant::now();
            match line {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => match request::parse_response(&line) {
                    Ok(parsed) => collected.push((parsed, arrived)),
                    Err(e) => {
                        collected.push((
                            ParsedResponse {
                                id: String::new(),
                                status: format!("unparseable: {e}"),
                                digest: None,
                                cache: None,
                                error: Some(line),
                                result_canonical: None,
                            },
                            arrived,
                        ));
                    }
                },
                Err(_) => break,
            }
            if collected.len() >= expected {
                break;
            }
        }
        collected
    });

    let mut sent_at: HashMap<String, Instant> = HashMap::new();
    let mut writer = std::io::BufWriter::new(stream);
    let mut write_error = None;
    for line in lines.iter().map(String::as_str).chain(verify_line) {
        let id = line.split('"').nth(3).unwrap_or("").to_string();
        sent_at.insert(id, Instant::now());
        if let Err(e) = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
        {
            write_error = Some(format!("send to {connect}: {e}"));
            break;
        }
    }
    if write_error.is_none() {
        if let Err(e) = writer.flush() {
            write_error = Some(format!("flush to {connect}: {e}"));
        }
    }
    outcome.error = write_error;
    match reader.join() {
        Ok(collected) => {
            for (response, arrived) in collected {
                let latency = sent_at
                    .get(&response.id)
                    .map(|sent| arrived.duration_since(*sent).as_secs_f64() * 1e3)
                    .unwrap_or(0.0);
                outcome.responses.push((response, latency));
            }
        }
        Err(_) => {
            outcome.error = Some("reader thread panicked".to_string());
        }
    }
    outcome
}
