//! The synthetic load generator behind `wrsnd load` and `BENCH_pr9.json`.
//!
//! Opens `conns` TCP connections to a running daemon and drives `requests`
//! scenario requests through them, pipelined (every connection keeps its
//! requests in flight without waiting for earlier responses). The request
//! mix is deterministic in `seed`: node counts drawn from a mixed-size
//! palette, a configurable fraction of *duplicates* — requests whose
//! canonical payload (and hence digest) repeats — to exercise the dedupe
//! path, and a configurable fraction of *streamed* requests
//! (`{"stream":true}`) whose progress frames are validated as they arrive.
//!
//! The generator is a resilient client, not a fire-and-forget cannon:
//!
//! - a typed `overloaded` response is retried with seeded, jittered
//!   exponential backoff that honours the daemon's `retry_after_ms` hint,
//!   up to `max_attempts` per request;
//! - a dropped or stalled connection (the chaos proxy's specialty) is
//!   reconnected and every unresolved request is resent — the daemon's
//!   content-addressed dedupe makes resending idempotent.
//!
//! Besides throughput/latency it **verifies** the daemon's contract and
//! fails loudly (nonzero exit from the CLI) when it is violated:
//!
//! - every request eventually resolves `ok` — shed requests after retries,
//!   resent requests after reconnects — exactly once;
//! - responses sharing a digest carry byte-identical `result` values,
//!   whatever mix of `miss`/`hit`/`coalesced` (or streamed/plain) served
//!   them;
//! - a streamed request's `progress` frames carry contiguous `seq` numbers
//!   and records that parse as PR 2 JSONL trace lines;
//! - with `--verify-exp <id>`, the daemon's result for that experiment must
//!   match this process's own in-process computation byte for byte — the
//!   daemon path and the `exp` single-shot path cannot drift apart.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Value;
use wrsn::sim::store;

use super::request::{self, DeploymentKind, ParsedResponse, Payload, ScenarioSpec};
use crate::error::BenchError;

/// Node-count palette for the mixed-size request stream.
const NODE_SIZES: &[usize] = &[10, 20, 40, 80];

/// Scenario horizon used by generated requests — short enough that a single
/// request is milliseconds of compute, so the benchmark measures the
/// *service*, not one giant simulation.
const LOAD_HORIZON_S: f64 = 5_000.0;

/// Base retry delay when an `overloaded` response carries no usable hint.
const RETRY_BASE_MS: u64 = 25;

/// Upper clamp on any single backoff delay.
const RETRY_CAP_MS: u64 = 4_000;

/// Socket read timeout while polling for responses — short, so the state
/// machine stays responsive to due retries.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// Silence this long with work in flight triggers a reconnect-and-resend
/// (a stalled proxy or half-dead daemon connection).
const STALL_RECONNECT_AFTER: Duration = Duration::from_secs(5);

/// Reconnect attempts before a connection gives up on its remaining work.
const MAX_RECONNECTS_PER_STALL: u32 = 5;

/// Load-run configuration (assembled by the `wrsnd load` CLI).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7878`.
    pub connect: String,
    /// Total work requests to send.
    pub requests: usize,
    /// Concurrent connections to spread them over.
    pub conns: usize,
    /// Fraction of requests that repeat an earlier digest (`0.0..=1.0`).
    pub dup_frac: f64,
    /// Fraction of requests sent with `{"stream":true}` (`0.0..=1.0`).
    pub stream_frac: f64,
    /// Per-request deadline sent with every request, seconds.
    pub deadline_s: f64,
    /// Stream seed.
    pub seed: u64,
    /// Attempts per request before an `overloaded` chain counts as a
    /// violation (first send included).
    pub max_attempts: u32,
    /// Also send this experiment id and compare against an in-process run.
    pub verify_exp: Option<String>,
    /// Write the JSON report here (atomically) when set.
    pub json_path: Option<std::path::PathBuf>,
    /// Send `{"op":"shutdown"}` after the run completes.
    pub shutdown: bool,
}

/// What a completed load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent (unique ids, not counting retries/resends).
    pub sent: usize,
    /// `ok` responses.
    pub ok: usize,
    /// Responses by cache path: `(miss, hit, coalesced)`.
    pub cache_paths: (usize, usize, usize),
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// Sustained goodput, `ok` responses per second.
    pub throughput_rps: f64,
    /// Per-request latency samples (first send → final response), ms.
    pub latency_ms: Vec<f64>,
    /// `overloaded` responses observed (each one a shed admission).
    pub shed: usize,
    /// Retries sent after backoff.
    pub retries: usize,
    /// Reconnect-and-resend cycles after drops or stalls.
    pub reconnects: usize,
    /// Requests sent with `{"stream":true}`.
    pub stream_requests: usize,
    /// `progress` frames received and validated.
    pub stream_frames: usize,
    /// The daemon's own `stats` snapshot (canonical JSON), when reachable.
    pub daemon_stats: Option<String>,
    /// Contract violations (empty for a passing run).
    pub violations: Vec<String>,
}

impl LoadReport {
    /// The JSON report body (`BENCH_pr9.json` schema).
    pub fn to_value(&self, config: &LoadConfig) -> Value {
        let opt = |x: Option<f64>| x.map(Value::F64).unwrap_or(Value::Null);
        let lat = &self.latency_ms;
        let daemon = self
            .daemon_stats
            .as_deref()
            .and_then(|s| serde_json::from_str(s).ok())
            .unwrap_or(Value::Null);
        Value::Map(vec![
            ("bench".to_string(), Value::Str("wrsnd-loadgen".to_string())),
            ("requests".to_string(), Value::U64(self.sent as u64)),
            ("conns".to_string(), Value::U64(config.conns as u64)),
            ("dup_frac".to_string(), Value::F64(config.dup_frac)),
            ("stream_frac".to_string(), Value::F64(config.stream_frac)),
            ("seed".to_string(), Value::U64(config.seed)),
            (
                "max_attempts".to_string(),
                Value::U64(u64::from(config.max_attempts)),
            ),
            (
                "node_sizes".to_string(),
                Value::Seq(NODE_SIZES.iter().map(|&n| Value::U64(n as u64)).collect()),
            ),
            ("ok".to_string(), Value::U64(self.ok as u64)),
            (
                "cache".to_string(),
                Value::Map(vec![
                    ("miss".to_string(), Value::U64(self.cache_paths.0 as u64)),
                    ("hit".to_string(), Value::U64(self.cache_paths.1 as u64)),
                    (
                        "coalesced".to_string(),
                        Value::U64(self.cache_paths.2 as u64),
                    ),
                ]),
            ),
            (
                "overload".to_string(),
                Value::Map(vec![
                    ("shed".to_string(), Value::U64(self.shed as u64)),
                    ("retries".to_string(), Value::U64(self.retries as u64)),
                    ("reconnects".to_string(), Value::U64(self.reconnects as u64)),
                    (
                        "shed_rate".to_string(),
                        Value::F64(if self.sent > 0 {
                            self.shed as f64 / self.sent as f64
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "stream".to_string(),
                Value::Map(vec![
                    (
                        "requests".to_string(),
                        Value::U64(self.stream_requests as u64),
                    ),
                    ("frames".to_string(), Value::U64(self.stream_frames as u64)),
                ]),
            ),
            ("wall_s".to_string(), Value::F64(self.wall_s)),
            ("goodput_rps".to_string(), Value::F64(self.throughput_rps)),
            (
                "latency_ms".to_string(),
                Value::Map(vec![
                    ("mean".to_string(), Value::F64(crate::stats::mean(lat))),
                    ("p50".to_string(), opt(crate::stats::p50(lat))),
                    ("p99".to_string(), opt(crate::stats::p99(lat))),
                    ("max".to_string(), opt(crate::stats::max(lat))),
                ]),
            ),
            ("daemon".to_string(), daemon),
            (
                "violations".to_string(),
                Value::Seq(
                    self.violations
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One planned request: the wire line, its payload digest, and whether it
/// opted into streaming.
#[derive(Debug, Clone)]
pub struct PlannedRequest {
    /// Correlation id (`q<k>`).
    pub id: String,
    /// The full request line.
    pub line: String,
    /// The payload's content digest.
    pub digest: String,
    /// Whether the line carries `"stream":true`.
    pub streamed: bool,
}

/// The deterministic request stream.
///
/// A pool of `ceil(requests * (1 - dup_frac))` unique scenarios is generated
/// first; the stream then samples from it so that roughly `dup_frac` of
/// requests repeat an earlier digest, interleaved across connections.
/// Roughly `stream_frac` of requests (chosen by the same seeded RNG) are
/// sent streamed — duplicates included, so streamed and plain requests
/// provably share digests and cache entries.
pub fn request_stream(config: &LoadConfig) -> Vec<PlannedRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x6c6f_6164);
    let dup_frac = config.dup_frac.clamp(0.0, 1.0);
    let stream_frac = config.stream_frac.clamp(0.0, 1.0);
    let unique = ((config.requests as f64 * (1.0 - dup_frac)).ceil() as usize)
        .clamp(1, config.requests.max(1));
    let pool: Vec<ScenarioSpec> = (0..unique)
        .map(|k| ScenarioSpec {
            nodes: NODE_SIZES[rng.gen_range(0..NODE_SIZES.len())],
            seed: k as u64, // distinct seeds keep pool entries distinct
            horizon_s: LOAD_HORIZON_S,
            deployment: DeploymentKind::Uniform,
        })
        .collect();
    (0..config.requests)
        .map(|k| {
            // First pass covers the pool in order (every unique scenario is
            // computed at least once); the tail re-samples — duplicates.
            let spec = if k < pool.len() {
                &pool[k]
            } else {
                &pool[rng.gen_range(0..pool.len())]
            };
            let streamed = rng.gen_range(0.0..1.0) < stream_frac;
            let payload = Payload::Scenario(spec.clone());
            let stream_field = if streamed { ",\"stream\":true" } else { "" };
            let line = format!(
                "{{\"id\":\"q{k}\",\"scenario\":{{\"nodes\":{},\"seed\":{},\"horizon_s\":{}}},\
                 \"deadline_s\":{}{stream_field}}}",
                spec.nodes, spec.seed, spec.horizon_s, config.deadline_s
            );
            PlannedRequest {
                id: format!("q{k}"),
                line,
                digest: payload.digest(),
                streamed,
            }
        })
        .collect()
}

struct ConnOutcome {
    /// One terminal response per request id, with first-send→final latency.
    responses: Vec<(ParsedResponse, f64)>,
    violations: Vec<String>,
    error: Option<String>,
    shed: usize,
    retries: usize,
    reconnects: usize,
    stream_frames: usize,
}

/// Runs the load, returning the measured report.
///
/// # Errors
///
/// [`BenchError::Io`] when the daemon cannot be reached at all; protocol
/// violations are collected in [`LoadReport::violations`] instead so one
/// bad response does not mask the rest of the run.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, BenchError> {
    let addr_path = std::path::Path::new(&config.connect);
    let stream_plan = request_stream(config);
    let conns = config.conns.clamp(1, stream_plan.len().max(1));
    let stream_requests = stream_plan.iter().filter(|p| p.streamed).count();

    let mut expected: HashMap<String, String> = HashMap::new(); // id → digest
    for planned in &stream_plan {
        expected.insert(planned.id.clone(), planned.digest.clone());
    }

    let started = Instant::now();
    let (result_tx, result_rx) = mpsc::channel::<ConnOutcome>();
    let mut handles = Vec::new();
    for conn_id in 0..conns {
        // Round-robin the stream across connections.
        let mut work: Vec<PlannedRequest> = stream_plan
            .iter()
            .enumerate()
            .filter(|(k, _)| k % conns == conn_id)
            .map(|(_, planned)| planned.clone())
            .collect();
        if conn_id == 0 {
            if let Some(id) = &config.verify_exp {
                work.push(PlannedRequest {
                    id: "verify".to_string(),
                    line: format!("{{\"id\":\"verify\",\"exp\":\"{id}\"}}"),
                    digest: String::new(),
                    streamed: false,
                });
            }
        }
        let connect = config.connect.clone();
        let deadline_s = config.deadline_s;
        let max_attempts = config.max_attempts.max(1);
        let rng_seed = config.seed ^ 0x7265_7472 ^ (conn_id as u64).wrapping_mul(0x9e37_79b9);
        let tx = result_tx.clone();
        handles.push(
            thread::Builder::new()
                .name(format!("loadgen-conn-{conn_id}"))
                .spawn(move || {
                    let outcome =
                        drive_connection(&connect, work, deadline_s, max_attempts, rng_seed);
                    let _ = tx.send(outcome);
                })
                .map_err(|e| {
                    BenchError::io(
                        "spawn load connection",
                        std::path::Path::new("loadgen"),
                        &std::io::Error::other(e.to_string()),
                    )
                })?,
        );
    }
    drop(result_tx);

    let mut responses: Vec<(ParsedResponse, f64)> = Vec::new();
    let mut violations = Vec::new();
    let mut shed = 0usize;
    let mut retries = 0usize;
    let mut reconnects = 0usize;
    let mut stream_frames = 0usize;
    while let Ok(outcome) = result_rx.recv() {
        if let Some(error) = outcome.error {
            violations.push(error);
        }
        violations.extend(outcome.violations);
        responses.extend(outcome.responses);
        shed += outcome.shed;
        retries += outcome.retries;
        reconnects += outcome.reconnects;
        stream_frames += outcome.stream_frames;
    }
    for handle in handles {
        let _ = handle.join();
    }
    let wall_s = started.elapsed().as_secs_f64();
    if responses.is_empty() && !violations.is_empty() {
        // Nothing came back at all — surface connectivity as a hard error.
        return Err(BenchError::io(
            "drive load against daemon",
            addr_path,
            &std::io::Error::other(violations.join("; ")),
        ));
    }

    // --- Contract checks -------------------------------------------------
    let mut by_digest: HashMap<String, String> = HashMap::new(); // digest → result bytes
    let mut verify_result: Option<String> = None;
    let mut seen_ids: HashMap<String, u64> = HashMap::new();
    let mut ok = 0usize;
    let mut cache_paths = (0usize, 0usize, 0usize);
    let mut latency_ms = Vec::new();
    for (response, latency) in &responses {
        *seen_ids.entry(response.id.clone()).or_default() += 1;
        if response.id == "verify" {
            if response.status == "ok" {
                verify_result = response.result_canonical.clone();
            } else {
                violations.push(format!(
                    "verify request failed: {}",
                    response.error.clone().unwrap_or_default()
                ));
            }
            continue;
        }
        if response.status != "ok" {
            violations.push(format!(
                "{}: status {} ({})",
                response.id,
                response.status,
                response.error.clone().unwrap_or_default()
            ));
            continue;
        }
        ok += 1;
        latency_ms.push(*latency);
        match response.cache.as_deref() {
            Some("miss") => cache_paths.0 += 1,
            Some("hit") => cache_paths.1 += 1,
            Some("coalesced") => cache_paths.2 += 1,
            other => violations.push(format!("{}: bad cache tag {other:?}", response.id)),
        }
        let (Some(digest), Some(result)) = (&response.digest, &response.result_canonical) else {
            violations.push(format!(
                "{}: ok response missing digest/result",
                response.id
            ));
            continue;
        };
        if let Some(want) = expected.get(&response.id) {
            if want != digest {
                violations.push(format!(
                    "{}: digest {digest} != expected {want}",
                    response.id
                ));
            }
        }
        match by_digest.get(digest) {
            None => {
                by_digest.insert(digest.clone(), result.clone());
            }
            Some(first) if first != result => violations.push(format!(
                "{}: duplicate digest {digest} served different bytes",
                response.id
            )),
            Some(_) => {}
        }
    }
    for (id, digest) in &expected {
        match seen_ids.get(id) {
            Some(1) => {}
            Some(n) => violations.push(format!("{id}: answered {n} times")),
            None => violations.push(format!("{id}: never answered (digest {digest})")),
        }
    }
    if let Some(exp_id) = &config.verify_exp {
        match verify_result {
            None => violations.push(format!("verify-exp {exp_id}: no ok response")),
            Some(daemon_bytes) => {
                let local = request::execute(&Payload::Exp(exp_id.clone())).map_err(|e| {
                    BenchError::InvalidFlag {
                        flag: "--verify-exp",
                        detail: format!("local run of {exp_id} failed: {e:?}"),
                    }
                })?;
                if local != daemon_bytes {
                    violations.push(format!(
                        "verify-exp {exp_id}: daemon bytes (fnv {:016x}) != local bytes (fnv {:016x})",
                        store::fnv1a64(daemon_bytes.as_bytes()),
                        store::fnv1a64(local.as_bytes())
                    ));
                }
            }
        }
    }

    let report = LoadReport {
        sent: stream_plan.len(),
        ok,
        cache_paths,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        latency_ms,
        shed,
        retries,
        reconnects,
        stream_requests,
        stream_frames,
        daemon_stats: fetch_daemon_stats(&config.connect),
        violations,
    };
    if let Some(path) = &config.json_path {
        let text = serde_json::to_string(&report.to_value(config))
            .expect("report has no non-finite floats");
        store::write_atomic(path, format!("{text}\n").as_bytes()).map_err(|e| {
            BenchError::Manifest {
                path: path.clone(),
                detail: e.to_string(),
            }
        })?;
    }
    Ok(report)
}

/// Asks the daemon for its own `stats` snapshot over a fresh connection;
/// `None` when it cannot be reached (e.g. through a misbehaving proxy).
fn fetch_daemon_stats(connect: &str) -> Option<String> {
    let mut stream = TcpStream::connect(connect).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream
        .write_all(b"{\"id\":\"stats\",\"op\":\"stats\"}\n")
        .ok()?;
    stream.flush().ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    request::parse_response(line.trim()).ok()?.result_canonical
}

/// Seeded, jittered exponential backoff for retry `attempt` (0-based),
/// honouring the daemon's `retry_after_ms` hint as the base.
fn backoff_delay(rng: &mut ChaCha8Rng, attempt: u32, hint_ms: Option<u64>) -> Duration {
    let base = hint_ms.unwrap_or(RETRY_BASE_MS).max(1);
    let expo = base.saturating_mul(1u64 << attempt.min(6));
    let capped = expo.min(RETRY_CAP_MS) as f64;
    let jittered = capped * rng.gen_range(0.5..1.5);
    Duration::from_millis(jittered.max(1.0) as u64)
}

/// Per-request client state across retries and reconnects.
struct Tracked {
    planned: PlannedRequest,
    /// Completed send attempts.
    attempts: u32,
    /// Earliest instant the next (re)send may go out.
    due: Instant,
    /// Set while an attempt is in flight on the current connection.
    inflight: bool,
    /// First send (latency measurements run from here).
    first_sent: Option<Instant>,
    /// Next expected `progress` frame number.
    next_seq: u64,
}

/// One capped non-blocking-ish line poll; partial data survives timeouts in
/// `buf`. `Ok(None)` = nothing complete yet; `Err` = the connection is gone.
fn poll_line<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> std::io::Result<Option<String>> {
    match reader.read_until(b'\n', buf) {
        Ok(0) => Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "daemon closed the connection",
        )),
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
                let line = String::from_utf8_lossy(buf).into_owned();
                buf.clear();
                Ok(Some(line))
            } else {
                Ok(None)
            }
        }
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Ok(None),
        Err(e) => Err(e),
    }
}

fn connect_with_timeouts(connect: &str) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(connect)?;
    stream.set_read_timeout(Some(POLL_TIMEOUT))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let write_half = stream.try_clone()?;
    Ok((BufReader::new(stream), write_half))
}

/// Drives one connection's share of the plan to resolution: pipelined sends,
/// overload retries with backoff, reconnect-and-resend on drops and stalls,
/// and streamed-frame validation.
fn drive_connection(
    connect: &str,
    work: Vec<PlannedRequest>,
    deadline_s: f64,
    max_attempts: u32,
    rng_seed: u64,
) -> ConnOutcome {
    let mut outcome = ConnOutcome {
        responses: Vec::new(),
        violations: Vec::new(),
        error: None,
        shed: 0,
        retries: 0,
        reconnects: 0,
        stream_frames: 0,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
    let now = Instant::now();
    let mut tracked: HashMap<String, Tracked> = work
        .into_iter()
        .map(|planned| {
            (
                planned.id.clone(),
                Tracked {
                    planned,
                    attempts: 0,
                    due: now,
                    inflight: false,
                    first_sent: None,
                    next_seq: 0,
                },
            )
        })
        .collect();
    let mut open = tracked.len();

    let (mut reader, mut writer) = match connect_with_timeouts(connect) {
        Ok(pair) => pair,
        Err(e) => {
            outcome.error = Some(format!("connect {connect}: {e}"));
            return outcome;
        }
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    let mut stall_reconnects = 0u32;
    // Hard ceiling: the work deadline plus generous slack for retries. A run
    // that cannot finish by then reports the stragglers instead of hanging.
    let give_up_at = Instant::now()
        + Duration::from_secs_f64(deadline_s.max(1.0) * f64::from(max_attempts) + 60.0);

    while open > 0 {
        if Instant::now() > give_up_at {
            for t in tracked.values() {
                if !is_done(t) {
                    outcome
                        .violations
                        .push(format!("{}: gave up after run ceiling", t.planned.id));
                }
            }
            break;
        }
        // Send everything due. Collect ids first to appease the borrow
        // checker, then write.
        let due_ids: Vec<String> = tracked
            .values()
            .filter(|t| !is_done(t) && !t.inflight && t.due <= Instant::now())
            .map(|t| t.planned.id.clone())
            .collect();
        let mut write_failed = false;
        for id in due_ids {
            let t = tracked.get_mut(&id).expect("tracked id");
            let send = writer
                .write_all(t.planned.line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            if send.is_err() {
                write_failed = true;
                break;
            }
            t.inflight = true;
            t.next_seq = 0;
            if t.first_sent.is_none() {
                t.first_sent = Some(Instant::now());
            }
            last_activity = Instant::now();
        }
        if write_failed {
            if !reconnect(
                connect,
                &mut reader,
                &mut writer,
                &mut buf,
                &mut tracked,
                &mut outcome,
            ) {
                break;
            }
            last_activity = Instant::now();
            continue;
        }
        // Poll for one line (bounded by the socket timeout).
        match poll_line(&mut reader, &mut buf) {
            Ok(Some(line)) => {
                last_activity = Instant::now();
                stall_reconnects = 0;
                if line.trim().is_empty() {
                    continue;
                }
                let parsed = match request::parse_response(&line) {
                    Ok(parsed) => parsed,
                    Err(e) => {
                        outcome
                            .violations
                            .push(format!("unparseable response: {e}: {line}"));
                        continue;
                    }
                };
                handle_response(
                    parsed,
                    &mut tracked,
                    &mut outcome,
                    &mut open,
                    &mut rng,
                    max_attempts,
                );
            }
            Ok(None) => {
                // Quiet. Distinguish "waiting on slow work" from "stalled".
                let inflight = tracked.values().any(|t| t.inflight);
                if inflight && last_activity.elapsed() > STALL_RECONNECT_AFTER {
                    stall_reconnects += 1;
                    if stall_reconnects > MAX_RECONNECTS_PER_STALL {
                        outcome.error = Some(format!(
                            "{connect}: still stalled after {MAX_RECONNECTS_PER_STALL} reconnects"
                        ));
                        break;
                    }
                    if !reconnect(
                        connect,
                        &mut reader,
                        &mut writer,
                        &mut buf,
                        &mut tracked,
                        &mut outcome,
                    ) {
                        break;
                    }
                    last_activity = Instant::now();
                }
            }
            Err(_) => {
                // Dropped mid-run (the chaos proxy's favourite move).
                if !reconnect(
                    connect,
                    &mut reader,
                    &mut writer,
                    &mut buf,
                    &mut tracked,
                    &mut outcome,
                ) {
                    break;
                }
                last_activity = Instant::now();
            }
        }
    }
    outcome
}

fn is_done(t: &Tracked) -> bool {
    // A request is resolved once a terminal response was recorded: we mark
    // that by clearing `inflight` *and* zeroing `due` far in the future.
    t.attempts == u32::MAX
}

fn mark_done(t: &mut Tracked) {
    t.attempts = u32::MAX;
    t.inflight = false;
}

/// Applies one parsed response line to the connection state.
fn handle_response(
    parsed: ParsedResponse,
    tracked: &mut HashMap<String, Tracked>,
    outcome: &mut ConnOutcome,
    open: &mut usize,
    rng: &mut ChaCha8Rng,
    max_attempts: u32,
) {
    let Some(t) = tracked.get_mut(&parsed.id) else {
        outcome
            .violations
            .push(format!("response for unknown id `{}`", parsed.id));
        return;
    };
    if is_done(t) {
        // A late duplicate final (e.g. the pre-reconnect attempt's answer
        // racing the resend's) — the daemon's dedupe makes the bytes
        // identical, so it is dropped rather than double-counted.
        return;
    }
    if parsed.status == "progress" {
        let seq = parsed.seq.unwrap_or(u64::MAX);
        if seq != t.next_seq && seq != 0 {
            outcome.violations.push(format!(
                "{}: progress seq {seq}, expected {}",
                parsed.id, t.next_seq
            ));
        }
        // seq 0 after a resend restarts the stream; otherwise advance.
        t.next_seq = seq.saturating_add(1);
        match &parsed.records {
            None => outcome
                .violations
                .push(format!("{}: progress frame without records", parsed.id)),
            Some(records) => {
                for record in records {
                    if let Err(e) = wrsn::sim::obs::from_jsonl_line(record) {
                        outcome.violations.push(format!(
                            "{}: progress record is not a valid trace line: {e}",
                            parsed.id
                        ));
                        break;
                    }
                }
            }
        }
        outcome.stream_frames += 1;
        return;
    }
    if parsed.status == "overloaded" {
        outcome.shed += 1;
        t.attempts += 1;
        t.inflight = false;
        if t.attempts >= max_attempts {
            // Exhausted: surface the overloaded response as the terminal
            // one; the aggregate contract check flags it.
            let latency = t
                .first_sent
                .map(|s| s.elapsed().as_secs_f64() * 1e3)
                .unwrap_or(0.0);
            outcome.responses.push((parsed, latency));
            mark_done(t);
            *open -= 1;
            return;
        }
        outcome.retries += 1;
        t.due = Instant::now() + backoff_delay(rng, t.attempts - 1, parsed.retry_after_ms);
        return;
    }
    // Terminal: ok / error / timeout / invalid.
    let latency = t
        .first_sent
        .map(|s| s.elapsed().as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    outcome.responses.push((parsed, latency));
    mark_done(t);
    *open -= 1;
}

/// Re-establishes the connection and resends every unresolved request
/// (in-flight and due alike). Returns `false` when the daemon stays
/// unreachable, recording the failure.
fn reconnect(
    connect: &str,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    buf: &mut Vec<u8>,
    tracked: &mut HashMap<String, Tracked>,
    outcome: &mut ConnOutcome,
) -> bool {
    for pause_ms in [50u64, 100, 250, 500, 1000] {
        thread::sleep(Duration::from_millis(pause_ms));
        match connect_with_timeouts(connect) {
            Ok((r, w)) => {
                *reader = r;
                *writer = w;
                buf.clear();
                outcome.reconnects += 1;
                let now = Instant::now();
                for t in tracked.values_mut() {
                    if !is_done(t) && t.inflight {
                        // Resend: the daemon's content-addressed dedupe makes
                        // this idempotent.
                        t.inflight = false;
                        t.due = now;
                        t.next_seq = 0;
                    }
                }
                return true;
            }
            Err(_) => continue,
        }
    }
    outcome.error = Some(format!("{connect}: reconnect failed repeatedly"));
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(requests: usize, dup_frac: f64, stream_frac: f64, seed: u64) -> LoadConfig {
        LoadConfig {
            connect: String::new(),
            requests,
            conns: 2,
            dup_frac,
            stream_frac,
            deadline_s: 30.0,
            seed,
            max_attempts: 8,
            verify_exp: None,
            json_path: None,
            shutdown: false,
        }
    }

    #[test]
    fn request_stream_is_deterministic_and_respects_fractions() {
        let a = request_stream(&config(100, 0.5, 0.3, 7));
        let b = request_stream(&config(100, 0.5, 0.3, 7));
        assert_eq!(a.len(), 100);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.line == y.line && x.digest == y.digest && x.streamed == y.streamed));
        let unique: std::collections::HashSet<_> = a.iter().map(|p| &p.digest).collect();
        assert!(unique.len() <= 51, "dup_frac bounds the unique pool");
        let streamed = a.iter().filter(|p| p.streamed).count();
        assert!(
            (10..=60).contains(&streamed),
            "~30% streamed, got {streamed}"
        );
        assert!(a
            .iter()
            .filter(|p| p.streamed)
            .all(|p| p.line.contains("\"stream\":true")));
        let c = request_stream(&config(100, 0.5, 0.3, 8));
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.line != y.line),
            "different seed, different stream"
        );
    }

    #[test]
    fn streamed_duplicates_share_digests_with_plain_requests() {
        let plan = request_stream(&config(200, 0.8, 0.5, 11));
        let mut by_digest: HashMap<&String, (bool, bool)> = HashMap::new();
        for p in &plan {
            let entry = by_digest.entry(&p.digest).or_default();
            if p.streamed {
                entry.0 = true;
            } else {
                entry.1 = true;
            }
        }
        assert!(
            by_digest.values().any(|&(s, p)| s && p),
            "the plan must exercise streamed+plain pairs of one digest"
        );
    }

    #[test]
    fn backoff_honours_the_hint_and_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for attempt in 0..12 {
            let d = backoff_delay(&mut rng, attempt, Some(100));
            assert!(d >= Duration::from_millis(50), "attempt {attempt}: {d:?}");
            assert!(
                d <= Duration::from_millis(RETRY_CAP_MS * 3 / 2),
                "attempt {attempt}: {d:?}"
            );
        }
        // Deterministic in the seed.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(
            backoff_delay(&mut a, 2, None),
            backoff_delay(&mut b, 2, None)
        );
    }
}
