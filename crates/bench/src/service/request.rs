//! The `wrsnd` wire schema: newline-delimited JSON requests and responses.
//!
//! One request per line. A *work* request names either a paper experiment or
//! a parameterised synthetic scenario:
//!
//! ```text
//! {"id":"q1","exp":"fig2"}
//! {"id":"q2","scenario":{"nodes":40,"seed":7,"horizon_s":20000},"deadline_s":30}
//! ```
//!
//! A *control* request carries an `op` instead: `{"op":"ping"}`,
//! `{"op":"stats"}`, `{"op":"shutdown"}`.
//!
//! Responses are one JSON object per line, streamed back in **completion
//! order** (clients correlate by `id`):
//!
//! ```text
//! {"v":1,"id":"q2","status":"ok","digest":"<16 hex>","cache":"miss","wall_ms":3.1,"result":{...}}
//! {"v":1,"id":"q9","status":"timeout","error":"..."}
//! {"v":1,"id":"q3","status":"error","error":"..."}
//! ```
//!
//! The `result` object is the **deterministic** part of a response: for a
//! given payload its bytes are identical across runs, daemons, and
//! cache-hit/miss paths, so it is what the content-addressed artifact store
//! persists and what duplicate-detection compares. `wall_ms` and `cache`
//! live in the envelope, outside the digested bytes. `digest` is the
//! FNV-1a 64 hash of the payload's *canonical form* (defaults filled in,
//! fields in fixed order) — the cache key two textually different but
//! semantically identical requests share.

use serde::{Serialize as _, Value};
use wrsn::scenario::{Deployment, Scenario};
use wrsn::sim::obs::{TraceRecord, SCHEMA_VERSION};
use wrsn::sim::store;
use wrsn::sim::trace::Trace;
use wrsn::sim::{AuditConfig, SimError, World};

/// Response envelope version, bumped on incompatible wire changes.
pub const RESPONSE_VERSION: u64 = 1;

/// How many progress frames a streamed scenario aims for across its horizon:
/// the flush cadence is `horizon_s / STREAM_DIVISIONS` simulated seconds
/// (floored at 1 s so degenerate horizons cannot flush per-event).
pub const STREAM_DIVISIONS: f64 = 16.0;

/// Largest accepted scenario size (the SoA engine handles 10⁶ nodes, but a
/// shared daemon should not let one request monopolise it for minutes).
pub const MAX_NODES: usize = 200_000;

/// Scenario horizon when the request omits `horizon_s`, seconds.
pub const DEFAULT_HORIZON_S: f64 = 50_000.0;

/// Largest accepted scenario horizon, seconds.
pub const MAX_HORIZON_S: f64 = 1.0e9;

/// How scenario nodes are laid out (mirrors [`Deployment`] minus parameters,
/// so the wire form stays a plain string).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentKind {
    /// Uniform random over the field (the default).
    Uniform,
    /// Two clusters joined by a thin bridge.
    Corridor,
    /// Four Gaussian clusters, σ = 15 m.
    Clustered,
}

impl DeploymentKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            DeploymentKind::Uniform => "uniform",
            DeploymentKind::Corridor => "corridor",
            DeploymentKind::Clustered => "clustered",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "uniform" => Some(DeploymentKind::Uniform),
            "corridor" => Some(DeploymentKind::Corridor),
            "clustered" => Some(DeploymentKind::Clustered),
            _ => None,
        }
    }
}

/// A validated synthetic-scenario request body.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Sensor node count (`2..=`[`MAX_NODES`]).
    pub nodes: usize,
    /// Deployment / battery-level RNG seed.
    pub seed: u64,
    /// Simulation horizon, seconds.
    pub horizon_s: f64,
    /// Node layout.
    pub deployment: DeploymentKind,
}

impl ScenarioSpec {
    /// The canonical inner JSON value (defaults filled, fixed field order) —
    /// the bytes the request digest is computed over.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("nodes".to_string(), Value::U64(self.nodes as u64)),
            ("seed".to_string(), Value::U64(self.seed)),
            ("horizon_s".to_string(), Value::F64(self.horizon_s)),
            (
                "deployment".to_string(),
                Value::Str(self.deployment.name().to_string()),
            ),
        ])
    }

    /// The equivalent experiment-world builder.
    pub fn scenario(&self) -> Scenario {
        let mut scenario = Scenario::paper_scale(self.nodes, self.seed);
        scenario.horizon_s = self.horizon_s;
        match self.deployment {
            DeploymentKind::Uniform => {}
            DeploymentKind::Corridor => scenario.deployment = Deployment::Corridor,
            DeploymentKind::Clustered => {
                scenario.deployment = Deployment::Clustered {
                    count: 4,
                    sigma: 15.0,
                }
            }
        }
        scenario
    }
}

/// What a work request asks the daemon to compute.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A full paper experiment by id (`exp --id <id>` equivalent, unobserved).
    Exp(String),
    /// A parameterised synthetic CSA campaign.
    Scenario(ScenarioSpec),
    /// Test-only payloads for exercising the scheduler in-process.
    #[cfg(test)]
    Test(TestOp),
}

/// Test-only payload behaviours (see [`Payload::Test`]).
#[cfg(test)]
#[derive(Debug, Clone, PartialEq)]
pub enum TestOp {
    /// Returns `{"echo":<tag>}` after `sleep_ms`.
    Echo {
        /// Distinguishes digests.
        tag: u64,
        /// Simulated compute time.
        sleep_ms: u64,
    },
    /// Panics (a poisoned work item).
    Panic,
    /// Spins on the thread's cancellation token, like a hung engine segment.
    Hang,
    /// Under [`execute_streamed`], emits `frames` one-record progress batches
    /// with `sleep_ms` between them; under [`execute`], returns the same
    /// final result with no frames (the streamed/plain-digest-equality pair).
    Stream {
        /// Progress batches to emit.
        frames: u64,
        /// Wall-clock pause between batches.
        sleep_ms: u64,
    },
}

impl Payload {
    /// The canonical JSON form the request digest is computed over. Two
    /// requests with the same canonical form are the same work, whatever
    /// their `id`, `deadline_s`, field order, or omitted defaults.
    pub fn canonical(&self) -> String {
        let value = match self {
            Payload::Exp(id) => Value::Map(vec![("exp".to_string(), Value::Str(id.clone()))]),
            Payload::Scenario(spec) => Value::Map(vec![("scenario".to_string(), spec.to_value())]),
            #[cfg(test)]
            Payload::Test(op) => {
                let name = match op {
                    TestOp::Echo { tag, .. } => format!("echo-{tag}"),
                    TestOp::Panic => "panic".to_string(),
                    TestOp::Hang => "hang".to_string(),
                    TestOp::Stream { frames, .. } => format!("stream-{frames}"),
                };
                Value::Map(vec![("test".to_string(), Value::Str(name))])
            }
        };
        serde_json::to_string(&value).expect("canonical payload has no non-finite floats")
    }

    /// FNV-1a 64 digest (16 hex digits) of the canonical form — the
    /// content-address the cache and dedupe layers key on.
    pub fn digest(&self) -> String {
        format!("{:016x}", store::fnv1a64(self.canonical().as_bytes()))
    }
}

/// Daemon-side control operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Liveness probe; answered inline.
    Ping,
    /// Service counter snapshot; answered inline.
    Stats,
    /// Graceful drain-and-exit.
    Shutdown,
}

impl ControlOp {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ControlOp::Ping => "ping",
            ControlOp::Stats => "stats",
            ControlOp::Shutdown => "shutdown",
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id (`r<seq>` when the request omitted one).
    pub id: String,
    /// Per-request wall-clock deadline, seconds (overrides the server
    /// default when present).
    pub deadline_s: Option<f64>,
    /// Whether the client opted into incremental `progress` frames
    /// (`{"stream":true}`, scenario requests only). Streaming is an envelope
    /// concern: it never enters the payload's canonical form, so streamed and
    /// plain requests share one digest and one cache entry.
    pub stream: bool,
    /// Online digital-twin detector attached to the campaign
    /// (`{"detector":"default"}`, scenario requests only) — an
    /// [`AuditConfig`] preset name. Like `stream`, this is an envelope
    /// concern: the audit is purely observational (it never perturbs the
    /// trajectory, so the deterministic `result` bytes are identical with or
    /// without it) and therefore never enters the canonical form or digest —
    /// detector and plain requests share one cache entry. The audit summary
    /// rides in the response envelope, outside the digested bytes, and is
    /// only available on freshly computed responses (`"cache":"miss"`):
    /// cache hits replay stored bytes without re-running the campaign.
    pub detector: Option<String>,
    /// What the request asks for.
    pub kind: RequestKind,
}

/// Work vs. control.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Schedulable compute.
    Work(Payload),
    /// Inline control operation.
    Control(ControlOp),
}

fn field_str(value: &Value, field: &str) -> Result<String, String> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!("`{field}` must be a string, got {}", other.kind())),
    }
}

fn field_f64(value: &Value, field: &str) -> Result<f64, String> {
    match value {
        Value::U64(u) => Ok(*u as f64),
        Value::I64(i) => Ok(*i as f64),
        Value::F64(x) => Ok(*x),
        other => Err(format!("`{field}` must be a number, got {}", other.kind())),
    }
}

fn field_u64(value: &Value, field: &str) -> Result<u64, String> {
    match value {
        Value::U64(u) => Ok(*u),
        other => Err(format!(
            "`{field}` must be a non-negative integer, got {}",
            other.kind()
        )),
    }
}

fn field_bool(value: &Value, field: &str) -> Result<bool, String> {
    match value {
        Value::Bool(b) => Ok(*b),
        other => Err(format!("`{field}` must be a boolean, got {}", other.kind())),
    }
}

fn parse_scenario(value: &Value) -> Result<ScenarioSpec, String> {
    let map = value
        .as_map()
        .ok_or_else(|| format!("`scenario` must be an object, got {}", value.kind()))?;
    let mut nodes = None;
    let mut seed = 0u64;
    let mut horizon_s = DEFAULT_HORIZON_S;
    let mut deployment = DeploymentKind::Uniform;
    for (key, val) in map {
        match key.as_str() {
            "nodes" => nodes = Some(field_u64(val, "scenario.nodes")?),
            "seed" => seed = field_u64(val, "scenario.seed")?,
            "horizon_s" => horizon_s = field_f64(val, "scenario.horizon_s")?,
            "deployment" => {
                let name = field_str(val, "scenario.deployment")?;
                deployment = DeploymentKind::parse(&name).ok_or_else(|| {
                    format!("unknown deployment `{name}` (uniform, corridor, clustered)")
                })?;
            }
            other => return Err(format!("unknown scenario field `{other}`")),
        }
    }
    let nodes = nodes.ok_or("`scenario.nodes` is required")? as usize;
    if !(2..=MAX_NODES).contains(&nodes) {
        return Err(format!(
            "`scenario.nodes` must be in 2..={MAX_NODES}, got {nodes}"
        ));
    }
    if !horizon_s.is_finite() || horizon_s <= 0.0 || horizon_s > MAX_HORIZON_S {
        return Err(format!(
            "`scenario.horizon_s` must be a positive number <= {MAX_HORIZON_S:e}, got {horizon_s}"
        ));
    }
    Ok(ScenarioSpec {
        nodes,
        seed,
        horizon_s,
        deployment,
    })
}

/// Parses one request line. `seq` numbers the line within its connection and
/// names anonymous requests `r<seq>`. The error string is ready to embed in
/// an error response.
pub fn parse_line(line: &str, seq: u64) -> Result<Request, String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("malformed request JSON: {e}"))?;
    let map = value
        .as_map()
        .ok_or_else(|| format!("request must be a JSON object, got {}", value.kind()))?;
    let mut id = None;
    let mut deadline_s = None;
    let mut op = None;
    let mut exp = None;
    let mut scenario = None;
    let mut stream = false;
    let mut detector = None;
    for (key, val) in map {
        match key.as_str() {
            "id" => id = Some(field_str(val, "id")?),
            "deadline_s" => {
                let d = field_f64(val, "deadline_s")?;
                if !d.is_finite() || d <= 0.0 {
                    return Err(format!(
                        "`deadline_s` must be a positive number of seconds, got {d}"
                    ));
                }
                deadline_s = Some(d);
            }
            "op" => op = Some(field_str(val, "op")?),
            "exp" => exp = Some(field_str(val, "exp")?),
            "scenario" => scenario = Some(parse_scenario(val)?),
            "stream" => stream = field_bool(val, "stream")?,
            "detector" => {
                let name = field_str(val, "detector")?;
                if AuditConfig::preset(&name).is_none() {
                    return Err(format!(
                        "unknown detector preset `{name}` (lax, default, aggressive)"
                    ));
                }
                detector = Some(name);
            }
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    let id = id.unwrap_or_else(|| format!("r{seq}"));
    let kind = match (op, exp, scenario) {
        (Some(op), None, None) => {
            let op = match op.as_str() {
                "ping" => ControlOp::Ping,
                "stats" => ControlOp::Stats,
                "shutdown" => ControlOp::Shutdown,
                other => return Err(format!("unknown op `{other}` (ping, stats, shutdown)")),
            };
            RequestKind::Control(op)
        }
        (None, Some(exp), None) => {
            if !crate::is_known_id(&exp) {
                return Err(format!("unknown experiment id `{exp}`"));
            }
            RequestKind::Work(Payload::Exp(exp))
        }
        (None, None, Some(spec)) => RequestKind::Work(Payload::Scenario(spec)),
        (None, None, None) => {
            return Err("request needs exactly one of `op`, `exp`, `scenario`".to_string())
        }
        _ => return Err("`op`, `exp` and `scenario` are mutually exclusive".to_string()),
    };
    if stream && !matches!(&kind, RequestKind::Work(Payload::Scenario(_))) {
        return Err(
            "`stream` is only supported for scenario requests (experiments have no \
             incremental trace to stream)"
                .to_string(),
        );
    }
    if detector.is_some() && !matches!(&kind, RequestKind::Work(Payload::Scenario(_))) {
        return Err(
            "`detector` is only supported for scenario requests (experiments manage \
             their own detectors)"
                .to_string(),
        );
    }
    Ok(Request {
        id,
        deadline_s,
        stream,
        detector,
        kind,
    })
}

/// The envelope-level summary of a detector-equipped campaign: what the
/// digital twin concluded, distilled for the response envelope. Like
/// `wall_ms` and `cache`, this lives *outside* the digested `result` bytes —
/// the audit is observational, so the result is byte-identical with or
/// without it.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditSummary {
    /// The preset the campaign ran under.
    pub preset: String,
    /// Challenge-response probes issued.
    pub probes: u64,
    /// Probes that failed the residual check.
    pub probe_failures: u64,
    /// Nodes convicted by the k-of-m rule.
    pub convictions: u64,
    /// Time of the first conviction, simulated seconds, if any fired.
    pub first_conviction_s: Option<f64>,
    /// Probe overhead spent, joules.
    pub spent_j: f64,
}

impl AuditSummary {
    /// Distills the attached audit ledger, if any, after a campaign run.
    fn from_world(world: &World, preset: &str) -> Option<Self> {
        world.audit().map(|audit| AuditSummary {
            preset: preset.to_string(),
            probes: audit.probes().len() as u64,
            probe_failures: audit
                .probes()
                .iter()
                .filter(|p| p.outcome.is_failure())
                .count() as u64,
            convictions: audit.convictions().len() as u64,
            first_conviction_s: audit.first_conviction_s(),
            spent_j: audit.spent_j(),
        })
    }

    /// The JSON value embedded in the response envelope's `audit` field.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("preset".to_string(), Value::Str(self.preset.clone())),
            ("probes".to_string(), Value::U64(self.probes)),
            (
                "probe_failures".to_string(),
                Value::U64(self.probe_failures),
            ),
            ("convictions".to_string(), Value::U64(self.convictions)),
            (
                "first_conviction_s".to_string(),
                match self.first_conviction_s {
                    Some(t) => Value::F64(t),
                    None => Value::Null,
                },
            ),
            ("spent_j".to_string(), Value::F64(self.spent_j)),
        ])
    }
}

/// Builds a scenario's world, attaching the named detector preset (seeded by
/// the scenario seed, so twin verdicts are as reproducible as the campaign).
fn scenario_world(spec: &ScenarioSpec, detector: Option<&str>) -> (Scenario, World) {
    let scenario = spec.scenario();
    let mut world = scenario.build();
    if let Some(preset) = detector {
        let config = AuditConfig::preset(preset)
            .expect("parse_line validated the preset")
            .with_seed(spec.seed);
        world.set_audit(Some(config));
    }
    (scenario, world)
}

/// Why executing a payload did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The thread's cancellation token fired (deadline enforcement).
    Cancelled,
    /// The computation failed.
    Failed(String),
}

/// Executes a payload on the calling thread and returns the canonical
/// `result` JSON. Deadline enforcement is cooperative: the simulation engine
/// polls the thread's current [`wrsn::sim::cancel`] token between
/// integration segments, so install one before calling.
///
/// # Errors
///
/// [`ExecError::Cancelled`] when the token fired mid-run,
/// [`ExecError::Failed`] on an engine or serialization error. Panics inside
/// experiment code propagate (the scheduler catches them per-request).
pub fn execute(payload: &Payload) -> Result<String, ExecError> {
    execute_audited(payload, None).map(|(result, _)| result)
}

/// [`execute`] with an optional online detector attached to scenario
/// campaigns (`detector` is a validated [`AuditConfig`] preset name). The
/// returned result bytes are identical to [`execute`]'s — the audit never
/// perturbs the trajectory — plus the twin's [`AuditSummary`] for the
/// response envelope. Non-scenario payloads ignore `detector` and return no
/// summary (`parse_line` rejects the combination upstream).
///
/// # Errors
///
/// As [`execute`].
pub fn execute_audited(
    payload: &Payload,
    detector: Option<&str>,
) -> Result<(String, Option<AuditSummary>), ExecError> {
    let mut audit = None;
    let value = match payload {
        Payload::Exp(id) => {
            let tables = crate::run(id).map_err(|e| match e {
                crate::BenchError::Sim {
                    source: SimError::Cancelled,
                    ..
                } => ExecError::Cancelled,
                other => ExecError::Failed(other.to_string()),
            })?;
            let rendered = tables
                .iter()
                .map(|t| Value::Str(t.render()))
                .collect::<Vec<_>>();
            let csvs = tables
                .iter()
                .enumerate()
                .map(|(k, t)| {
                    Value::Seq(vec![
                        Value::Str(format!("{id}_{k}.csv")),
                        Value::Str(t.to_csv()),
                    ])
                })
                .collect::<Vec<_>>();
            Value::Map(vec![
                ("exp".to_string(), Value::Str(id.clone())),
                ("rendered".to_string(), Value::Seq(rendered)),
                ("csvs".to_string(), Value::Seq(csvs)),
            ])
        }
        Payload::Scenario(spec) => {
            if wrsn::sim::cancel::cancelled() {
                return Err(ExecError::Cancelled);
            }
            let (scenario, mut world) = scenario_world(spec, detector);
            let (report, outcome) =
                wrsn::core::attack::run_attack(&mut world, scenario.tide_config()).map_err(
                    |e| match e {
                        SimError::Cancelled => ExecError::Cancelled,
                        other => ExecError::Failed(other.to_string()),
                    },
                )?;
            if let Some(preset) = detector {
                audit = AuditSummary::from_world(&world, preset);
            }
            scenario_result_value(spec, &report, &outcome)
        }
        #[cfg(test)]
        Payload::Test(op) => match op {
            TestOp::Echo { tag, sleep_ms } => {
                std::thread::sleep(std::time::Duration::from_millis(*sleep_ms));
                Value::Map(vec![("echo".to_string(), Value::U64(*tag))])
            }
            TestOp::Panic => panic!("test payload panicked"),
            TestOp::Hang => loop {
                if wrsn::sim::cancel::cancelled() {
                    return Err(ExecError::Cancelled);
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            },
            TestOp::Stream { frames, .. } => {
                Value::Map(vec![("stream".to_string(), Value::U64(*frames))])
            }
        },
    };
    let result = serde_json::to_string(&value)
        .map_err(|e| ExecError::Failed(format!("serialize result: {e}")))?;
    Ok((result, audit))
}

/// The canonical scenario `result` value shared by the plain and streamed
/// execution paths — what makes a streamed final frame byte-identical to the
/// non-streamed cached result.
fn scenario_result_value(
    spec: &ScenarioSpec,
    report: &wrsn::sim::SimReport,
    outcome: &wrsn::core::attack::AttackOutcome,
) -> Value {
    let lifetime = match report.network_lifetime_s {
        Some(t) => Value::F64(t),
        None => Value::Null,
    };
    Value::Map(vec![
        ("scenario".to_string(), spec.to_value()),
        (
            "report".to_string(),
            Value::Map(vec![
                ("final_time_s".to_string(), Value::F64(report.final_time_s)),
                (
                    "dead_nodes".to_string(),
                    Value::U64(report.dead_nodes as u64),
                ),
                (
                    "alive_nodes".to_string(),
                    Value::U64(report.alive_nodes as u64),
                ),
                ("network_lifetime_s".to_string(), lifetime),
                (
                    "charger_energy_used_j".to_string(),
                    Value::F64(report.charger_energy_used_j),
                ),
                (
                    "total_delivered_j".to_string(),
                    Value::F64(report.total_delivered_j),
                ),
                ("sessions".to_string(), Value::U64(report.sessions as u64)),
            ]),
        ),
        (
            "attack".to_string(),
            Value::Map(vec![
                ("targeted".to_string(), Value::U64(outcome.targeted as u64)),
                (
                    "exhausted".to_string(),
                    Value::U64(outcome.exhausted as u64),
                ),
                ("utility".to_string(), Value::F64(outcome.utility)),
                (
                    "exhausted_ratio".to_string(),
                    Value::F64(outcome.exhausted_ratio),
                ),
                (
                    "key_node_exhausted_ratio".to_string(),
                    Value::F64(outcome.key_node_exhausted_ratio),
                ),
            ]),
        ),
    ])
}

/// A cursor over a live [`Trace`]: each [`StreamCursor::drain`] call converts
/// only the events and sessions recorded since the last call into
/// [`TraceRecord`]s (PR 2 JSONL schema, same event→record mapping as
/// [`wrsn::sim::obs::export_trace`]).
///
/// Sessions need one subtlety: the trace *merges* contiguous charge chunks
/// into its last session, so the most recent session is only final once a
/// newer one exists (or the run has ended). A non-final drain therefore holds
/// the last session back; the final drain flushes it.
#[derive(Debug, Default)]
struct StreamCursor {
    events: usize,
    sessions: usize,
}

impl StreamCursor {
    fn drain(&mut self, trace: &Trace, fin: bool) -> Vec<TraceRecord> {
        let mut batch = Vec::new();
        let events = trace.events();
        for (t_s, event) in &events[self.events.min(events.len())..] {
            if let wrsn::sim::SimEvent::Fault { fault } = event {
                // Mirror `export_trace`: faults get a dedicated record kind
                // ahead of the generic event.
                batch.push(TraceRecord::Fault {
                    t_s: *t_s,
                    fault: *fault,
                });
            }
            batch.push(TraceRecord::Event {
                t_s: *t_s,
                event: event.clone(),
            });
        }
        self.events = events.len();
        let sessions = trace.sessions();
        let upto = if fin {
            sessions.len()
        } else {
            sessions.len().saturating_sub(1)
        };
        for session in &sessions[self.sessions.min(upto)..upto] {
            batch.push(TraceRecord::Session { session: *session });
        }
        self.sessions = self.sessions.max(upto);
        batch
    }
}

/// Executes a payload like [`execute`], additionally delivering incremental
/// trace-record batches to `sink` on a simulated-time cadence
/// (`horizon_s / STREAM_DIVISIONS`, floored at 1 s). The final batch (sent
/// after the run completes, before this function returns) carries the
/// remaining records plus a closing [`TraceRecord::Snapshot`]. The returned
/// result bytes are identical to [`execute`]'s for the same payload.
///
/// `sink(sim_t_s, records)` returning `false` cancels the run cooperatively —
/// the disconnect path: the server-side sink returns `false` once the
/// client's reply channel is gone.
///
/// # Errors
///
/// As [`execute`]; a sink-declined run surfaces as [`ExecError::Cancelled`].
/// Non-scenario payloads (which have no incremental trace) fail with
/// [`ExecError::Failed`] — `parse_line` rejects `stream:true` for them
/// upstream.
pub fn execute_streamed(
    payload: &Payload,
    sink: &mut dyn FnMut(f64, Vec<TraceRecord>) -> bool,
) -> Result<String, ExecError> {
    execute_streamed_audited(payload, None, sink).map(|(result, _)| result)
}

/// [`execute_streamed`] with an optional online detector, exactly as
/// [`execute_audited`] extends [`execute`]. Conviction events additionally
/// surface in the streamed trace frames (as [`wrsn::sim::SimEvent`] records)
/// the moment the twin fires, ahead of the final summary.
///
/// # Errors
///
/// As [`execute_streamed`].
pub fn execute_streamed_audited(
    payload: &Payload,
    detector: Option<&str>,
    sink: &mut dyn FnMut(f64, Vec<TraceRecord>) -> bool,
) -> Result<(String, Option<AuditSummary>), ExecError> {
    let mut audit = None;
    let value = match payload {
        Payload::Scenario(spec) => {
            if wrsn::sim::cancel::cancelled() {
                return Err(ExecError::Cancelled);
            }
            let (scenario, mut world) = scenario_world(spec, detector);
            let cadence_s = (spec.horizon_s / STREAM_DIVISIONS).max(1.0);
            let mut cursor = StreamCursor::default();
            let (report, outcome) = wrsn::core::attack::run_attack_streamed(
                &mut world,
                scenario.tide_config(),
                cadence_s,
                &mut |t_s, trace| sink(t_s, cursor.drain(trace, false)),
            )
            .map_err(|e| match e {
                SimError::Cancelled => ExecError::Cancelled,
                other => ExecError::Failed(other.to_string()),
            })?;
            let mut tail = cursor.drain(world.trace(), true);
            tail.push(TraceRecord::Snapshot {
                t_s: report.final_time_s,
                health: report.final_health,
            });
            if !sink(report.final_time_s, tail) {
                return Err(ExecError::Cancelled);
            }
            if let Some(preset) = detector {
                audit = AuditSummary::from_world(&world, preset);
            }
            scenario_result_value(spec, &report, &outcome)
        }
        #[cfg(test)]
        Payload::Test(TestOp::Stream { frames, sleep_ms }) => {
            for k in 0..*frames {
                std::thread::sleep(std::time::Duration::from_millis(*sleep_ms));
                if wrsn::sim::cancel::cancelled() {
                    return Err(ExecError::Cancelled);
                }
                let batch = vec![TraceRecord::Event {
                    t_s: k as f64,
                    event: wrsn::sim::SimEvent::HorizonReached,
                }];
                if !sink(k as f64, batch) {
                    return Err(ExecError::Cancelled);
                }
            }
            Value::Map(vec![("stream".to_string(), Value::U64(*frames))])
        }
        other => {
            return Err(ExecError::Failed(format!(
                "streaming is only supported for scenario requests, not {:?}",
                other
            )))
        }
    };
    let result = serde_json::to_string(&value)
        .map_err(|e| ExecError::Failed(format!("serialize result: {e}")))?;
    Ok((result, audit))
}

fn quote(s: &str) -> String {
    serde_json::to_string(&Value::Str(s.to_string())).expect("strings always serialize")
}

/// An `ok` response line. `result_json` is embedded verbatim — it must be
/// the canonical result bytes ([`execute`]'s return value or a cache replay).
/// `audit`, when present, rides in the envelope next to `wall_ms`, outside
/// the digested bytes.
pub fn ok_line(
    id: &str,
    digest: &str,
    cache: &str,
    wall_ms: f64,
    result_json: &str,
    audit: Option<&AuditSummary>,
) -> String {
    let audit = match audit {
        Some(summary) => format!(
            "\"audit\":{},",
            serde_json::to_string(&summary.to_value()).expect("audit summaries are finite")
        ),
        None => String::new(),
    };
    format!(
        "{{\"v\":{RESPONSE_VERSION},\"id\":{},\"status\":\"ok\",\"digest\":\"{digest}\",\
         \"cache\":\"{cache}\",\"wall_ms\":{wall_ms:.3},{audit}\"result\":{result_json}}}",
        quote(id)
    )
}

/// An `error` response line.
pub fn error_line(id: &str, detail: &str) -> String {
    format!(
        "{{\"v\":{RESPONSE_VERSION},\"id\":{},\"status\":\"error\",\"error\":{}}}",
        quote(id),
        quote(detail)
    )
}

/// An `invalid` response line: the request violated a protocol bound (e.g.
/// the line-length cap) badly enough that the connection closes after it.
pub fn invalid_line(id: &str, detail: &str) -> String {
    format!(
        "{{\"v\":{RESPONSE_VERSION},\"id\":{},\"status\":\"invalid\",\"error\":{}}}",
        quote(id),
        quote(detail)
    )
}

/// An `overloaded` response line: the request was shed at admission because
/// the scheduler queue was full. `retry_after_ms` is the daemon's backoff
/// hint, scaled by how deep the congestion is.
pub fn overloaded_line(id: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"v\":{RESPONSE_VERSION},\"id\":{},\"status\":\"overloaded\",\
         \"retry_after_ms\":{retry_after_ms}}}",
        quote(id)
    )
}

/// A streamed `progress` frame: `seq` numbers the frames of one request
/// (from 0), `sim_t_s` is the simulated time of the flush, and `records`
/// carries the new trace records since the previous frame, each wrapped in
/// the PR 2 JSONL envelope (`{"v":<schema>,"record":...}`) so consumers feed
/// elements straight into [`wrsn::sim::obs::from_jsonl_line`].
pub fn progress_line(id: &str, seq: u64, sim_t_s: f64, records: &[TraceRecord]) -> String {
    let wrapped = records
        .iter()
        .map(|r| {
            Value::Map(vec![
                ("v".to_string(), Value::U64(SCHEMA_VERSION)),
                ("record".to_string(), r.to_value()),
            ])
        })
        .collect::<Vec<_>>();
    let frame = Value::Map(vec![
        ("v".to_string(), Value::U64(RESPONSE_VERSION)),
        ("id".to_string(), Value::Str(id.to_string())),
        ("status".to_string(), Value::Str("progress".to_string())),
        ("seq".to_string(), Value::U64(seq)),
        ("sim_t_s".to_string(), Value::F64(sim_t_s)),
        ("records".to_string(), Value::Seq(wrapped)),
    ]);
    serde_json::to_string(&frame).expect("trace records carry finite floats")
}

/// A `timeout` response line.
pub fn timeout_line(id: &str, deadline_s: f64) -> String {
    format!(
        "{{\"v\":{RESPONSE_VERSION},\"id\":{},\"status\":\"timeout\",\"error\":{}}}",
        quote(id),
        quote(&format!(
            "request exceeded its {deadline_s} s wall-clock deadline"
        ))
    )
}

/// An `ok` control response line with an arbitrary result value.
pub fn control_line(id: &str, result: &Value) -> String {
    format!(
        "{{\"v\":{RESPONSE_VERSION},\"id\":{},\"status\":\"ok\",\"result\":{}}}",
        quote(id),
        serde_json::to_string(result).expect("control results have no non-finite floats")
    )
}

/// A response line parsed by the load generator and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedResponse {
    /// Correlation id.
    pub id: String,
    /// `ok`, `error`, `timeout`, `invalid`, `overloaded`, or `progress`.
    pub status: String,
    /// Request digest (work responses only).
    pub digest: Option<String>,
    /// `hit`, `miss`, or `coalesced` (work responses only).
    pub cache: Option<String>,
    /// Failure detail (`error`/`timeout`/`invalid` responses).
    pub error: Option<String>,
    /// The result re-serialized to canonical bytes (ok responses only).
    /// Round-tripping through the vendored writer is lossless, so these
    /// bytes are comparable across responses.
    pub result_canonical: Option<String>,
    /// The detector's envelope summary, re-serialized to canonical bytes
    /// (fresh `ok` responses to detector-equipped requests only).
    pub audit_canonical: Option<String>,
    /// Backoff hint (`overloaded` responses only), milliseconds.
    pub retry_after_ms: Option<u64>,
    /// Frame number within a stream (`progress` frames only).
    pub seq: Option<u64>,
    /// Trace-record envelope elements re-serialized to canonical bytes
    /// (`progress` frames only) — each is one PR 2 JSONL line.
    pub records: Option<Vec<String>>,
}

impl ParsedResponse {
    /// Whether this line resolves its request (everything except a
    /// `progress` frame, which promises more lines for the same id).
    pub fn is_final(&self) -> bool {
        self.status != "progress"
    }
}

/// Parses a response line.
///
/// # Errors
///
/// A human-readable message for malformed lines or an unknown envelope
/// version.
pub fn parse_response(line: &str) -> Result<ParsedResponse, String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("malformed response JSON: {e}"))?;
    let map = value
        .as_map()
        .ok_or_else(|| format!("response must be a JSON object, got {}", value.kind()))?;
    let mut parsed = ParsedResponse {
        id: String::new(),
        status: String::new(),
        digest: None,
        cache: None,
        error: None,
        result_canonical: None,
        audit_canonical: None,
        retry_after_ms: None,
        seq: None,
        records: None,
    };
    for (key, val) in map {
        match key.as_str() {
            "v" => {
                let v = field_u64(val, "v")?;
                if v != RESPONSE_VERSION {
                    return Err(format!(
                        "unsupported response version {v} (this client speaks {RESPONSE_VERSION})"
                    ));
                }
            }
            "id" => parsed.id = field_str(val, "id")?,
            "status" => parsed.status = field_str(val, "status")?,
            "digest" => parsed.digest = Some(field_str(val, "digest")?),
            "cache" => parsed.cache = Some(field_str(val, "cache")?),
            "error" => parsed.error = Some(field_str(val, "error")?),
            "wall_ms" | "sim_t_s" => {}
            "retry_after_ms" => parsed.retry_after_ms = Some(field_u64(val, "retry_after_ms")?),
            "seq" => parsed.seq = Some(field_u64(val, "seq")?),
            "records" => {
                let Value::Seq(items) = val else {
                    return Err(format!("`records` must be an array, got {}", val.kind()));
                };
                let mut lines = Vec::with_capacity(items.len());
                for item in items {
                    lines.push(
                        serde_json::to_string(item)
                            .map_err(|e| format!("re-serialize record: {e}"))?,
                    );
                }
                parsed.records = Some(lines);
            }
            "result" => {
                parsed.result_canonical = Some(
                    serde_json::to_string(val).map_err(|e| format!("re-serialize result: {e}"))?,
                )
            }
            "audit" => {
                parsed.audit_canonical = Some(
                    serde_json::to_string(val).map_err(|e| format!("re-serialize audit: {e}"))?,
                )
            }
            other => return Err(format!("unknown response field `{other}`")),
        }
    }
    if parsed.status.is_empty() {
        return Err("response has no `status`".to_string());
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_requests_share_a_digest() {
        let a = parse_line(r#"{"id":"a","scenario":{"nodes":40,"seed":7}}"#, 0).unwrap();
        let b = parse_line(
            r#"{"scenario":{"seed":7,"horizon_s":50000,"deployment":"uniform","nodes":40},"deadline_s":5}"#,
            1,
        )
        .unwrap();
        let (RequestKind::Work(pa), RequestKind::Work(pb)) = (&a.kind, &b.kind) else {
            panic!("both are work requests");
        };
        assert_eq!(pa.digest(), pb.digest());
        assert_eq!(b.id, "r1", "anonymous requests are named by sequence");
        assert_eq!(b.deadline_s, Some(5.0));
    }

    #[test]
    fn different_scenarios_get_different_digests() {
        let spec = |seed| {
            Payload::Scenario(ScenarioSpec {
                nodes: 40,
                seed,
                horizon_s: DEFAULT_HORIZON_S,
                deployment: DeploymentKind::Uniform,
            })
        };
        assert_ne!(spec(1).digest(), spec(2).digest());
        assert_ne!(
            Payload::Exp("fig2".to_string()).digest(),
            Payload::Exp("fig3".to_string()).digest()
        );
    }

    #[test]
    fn validation_rejects_bad_requests() {
        for (line, needle) in [
            ("not json", "malformed"),
            ("[1,2]", "JSON object"),
            (r#"{"scenario":{"nodes":1}}"#, "nodes"),
            (r#"{"scenario":{"nodes":40,"horizon_s":-5}}"#, "horizon_s"),
            (
                r#"{"scenario":{"nodes":40,"wat":1}}"#,
                "unknown scenario field",
            ),
            (r#"{"exp":"fig99"}"#, "unknown experiment id"),
            (r#"{"op":"reboot"}"#, "unknown op"),
            (r#"{"exp":"fig2","op":"ping"}"#, "mutually exclusive"),
            (r#"{"id":"x"}"#, "exactly one of"),
            (r#"{"exp":"fig2","deadline_s":0}"#, "deadline_s"),
            (r#"{"exp":"fig2","nope":1}"#, "unknown request field"),
        ] {
            let err = parse_line(line, 0).unwrap_err();
            assert!(err.contains(needle), "line {line}: error `{err}`");
        }
    }

    #[test]
    fn control_ops_parse() {
        for (line, op) in [
            (r#"{"op":"ping"}"#, ControlOp::Ping),
            (r#"{"op":"stats"}"#, ControlOp::Stats),
            (r#"{"op":"shutdown"}"#, ControlOp::Shutdown),
        ] {
            let req = parse_line(line, 3).unwrap();
            assert_eq!(req.kind, RequestKind::Control(op));
        }
    }

    #[test]
    fn scenario_execution_is_deterministic() {
        let payload = Payload::Scenario(ScenarioSpec {
            nodes: 24,
            seed: 7,
            horizon_s: 20_000.0,
            deployment: DeploymentKind::Uniform,
        });
        let a = execute(&payload).expect("runs");
        let b = execute(&payload).expect("runs");
        assert_eq!(a, b, "same spec, same bytes");
        assert!(a.contains("\"report\""));
        assert!(a.contains("\"attack\""));
    }

    #[test]
    fn exp_execution_matches_the_single_shot_runner() {
        let result = execute(&Payload::Exp("fig2".to_string())).expect("fig2 runs");
        let tables = crate::run("fig2").expect("fig2 runs");
        // The daemon's result embeds exactly the single-shot renderings.
        let quoted = serde_json::to_string(&Value::Str(tables[0].render())).unwrap();
        assert!(
            result.contains(&quoted),
            "daemon result must embed the single-shot rendering"
        );
    }

    #[test]
    fn response_lines_round_trip() {
        let ok = ok_line("q\"1", "00deadbeef00cafe", "miss", 1.5, r#"{"x":1}"#, None);
        let parsed = parse_response(&ok).expect("parses");
        assert_eq!(parsed.id, "q\"1");
        assert_eq!(parsed.status, "ok");
        assert_eq!(parsed.digest.as_deref(), Some("00deadbeef00cafe"));
        assert_eq!(parsed.cache.as_deref(), Some("miss"));
        assert_eq!(parsed.result_canonical.as_deref(), Some(r#"{"x":1}"#));

        let err = error_line("q2", "boom\nline two");
        let parsed = parse_response(&err).expect("parses");
        assert_eq!(parsed.status, "error");
        assert_eq!(parsed.error.as_deref(), Some("boom\nline two"));

        let to = timeout_line("q3", 2.5);
        let parsed = parse_response(&to).expect("parses");
        assert_eq!(parsed.status, "timeout");
        assert!(parsed.error.unwrap().contains("2.5 s"));
    }

    #[test]
    fn overloaded_and_invalid_lines_round_trip() {
        let shed = overloaded_line("q7", 125);
        let parsed = parse_response(&shed).expect("parses");
        assert_eq!(parsed.status, "overloaded");
        assert_eq!(parsed.retry_after_ms, Some(125));
        assert!(parsed.is_final());

        let bad = invalid_line("q8", "request line exceeds 262144 bytes");
        let parsed = parse_response(&bad).expect("parses");
        assert_eq!(parsed.status, "invalid");
        assert!(parsed.error.unwrap().contains("exceeds"));
    }

    #[test]
    fn stream_flag_is_envelope_only_and_scenario_only() {
        let plain = parse_line(r#"{"id":"a","scenario":{"nodes":40,"seed":7}}"#, 0).unwrap();
        let streamed = parse_line(
            r#"{"id":"b","scenario":{"nodes":40,"seed":7},"stream":true}"#,
            1,
        )
        .unwrap();
        assert!(!plain.stream);
        assert!(streamed.stream);
        let (RequestKind::Work(pa), RequestKind::Work(pb)) = (&plain.kind, &streamed.kind) else {
            panic!("both are work requests");
        };
        assert_eq!(pa.digest(), pb.digest(), "stream never enters the digest");
        let err = parse_line(r#"{"exp":"fig2","stream":true}"#, 2).unwrap_err();
        assert!(err.contains("only supported for scenario"));
    }

    #[test]
    fn detector_is_envelope_only_and_scenario_only() {
        let plain = parse_line(r#"{"id":"a","scenario":{"nodes":40,"seed":7}}"#, 0).unwrap();
        let audited = parse_line(
            r#"{"id":"b","scenario":{"nodes":40,"seed":7},"detector":"aggressive"}"#,
            1,
        )
        .unwrap();
        assert_eq!(plain.detector, None);
        assert_eq!(audited.detector.as_deref(), Some("aggressive"));
        let (RequestKind::Work(pa), RequestKind::Work(pb)) = (&plain.kind, &audited.kind) else {
            panic!("both are work requests");
        };
        assert_eq!(pa.digest(), pb.digest(), "detector never enters the digest");
        let err = parse_line(r#"{"exp":"fig2","detector":"default"}"#, 2).unwrap_err();
        assert!(err.contains("only supported for scenario"));
        let err = parse_line(r#"{"scenario":{"nodes":40},"detector":"psychic"}"#, 3).unwrap_err();
        assert!(err.contains("unknown detector preset"));
    }

    #[test]
    fn detector_leaves_result_bytes_identical_and_summarizes_the_audit() {
        // Long enough for the CSA campaign to produce charging sessions the
        // twin can probe (the 20k-horizon spec above finishes before any
        // node even requests a charge).
        let payload = Payload::Scenario(ScenarioSpec {
            nodes: 24,
            seed: 7,
            horizon_s: 400_000.0,
            deployment: DeploymentKind::Uniform,
        });
        let plain = execute(&payload).expect("runs");
        let (audited, summary) =
            execute_audited(&payload, Some("aggressive")).expect("runs with audit");
        assert_eq!(plain, audited, "the audit is purely observational");
        let summary = summary.expect("scenario with detector yields a summary");
        assert_eq!(summary.preset, "aggressive");
        assert!(summary.probes > 0, "aggressive preset probes every session");
        assert!(summary.spent_j > 0.0);
        // The summary rides in the envelope and survives the response parse.
        let line = ok_line(
            "q1",
            "00deadbeef00cafe",
            "miss",
            1.5,
            &audited,
            Some(&summary),
        );
        let parsed = parse_response(&line).expect("parses");
        let envelope = parsed.audit_canonical.expect("audit field present");
        assert!(envelope.contains("\"preset\":\"aggressive\""));
        assert_eq!(
            parsed.result_canonical.as_deref(),
            parse_response(&ok_line(
                "q1",
                "00deadbeef00cafe",
                "miss",
                1.5,
                &plain,
                None
            ))
            .expect("parses")
            .result_canonical
            .as_deref(),
            "detector and plain responses share one result"
        );
        // Without a detector there is no summary.
        let (_, none) = execute_audited(&payload, None).expect("runs");
        assert!(none.is_none());
    }

    #[test]
    fn streamed_scenario_yields_valid_frames_and_identical_final_bytes() {
        let payload = Payload::Scenario(ScenarioSpec {
            nodes: 24,
            seed: 7,
            horizon_s: 20_000.0,
            deployment: DeploymentKind::Uniform,
        });
        let plain = execute(&payload).expect("plain run");
        let mut frames: Vec<(f64, Vec<TraceRecord>)> = Vec::new();
        let streamed = execute_streamed(&payload, &mut |t_s, records| {
            frames.push((t_s, records));
            true
        })
        .expect("streamed run");
        assert_eq!(plain, streamed, "streamed result is byte-identical");
        assert!(frames.len() > 1, "a 20ks horizon flushes multiple times");
        assert!(
            frames.windows(2).all(|w| w[0].0 <= w[1].0),
            "flushes arrive in simulated-time order"
        );
        // The final batch closes with the final-health snapshot.
        let last = frames.last().and_then(|(_, r)| r.last()).unwrap();
        assert!(matches!(last, TraceRecord::Snapshot { .. }));
        // A frame built from a real batch parses, and every record element
        // is a valid PR 2 JSONL trace line.
        let batch = frames
            .iter()
            .map(|(_, r)| r)
            .find(|r| !r.is_empty())
            .expect("some batch has records");
        let line = progress_line("q1", 0, 1.0, batch);
        let parsed = parse_response(&line).expect("frame parses");
        assert_eq!(parsed.status, "progress");
        assert_eq!(parsed.seq, Some(0));
        assert!(!parsed.is_final());
        for record in parsed.records.expect("frame carries records") {
            wrsn::sim::obs::from_jsonl_line(&record).expect("record is a valid trace line");
        }
    }

    #[test]
    fn a_declining_sink_cancels_a_streamed_run() {
        let payload = Payload::Scenario(ScenarioSpec {
            nodes: 24,
            seed: 7,
            horizon_s: 20_000.0,
            deployment: DeploymentKind::Uniform,
        });
        let mut calls = 0usize;
        let result = execute_streamed(&payload, &mut |_, _| {
            calls += 1;
            false
        });
        assert_eq!(result, Err(ExecError::Cancelled));
        assert_eq!(calls, 1, "the run stops at the first declined flush");
    }

    #[test]
    fn cancelled_token_short_circuits_scenario_execution() {
        use wrsn::sim::cancel::{CancelToken, ScopedCancel};
        let token = CancelToken::new();
        token.cancel();
        let _guard = ScopedCancel::install(token);
        let payload = Payload::Scenario(ScenarioSpec {
            nodes: 24,
            seed: 1,
            horizon_s: 20_000.0,
            deployment: DeploymentKind::Uniform,
        });
        assert_eq!(execute(&payload), Err(ExecError::Cancelled));
    }
}
