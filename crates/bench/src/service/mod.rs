//! `wrsnd` — the long-running campaign service.
//!
//! The single-shot `exp` binary pays process startup, thread-pool spin-up
//! and cache-cold simulation state for every invocation; sweeping a
//! parameter grid that way is thousands of process launches. `wrsnd` keeps
//! one process resident and serves *scenario requests* over newline-
//! delimited JSON (TCP or stdin), with:
//!
//! - a bounded worker pool with per-request wall-clock **deadlines**,
//!   enforced through the engine's cooperative cancellation
//!   ([`wrsn::sim::cancel`]) by a watchdog thread;
//! - **dedupe by content digest**: requests are canonicalised and FNV-hashed;
//!   a digest seen before is replayed byte-identically from the
//!   content-addressed artifact store, and concurrent duplicates coalesce
//!   behind a single computation (single-flight);
//! - **crash safety**: every artifact is written via same-directory
//!   temp-file + fsync + rename and validated (magic, length, checksum)
//!   before it is ever served, so a SIGKILL mid-write costs at most a
//!   recompute, never a wrong answer.
//!
//! The service is hardened against overload and hostile clients: bounded
//! admission with typed `overloaded` shedding, a size-bounded cache with
//! deterministic LRU eviction, capped request lines, idle-connection
//! reaping, and opt-in streamed responses with cooperative cancellation on
//! client disconnect (DESIGN.md, "Overload, streaming & shedding").
//!
//! Module map: [`request`] (wire schema + payload execution), [`cache`]
//! (the artifact store), [`scheduler`] (worker pool), [`server`] (TCP/stdin
//! frontends), [`loadgen`] (the benchmark driver behind `BENCH_pr9.json`),
//! [`chaos`] (the fault-injecting proxy the hardening is tested through).

pub mod cache;
pub mod chaos;
pub mod loadgen;
pub mod request;
pub mod scheduler;
pub mod server;

/// Short git revision of the working tree, for provenance stamps in bench
/// reports; `unknown` outside a git checkout or without git on the path.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
