//! The daemon's worker pool: bounded threads, per-request deadlines with
//! cooperative cancellation, and single-flight dedupe over the result cache.
//!
//! Lifecycle of a submitted request:
//!
//! 1. It joins a FIFO queue (its deadline clock starts at submission).
//! 2. A pooled worker pops it. Past its deadline already → `timeout`
//!    response without executing.
//! 3. Cache lookup by payload digest. Validated hit → replay the stored
//!    bytes (`"cache":"hit"`). A corrupt entry is counted, discarded and
//!    recomputed.
//! 4. Single-flight: if another worker is already computing this digest, the
//!    request parks as a *follower* and is answered from the leader's bytes
//!    (`"cache":"coalesced"`) — identical work is never computed twice
//!    concurrently.
//! 5. Otherwise this request leads: the worker installs a fresh
//!    [`CancelToken`] (via [`ScopedCancel`], so the engine's segment-boundary
//!    polls see it), registers a watchdog slot, and runs the payload under
//!    [`std::panic::catch_unwind`].
//!
//! A monitor thread sweeps the slots every few milliseconds and cancels the
//! token of any run past its deadline; the engine unwinds with
//! `SimError::Cancelled` at the next poll and the worker reports `timeout`.
//! A panicked payload poisons nothing: the guard's id-keyed drop removes
//! exactly its token (see `wrsn::sim::cancel`), the worker thread survives
//! and takes the next job — pinned by the panic-then-reuse tests below.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use serde::Value;
use wrsn::sim::cancel::{CancelToken, ScopedCancel};

use super::cache::{CacheLookup, ResultCache};
use super::request::{self, ExecError, Payload};

/// How often the watchdog sweeps the in-flight slots.
const WATCHDOG_PERIOD: Duration = Duration::from_millis(3);

/// Monotonic service counters, exposed by the `stats` control op.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    received: AtomicU64,
    ok: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    cache_rejected: AtomicU64,
}

impl ServiceCounters {
    fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests that completed with an `ok` response (any cache path).
    pub fn ok(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Requests answered from a validated cache entry.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Requests that were computed fresh.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Requests answered from a concurrent leader's computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Requests that blew their deadline (queued or running).
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Requests that failed (engine error or payload panic).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Cache entries discarded as corrupt (and recomputed).
    pub fn cache_rejected(&self) -> u64 {
        self.cache_rejected.load(Ordering::Relaxed)
    }

    /// A JSON snapshot for the `stats` control op. Alongside the request
    /// tallies it reports the effective execution strategy — worker threads
    /// and spatial shards — every payload's world runs with, so a campaign
    /// driver can record *how* its numbers were produced without parsing the
    /// daemon's environment.
    pub fn to_value(&self) -> Value {
        let u = |c: &AtomicU64| Value::U64(c.load(Ordering::Relaxed));
        Value::Map(vec![
            (
                "threads".to_string(),
                Value::U64(wrsn::sim::parallel::threads() as u64),
            ),
            (
                "shards".to_string(),
                Value::U64(wrsn::sim::parallel::shards() as u64),
            ),
            ("received".to_string(), u(&self.received)),
            ("ok".to_string(), u(&self.ok)),
            ("cache_hits".to_string(), u(&self.cache_hits)),
            ("cache_misses".to_string(), u(&self.cache_misses)),
            ("coalesced".to_string(), u(&self.coalesced)),
            ("timeouts".to_string(), u(&self.timeouts)),
            ("errors".to_string(), u(&self.errors)),
            ("cache_rejected".to_string(), u(&self.cache_rejected)),
        ])
    }
}

/// A queued unit of work.
struct Job {
    id: String,
    payload: Payload,
    digest: String,
    deadline: Duration,
    enqueued: Instant,
    reply: Sender<String>,
}

impl Job {
    /// Time this job has left before its deadline, if any.
    fn remaining(&self) -> Option<Duration> {
        self.deadline.checked_sub(self.enqueued.elapsed())
    }
}

/// One worker's watchdog slot: what it is running and for how long it may.
struct WatchSlot {
    started: Instant,
    budget: Duration,
    token: CancelToken,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Inner {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: ResultCache,
    /// digest → followers parked behind the leader computing that digest.
    inflight: Mutex<HashMap<String, Vec<Job>>>,
    slots: Vec<Mutex<Option<WatchSlot>>>,
    counters: ServiceCounters,
    default_deadline: Duration,
    stopping: AtomicBool,
}

/// The worker pool. Dropping without [`Scheduler::shutdown`] aborts the
/// queue without draining it; prefer an explicit shutdown.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
    watchdog: Option<thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `workers` pooled threads plus the deadline watchdog.
    pub fn new(cache: ResultCache, workers: usize, default_deadline: Duration) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cache,
            inflight: Mutex::new(HashMap::new()),
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            counters: ServiceCounters::default(),
            default_deadline,
            stopping: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("wrsnd-worker-{slot}"))
                    .spawn(move || worker_loop(&inner, slot))
                    .expect("spawn worker thread")
            })
            .collect();
        let watchdog = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("wrsnd-watchdog".to_string())
                .spawn(move || watchdog_loop(&inner))
                .expect("spawn watchdog thread")
        };
        Scheduler {
            inner,
            workers: handles,
            watchdog: Some(watchdog),
        }
    }

    /// Enqueues a work request. The deadline clock starts now; `None` uses
    /// the pool default. The response line (ok/timeout/error) is delivered
    /// on `reply` when the request resolves.
    pub fn submit(
        &self,
        id: String,
        payload: Payload,
        deadline: Option<Duration>,
        reply: Sender<String>,
    ) {
        ServiceCounters::inc(&self.inner.counters.received);
        let job = Job {
            id,
            digest: payload.digest(),
            payload,
            deadline: deadline.unwrap_or(self.inner.default_deadline),
            enqueued: Instant::now(),
            reply,
        };
        let mut queue = self.inner.queue.lock().expect("queue lock");
        if queue.closed {
            let line = request::error_line(&job.id, "service is shutting down");
            let _ = job.reply.send(line);
            return;
        }
        queue.jobs.push_back(job);
        drop(queue);
        self.inner.available.notify_one();
    }

    /// The live counters (shared with the `stats` control op).
    pub fn counters(&self) -> &ServiceCounters {
        &self.inner.counters
    }

    /// Closes the queue, drains every already-submitted job, and joins the
    /// pool. Submissions after this point are answered with an error.
    pub fn shutdown(mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.closed = true;
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.inner.stopping.store(true, Ordering::Release);
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

/// Blocks for the next job; `None` once the queue is closed and drained.
fn next_job(inner: &Inner) -> Option<Job> {
    let mut queue = inner.queue.lock().expect("queue lock");
    loop {
        if let Some(job) = queue.jobs.pop_front() {
            return Some(job);
        }
        if queue.closed {
            return None;
        }
        queue = inner.available.wait(queue).expect("queue wait");
    }
}

fn watchdog_loop(inner: &Inner) {
    while !inner.stopping.load(Ordering::Acquire) {
        for slot in &inner.slots {
            let slot = slot.lock().expect("slot lock");
            if let Some(watch) = slot.as_ref() {
                if watch.started.elapsed() > watch.budget {
                    watch.token.cancel();
                }
            }
        }
        thread::sleep(WATCHDOG_PERIOD);
    }
}

/// Answers `job` and the followers that coalesced behind it from one
/// computed outcome.
enum Outcome {
    Ok(String),
    Timeout,
    Error(String),
}

fn worker_loop(inner: &Inner, slot: usize) {
    while let Some(job) = next_job(inner) {
        // Deadline may already have passed while queued.
        let Some(budget) = job.remaining() else {
            ServiceCounters::inc(&inner.counters.timeouts);
            let _ = job
                .reply
                .send(request::timeout_line(&job.id, job.deadline.as_secs_f64()));
            continue;
        };
        // Cache first: a validated entry answers without touching the pool's
        // compute budget at all.
        match inner.cache.lookup(&job.digest) {
            CacheLookup::Hit(result) => {
                ServiceCounters::inc(&inner.counters.cache_hits);
                ServiceCounters::inc(&inner.counters.ok);
                let line = request::ok_line(
                    &job.id,
                    &job.digest,
                    "hit",
                    job.enqueued.elapsed().as_secs_f64() * 1e3,
                    &result,
                );
                let _ = job.reply.send(line);
                continue;
            }
            CacheLookup::Rejected(_) => {
                ServiceCounters::inc(&inner.counters.cache_rejected);
            }
            CacheLookup::Miss => {}
        }
        // Single-flight: park behind an in-progress computation of the same
        // digest instead of duplicating it.
        {
            let mut inflight = inner.inflight.lock().expect("inflight lock");
            if let Some(followers) = inflight.get_mut(&job.digest) {
                followers.push(job);
                continue;
            }
            inflight.insert(job.digest.clone(), Vec::new());
        }
        // This job leads. Arm the watchdog slot and run under a fresh token.
        let token = CancelToken::new();
        *inner.slots[slot].lock().expect("slot lock") = Some(WatchSlot {
            started: Instant::now(),
            budget,
            token: token.clone(),
        });
        let run = {
            let guard = ScopedCancel::install(token.clone());
            let run = catch_unwind(AssertUnwindSafe(|| request::execute(&job.payload)));
            drop(guard);
            run
        };
        *inner.slots[slot].lock().expect("slot lock") = None;
        let outcome = match run {
            Ok(Ok(result)) => Outcome::Ok(result),
            Ok(Err(ExecError::Cancelled)) => Outcome::Timeout,
            Ok(Err(ExecError::Failed(detail))) => Outcome::Error(detail),
            // A panic out of a cancelled run is the engine unwinding past a
            // poll point under load — a timeout, not a bug in the payload.
            Err(_) if token.is_cancelled() => Outcome::Timeout,
            Err(payload) => Outcome::Error(format!(
                "worker panicked: {}",
                panic_message(payload.as_ref())
            )),
        };
        // Persist before taking the followers, so a request that misses the
        // follower window finds the cache entry instead of recomputing.
        if let Outcome::Ok(result) = &outcome {
            if let Err(e) = inner.cache.save(&job.digest, result) {
                eprintln!("wrsnd: cache save failed for {}: {e}", job.digest);
            }
        }
        let followers = inner
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&job.digest)
            .unwrap_or_default();
        match outcome {
            Outcome::Ok(result) => {
                ServiceCounters::inc(&inner.counters.cache_misses);
                ServiceCounters::inc(&inner.counters.ok);
                let wall_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
                let _ = job.reply.send(request::ok_line(
                    &job.id,
                    &job.digest,
                    "miss",
                    wall_ms,
                    &result,
                ));
                for follower in followers {
                    ServiceCounters::inc(&inner.counters.coalesced);
                    ServiceCounters::inc(&inner.counters.ok);
                    let wall_ms = follower.enqueued.elapsed().as_secs_f64() * 1e3;
                    let line = request::ok_line(
                        &follower.id,
                        &follower.digest,
                        "coalesced",
                        wall_ms,
                        &result,
                    );
                    let _ = follower.reply.send(line);
                }
            }
            Outcome::Timeout => {
                ServiceCounters::inc(&inner.counters.timeouts);
                let _ = job
                    .reply
                    .send(request::timeout_line(&job.id, job.deadline.as_secs_f64()));
                // The leader's deadline is not the followers': give each a
                // fresh chance under its own clock.
                requeue(inner, followers);
            }
            Outcome::Error(detail) => {
                ServiceCounters::inc(&inner.counters.errors);
                let _ = job.reply.send(request::error_line(&job.id, &detail));
                for follower in followers {
                    ServiceCounters::inc(&inner.counters.errors);
                    let _ = follower
                        .reply
                        .send(request::error_line(&follower.id, &detail));
                }
            }
        }
    }
}

fn requeue(inner: &Inner, followers: Vec<Job>) {
    if followers.is_empty() {
        return;
    }
    let mut queue = inner.queue.lock().expect("queue lock");
    if queue.closed {
        for job in followers {
            ServiceCounters::inc(&inner.counters.errors);
            let _ = job
                .reply
                .send(request::error_line(&job.id, "service is shutting down"));
        }
        return;
    }
    let n = followers.len();
    for job in followers {
        queue.jobs.push_back(job);
    }
    drop(queue);
    for _ in 0..n {
        inner.available.notify_one();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::request::{parse_response, TestOp};
    use std::sync::mpsc;

    fn temp_cache(tag: &str) -> (ResultCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "wrsn-sched-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).unwrap(), dir)
    }

    fn echo(tag: u64, sleep_ms: u64) -> Payload {
        Payload::Test(TestOp::Echo { tag, sleep_ms })
    }

    #[test]
    fn work_round_trips_and_repeats_hit_the_cache() {
        let (cache, dir) = temp_cache("roundtrip");
        let scheduler = Scheduler::new(cache, 2, Duration::from_secs(10));
        let (tx, rx) = mpsc::channel();
        scheduler.submit("a".to_string(), echo(1, 0), None, tx.clone());
        let first = parse_response(&rx.recv().unwrap()).unwrap();
        assert_eq!(first.status, "ok");
        assert_eq!(first.cache.as_deref(), Some("miss"));
        scheduler.submit("b".to_string(), echo(1, 0), None, tx);
        let second = parse_response(&rx.recv().unwrap()).unwrap();
        assert_eq!(second.cache.as_deref(), Some("hit"));
        assert_eq!(
            first.result_canonical, second.result_canonical,
            "hit replays the miss byte-identically"
        );
        assert_eq!(scheduler.counters().cache_hits(), 1);
        assert_eq!(scheduler.counters().cache_misses(), 1);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_duplicates_coalesce_into_one_computation() {
        let (cache, dir) = temp_cache("coalesce");
        let scheduler = Scheduler::new(cache, 4, Duration::from_secs(10));
        let (tx, rx) = mpsc::channel();
        for k in 0..6 {
            scheduler.submit(format!("q{k}"), echo(7, 150), None, tx.clone());
        }
        drop(tx);
        let mut results = Vec::new();
        while let Ok(line) = rx.recv() {
            results.push(parse_response(&line).unwrap());
        }
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.status == "ok"));
        let bytes: Vec<_> = results.iter().map(|r| r.result_canonical.clone()).collect();
        assert!(
            bytes.windows(2).all(|w| w[0] == w[1]),
            "every duplicate gets identical bytes"
        );
        // Exactly one real computation; the rest coalesced or (if they
        // arrived after the leader finished) hit the cache.
        assert_eq!(scheduler.counters().cache_misses(), 1);
        assert_eq!(
            scheduler.counters().coalesced() + scheduler.counters().cache_hits(),
            5
        );
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_hung_payload_times_out_at_its_deadline() {
        let (cache, dir) = temp_cache("deadline");
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10));
        let (tx, rx) = mpsc::channel();
        let started = Instant::now();
        scheduler.submit(
            "hang".to_string(),
            Payload::Test(TestOp::Hang),
            Some(Duration::from_millis(80)),
            tx,
        );
        let response = parse_response(&rx.recv().unwrap()).unwrap();
        assert_eq!(response.status, "timeout");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "watchdog fired, not a test timeout"
        );
        assert_eq!(scheduler.counters().timeouts(), 1);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_request_queued_past_its_deadline_never_executes() {
        let (cache, dir) = temp_cache("queued");
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10));
        let (tx, rx) = mpsc::channel();
        // Occupy the only worker…
        scheduler.submit("slow".to_string(), echo(9, 250), None, tx.clone());
        // …so this 1 ms deadline is long gone by the time it is popped.
        scheduler.submit(
            "late".to_string(),
            echo(10, 0),
            Some(Duration::from_millis(1)),
            tx,
        );
        let mut by_id = HashMap::new();
        for _ in 0..2 {
            let r = parse_response(&rx.recv().unwrap()).unwrap();
            by_id.insert(r.id.clone(), r);
        }
        assert_eq!(by_id["slow"].status, "ok");
        assert_eq!(by_id["late"].status, "timeout");
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_payload_reports_an_error_and_the_worker_thread_survives() {
        let (cache, dir) = temp_cache("panic");
        // One worker: the follow-up request runs on the *same* pooled
        // thread the panic unwound through.
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10));
        let (tx, rx) = mpsc::channel();
        scheduler.submit(
            "boom".to_string(),
            Payload::Test(TestOp::Panic),
            None,
            tx.clone(),
        );
        let boom = parse_response(&rx.recv().unwrap()).unwrap();
        assert_eq!(boom.status, "error");
        assert!(boom.error.unwrap().contains("panicked"));
        // The reused thread must carry no stale cancel token: a fresh
        // request completes normally instead of being instantly "cancelled".
        scheduler.submit("after".to_string(), echo(11, 0), None, tx);
        let after = parse_response(&rx.recv().unwrap()).unwrap();
        assert_eq!(after.status, "ok", "reused worker thread is clean");
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn followers_of_a_timed_out_leader_are_requeued_not_dropped() {
        let (cache, dir) = temp_cache("requeue");
        let scheduler = Scheduler::new(cache, 2, Duration::from_secs(10));
        let (tx, rx) = mpsc::channel();
        // Leader hangs with a short deadline; follower (same digest) has a
        // generous one. After the leader times out the follower re-runs the
        // payload itself — Hang always hangs, so it times out on its *own*
        // deadline rather than being silently dropped.
        scheduler.submit(
            "leader".to_string(),
            Payload::Test(TestOp::Hang),
            Some(Duration::from_millis(60)),
            tx.clone(),
        );
        thread::sleep(Duration::from_millis(10));
        scheduler.submit(
            "follower".to_string(),
            Payload::Test(TestOp::Hang),
            Some(Duration::from_millis(300)),
            tx,
        );
        let mut statuses = HashMap::new();
        for _ in 0..2 {
            let r = parse_response(&rx.recv().unwrap()).unwrap();
            statuses.insert(r.id.clone(), r.status);
        }
        assert_eq!(statuses["leader"], "timeout");
        assert_eq!(statuses["follower"], "timeout");
        assert_eq!(scheduler.counters().timeouts(), 2);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
