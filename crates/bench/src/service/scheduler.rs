//! The daemon's worker pool: bounded threads, per-request deadlines with
//! cooperative cancellation, and single-flight dedupe over the result cache.
//!
//! Lifecycle of a submitted request:
//!
//! 1. It joins a FIFO queue (its deadline clock starts at submission).
//! 2. A pooled worker pops it. Past its deadline already → `timeout`
//!    response without executing.
//! 3. Cache lookup by payload digest. Validated hit → replay the stored
//!    bytes (`"cache":"hit"`). A corrupt entry is counted, discarded and
//!    recomputed.
//! 4. Single-flight: if another worker is already computing this digest, the
//!    request parks as a *follower* and is answered from the leader's bytes
//!    (`"cache":"coalesced"`) — identical work is never computed twice
//!    concurrently.
//! 5. Otherwise this request leads: the worker installs a fresh
//!    [`CancelToken`] (via [`ScopedCancel`], so the engine's segment-boundary
//!    polls see it), registers a watchdog slot, and runs the payload under
//!    [`std::panic::catch_unwind`].
//!
//! A monitor thread sweeps the slots every few milliseconds and cancels the
//! token of any run past its deadline; the engine unwinds with
//! `SimError::Cancelled` at the next poll and the worker reports `timeout`.
//! A panicked payload poisons nothing: the guard's id-keyed drop removes
//! exactly its token (see `wrsn::sim::cancel`), the worker thread survives
//! and takes the next job — pinned by the panic-then-reuse tests below.
//!
//! **Admission is bounded**: the queue holds at most `queue_cap` jobs.
//! Step 1 above can therefore fail — a submission against a full queue is
//! *shed* immediately with a typed `overloaded` response carrying a
//! `retry_after_ms` hint scaled by queue depth, instead of growing the queue
//! without bound. Only fresh submissions are shed; followers requeued after
//! a leader timeout were already admitted and bypass the cap.
//!
//! **Streaming**: a job submitted with `stream = true` has its leader send
//! incremental `progress` frames through the same reply channel before the
//! final response. The reply channel doubles as the disconnect signal — when
//! the client's connection writer goes away the channel closes, the next
//! frame send fails, and the sink cancels the job's own [`CancelToken`], so
//! the engine unwinds at its next segment poll. A disconnected stream sends
//! nothing further, saves nothing, and requeues its followers (their clients
//! may still be alive). Followers and cache hits never stream: they are
//! answered from the leader's (or cached) final bytes only.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use serde::Value;
use wrsn::sim::cancel::{CancelToken, ScopedCancel};
use wrsn::sim::obs::{Counter, TraceRecord};

use super::cache::{CacheLookup, ResultCache};
use super::request::{self, AuditSummary, ExecError, Payload};

/// How often the watchdog sweeps the in-flight slots.
const WATCHDOG_PERIOD: Duration = Duration::from_millis(3);

/// Bounds of the `retry_after_ms` backoff hint sent with shed responses.
const RETRY_AFTER_MIN_MS: u64 = 25;
/// Upper clamp of the backoff hint.
const RETRY_AFTER_MAX_MS: u64 = 2_000;

/// One response line bound for a client, tagged with whether it resolves its
/// request. Progress frames (`fin == false`) promise more lines for the same
/// id; everything else is final. The connection layer uses the tag to track
/// in-flight work (an idle sweep must not reap a client that is merely
/// waiting for a slow computation).
#[derive(Debug, Clone)]
pub struct Reply {
    /// The serialized response line (no trailing newline).
    pub line: String,
    /// Whether this line resolves the request.
    pub fin: bool,
}

impl Reply {
    /// A final, request-resolving line.
    pub fn fin(line: String) -> Self {
        Reply { line, fin: true }
    }

    /// An intermediate progress frame.
    pub fn frame(line: String) -> Self {
        Reply { line, fin: false }
    }
}

/// Monotonic service counters, exposed by the `stats` control op.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    received: AtomicU64,
    ok: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    cache_rejected: AtomicU64,
    shed: AtomicU64,
    queue_high_watermark: AtomicU64,
    stream_frames: AtomicU64,
    stream_cancels: AtomicU64,
    oversized: AtomicU64,
    conns_reaped: AtomicU64,
}

impl ServiceCounters {
    fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests that completed with an `ok` response (any cache path).
    pub fn ok(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Requests answered from a validated cache entry.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Requests that were computed fresh.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Requests answered from a concurrent leader's computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Requests that blew their deadline (queued or running).
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Requests that failed (engine error or payload panic).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Cache entries discarded as corrupt (and recomputed).
    pub fn cache_rejected(&self) -> u64 {
        self.cache_rejected.load(Ordering::Relaxed)
    }

    /// Requests shed at admission with a typed `overloaded` response.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Deepest the queue has ever been.
    pub fn queue_high_watermark(&self) -> u64 {
        self.queue_high_watermark.load(Ordering::Relaxed)
    }

    /// Streaming progress frames emitted.
    pub fn stream_frames(&self) -> u64 {
        self.stream_frames.load(Ordering::Relaxed)
    }

    /// Streamed computations cancelled by client disconnect.
    pub fn stream_cancels(&self) -> u64 {
        self.stream_cancels.load(Ordering::Relaxed)
    }

    /// Request lines rejected for exceeding the line-length cap (counted by
    /// the connection layer).
    pub fn oversized(&self) -> u64 {
        self.oversized.load(Ordering::Relaxed)
    }

    /// Idle connections reaped by the read-timeout sweep (counted by the
    /// connection layer).
    pub fn conns_reaped(&self) -> u64 {
        self.conns_reaped.load(Ordering::Relaxed)
    }

    /// Records an oversized request line (connection layer hook).
    pub fn note_oversized(&self) {
        ServiceCounters::inc(&self.oversized);
    }

    /// Records a reaped idle connection (connection layer hook).
    pub fn note_conn_reaped(&self) {
        ServiceCounters::inc(&self.conns_reaped);
    }

    /// A JSON snapshot for the `stats` control op. Alongside the request
    /// tallies it reports the effective execution strategy — worker threads
    /// and spatial shards — every payload's world runs with, so a campaign
    /// driver can record *how* its numbers were produced without parsing the
    /// daemon's environment.
    pub fn to_value(&self) -> Value {
        let u = |c: &AtomicU64| Value::U64(c.load(Ordering::Relaxed));
        Value::Map(vec![
            (
                "threads".to_string(),
                Value::U64(wrsn::sim::parallel::threads() as u64),
            ),
            (
                "shards".to_string(),
                Value::U64(wrsn::sim::parallel::shards() as u64),
            ),
            ("received".to_string(), u(&self.received)),
            ("ok".to_string(), u(&self.ok)),
            ("cache_hits".to_string(), u(&self.cache_hits)),
            ("cache_misses".to_string(), u(&self.cache_misses)),
            ("coalesced".to_string(), u(&self.coalesced)),
            ("timeouts".to_string(), u(&self.timeouts)),
            ("errors".to_string(), u(&self.errors)),
            ("cache_rejected".to_string(), u(&self.cache_rejected)),
            // Degradation counters share names with their `wrsn_sim::obs`
            // twins so campaign reports and daemon stats speak one
            // vocabulary.
            (Counter::RequestsShed.name().to_string(), u(&self.shed)),
            (
                "queue_high_watermark".to_string(),
                u(&self.queue_high_watermark),
            ),
            (
                Counter::StreamFrames.name().to_string(),
                u(&self.stream_frames),
            ),
            (
                Counter::StreamCancels.name().to_string(),
                u(&self.stream_cancels),
            ),
            (
                Counter::RequestsOversized.name().to_string(),
                u(&self.oversized),
            ),
            (
                Counter::ConnsReaped.name().to_string(),
                u(&self.conns_reaped),
            ),
        ])
    }
}

/// A queued unit of work.
struct Job {
    id: String,
    payload: Payload,
    digest: String,
    deadline: Duration,
    enqueued: Instant,
    stream: bool,
    /// Detector preset to attach to the campaign (scenario payloads only).
    /// Envelope-only, like `stream`: it never enters the digest, so detector
    /// and plain requests share one cache entry. The audit summary is
    /// computed by a fresh run only — cache hits replay bytes without one.
    detector: Option<String>,
    reply: Sender<Reply>,
}

impl Job {
    /// Time this job has left before its deadline, if any.
    fn remaining(&self) -> Option<Duration> {
        self.deadline.checked_sub(self.enqueued.elapsed())
    }
}

/// One worker's watchdog slot: what it is running and for how long it may.
struct WatchSlot {
    started: Instant,
    budget: Duration,
    token: CancelToken,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Inner {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: ResultCache,
    /// digest → followers parked behind the leader computing that digest.
    inflight: Mutex<HashMap<String, Vec<Job>>>,
    slots: Vec<Mutex<Option<WatchSlot>>>,
    counters: ServiceCounters,
    default_deadline: Duration,
    /// Admission bound: fresh submissions against a queue this deep are shed.
    queue_cap: usize,
    /// Pool size (scales the `retry_after_ms` hint).
    workers: usize,
    stopping: AtomicBool,
}

/// The worker pool. Dropping without [`Scheduler::shutdown`] aborts the
/// queue without draining it; prefer an explicit shutdown.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
    watchdog: Option<thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `workers` pooled threads plus the deadline watchdog. Fresh
    /// submissions beyond `queue_cap` waiting jobs are shed with a typed
    /// `overloaded` response.
    pub fn new(
        cache: ResultCache,
        workers: usize,
        default_deadline: Duration,
        queue_cap: usize,
    ) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cache,
            inflight: Mutex::new(HashMap::new()),
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            counters: ServiceCounters::default(),
            default_deadline,
            queue_cap: queue_cap.max(1),
            workers,
            stopping: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("wrsnd-worker-{slot}"))
                    .spawn(move || worker_loop(&inner, slot))
                    .expect("spawn worker thread")
            })
            .collect();
        let watchdog = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("wrsnd-watchdog".to_string())
                .spawn(move || watchdog_loop(&inner))
                .expect("spawn watchdog thread")
        };
        Scheduler {
            inner,
            workers: handles,
            watchdog: Some(watchdog),
        }
    }

    /// Enqueues a work request. The deadline clock starts now; `None` uses
    /// the pool default. The response line (ok/timeout/error) is delivered
    /// on `reply` when the request resolves — preceded by `progress` frames
    /// when `stream` is set. A full queue sheds the request immediately with
    /// a typed `overloaded` line instead of admitting it.
    pub fn submit(
        &self,
        id: String,
        payload: Payload,
        deadline: Option<Duration>,
        stream: bool,
        reply: Sender<Reply>,
    ) {
        self.submit_audited(id, payload, deadline, stream, None, reply);
    }

    /// [`Scheduler::submit`] with an optional online detector preset for
    /// scenario payloads. The detector never enters the digest; a fresh
    /// (leading) run attaches the audit and its summary rides in the `ok`
    /// envelope, while cache hits and followers are answered from the shared
    /// result bytes alone.
    pub fn submit_audited(
        &self,
        id: String,
        payload: Payload,
        deadline: Option<Duration>,
        stream: bool,
        detector: Option<String>,
        reply: Sender<Reply>,
    ) {
        ServiceCounters::inc(&self.inner.counters.received);
        let job = Job {
            id,
            digest: payload.digest(),
            payload,
            deadline: deadline.unwrap_or(self.inner.default_deadline),
            enqueued: Instant::now(),
            stream,
            detector,
            reply,
        };
        let mut queue = self.inner.queue.lock().expect("queue lock");
        if queue.closed {
            let line = request::error_line(&job.id, "service is shutting down");
            let _ = job.reply.send(Reply::fin(line));
            return;
        }
        let depth = queue.jobs.len();
        if depth >= self.inner.queue_cap {
            drop(queue);
            ServiceCounters::inc(&self.inner.counters.shed);
            let line =
                request::overloaded_line(&job.id, retry_after_hint(depth, self.inner.workers));
            let _ = job.reply.send(Reply::fin(line));
            return;
        }
        queue.jobs.push_back(job);
        let depth = queue.jobs.len() as u64;
        self.inner
            .counters
            .queue_high_watermark
            .fetch_max(depth, Ordering::Relaxed);
        drop(queue);
        self.inner.available.notify_one();
    }

    /// The live counters (shared with the `stats` control op).
    pub fn counters(&self) -> &ServiceCounters {
        &self.inner.counters
    }

    /// Everything the `stats` control op reports: the monotonic counters
    /// plus instantaneous queue occupancy and (when the cache is bounded)
    /// the cache budget.
    pub fn stats_value(&self) -> Value {
        let Value::Map(mut entries) = self.inner.counters.to_value() else {
            unreachable!("counters serialize as a map");
        };
        let depth = self.inner.queue.lock().expect("queue lock").jobs.len();
        entries.push(("queue_depth".to_string(), Value::U64(depth as u64)));
        entries.push((
            "queue_cap".to_string(),
            Value::U64(self.inner.queue_cap as u64),
        ));
        if let Some(stats) = self.inner.cache.stats() {
            entries.push((
                Counter::CacheEvictions.name().to_string(),
                Value::U64(stats.evictions),
            ));
            entries.push(("cache_cap_bytes".to_string(), Value::U64(stats.cap_bytes)));
            entries.push(("cache_bytes".to_string(), Value::U64(stats.total_bytes)));
            entries.push(("cache_entries".to_string(), Value::U64(stats.entries)));
        }
        Value::Map(entries)
    }

    /// Closes the queue, drains every already-submitted job, and joins the
    /// pool. Submissions after this point are answered with an error.
    pub fn shutdown(mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.closed = true;
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.inner.stopping.store(true, Ordering::Release);
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

/// Blocks for the next job; `None` once the queue is closed and drained.
fn next_job(inner: &Inner) -> Option<Job> {
    let mut queue = inner.queue.lock().expect("queue lock");
    loop {
        if let Some(job) = queue.jobs.pop_front() {
            return Some(job);
        }
        if queue.closed {
            return None;
        }
        queue = inner.available.wait(queue).expect("queue wait");
    }
}

fn watchdog_loop(inner: &Inner) {
    while !inner.stopping.load(Ordering::Acquire) {
        for slot in &inner.slots {
            let slot = slot.lock().expect("slot lock");
            if let Some(watch) = slot.as_ref() {
                if watch.started.elapsed() > watch.budget {
                    watch.token.cancel();
                }
            }
        }
        thread::sleep(WATCHDOG_PERIOD);
    }
}

/// Backoff hint for a shed response: scales with how far over capacity the
/// queue is relative to the pool that must drain it.
fn retry_after_hint(depth: usize, workers: usize) -> u64 {
    let scale = 1 + (depth / workers.max(1)) as u64;
    (RETRY_AFTER_MIN_MS * scale).clamp(RETRY_AFTER_MIN_MS, RETRY_AFTER_MAX_MS)
}

/// Answers `job` and the followers that coalesced behind it from one
/// computed outcome.
enum Outcome {
    /// Canonical result bytes plus, when the leader ran with a detector
    /// attached, the twin's envelope summary.
    Ok(String, Option<AuditSummary>),
    Timeout,
    Error(String),
    /// The streaming client went away mid-computation; there is nobody to
    /// answer, nothing was persisted, and followers get a fresh run.
    Disconnected,
}

fn worker_loop(inner: &Inner, slot: usize) {
    while let Some(job) = next_job(inner) {
        // Deadline may already have passed while queued.
        let Some(budget) = job.remaining() else {
            ServiceCounters::inc(&inner.counters.timeouts);
            let _ = job.reply.send(Reply::fin(request::timeout_line(
                &job.id,
                job.deadline.as_secs_f64(),
            )));
            continue;
        };
        // Cache first: a validated entry answers without touching the pool's
        // compute budget at all.
        match inner.cache.lookup(&job.digest) {
            CacheLookup::Hit(result) => {
                ServiceCounters::inc(&inner.counters.cache_hits);
                ServiceCounters::inc(&inner.counters.ok);
                let line = request::ok_line(
                    &job.id,
                    &job.digest,
                    "hit",
                    job.enqueued.elapsed().as_secs_f64() * 1e3,
                    &result,
                    None,
                );
                let _ = job.reply.send(Reply::fin(line));
                continue;
            }
            CacheLookup::Rejected(_) => {
                ServiceCounters::inc(&inner.counters.cache_rejected);
            }
            CacheLookup::Miss => {}
        }
        // Single-flight: park behind an in-progress computation of the same
        // digest instead of duplicating it.
        {
            let mut inflight = inner.inflight.lock().expect("inflight lock");
            if let Some(followers) = inflight.get_mut(&job.digest) {
                followers.push(job);
                continue;
            }
            inflight.insert(job.digest.clone(), Vec::new());
        }
        // This job leads. Arm the watchdog slot and run under a fresh token.
        let token = CancelToken::new();
        *inner.slots[slot].lock().expect("slot lock") = Some(WatchSlot {
            started: Instant::now(),
            budget,
            token: token.clone(),
        });
        let disconnected = std::cell::Cell::new(false);
        let run = {
            let guard = ScopedCancel::install(token.clone());
            let run = if job.stream {
                // Streaming leader: forward each drained record batch as a
                // `progress` frame. A failed send means the connection writer
                // (and with it the client) is gone — cancel our own token so
                // the engine unwinds at its next segment poll instead of
                // computing for nobody.
                let mut seq: u64 = 0;
                let reply = &job.reply;
                let id = job.id.as_str();
                let sink_token = &token;
                let sink_disconnected = &disconnected;
                let counters = &inner.counters;
                let mut sink = |t_s: f64, records: Vec<TraceRecord>| -> bool {
                    if records.is_empty() {
                        return !sink_token.is_cancelled();
                    }
                    let line = request::progress_line(id, seq, t_s, &records);
                    seq += 1;
                    if reply.send(Reply::frame(line)).is_err() {
                        sink_disconnected.set(true);
                        sink_token.cancel();
                        return false;
                    }
                    ServiceCounters::inc(&counters.stream_frames);
                    true
                };
                catch_unwind(AssertUnwindSafe(|| {
                    request::execute_streamed_audited(
                        &job.payload,
                        job.detector.as_deref(),
                        &mut sink,
                    )
                }))
            } else {
                catch_unwind(AssertUnwindSafe(|| {
                    request::execute_audited(&job.payload, job.detector.as_deref())
                }))
            };
            drop(guard);
            run
        };
        *inner.slots[slot].lock().expect("slot lock") = None;
        let outcome = match run {
            _ if disconnected.get() => Outcome::Disconnected,
            Ok(Ok((result, audit))) => Outcome::Ok(result, audit),
            Ok(Err(ExecError::Cancelled)) => Outcome::Timeout,
            Ok(Err(ExecError::Failed(detail))) => Outcome::Error(detail),
            // A panic out of a cancelled run is the engine unwinding past a
            // poll point under load — a timeout, not a bug in the payload.
            Err(_) if token.is_cancelled() => Outcome::Timeout,
            Err(payload) => Outcome::Error(format!(
                "worker panicked: {}",
                panic_message(payload.as_ref())
            )),
        };
        // Persist before taking the followers, so a request that misses the
        // follower window finds the cache entry instead of recomputing.
        if let Outcome::Ok(result, _) = &outcome {
            if let Err(e) = inner.cache.save(&job.digest, result) {
                eprintln!("wrsnd: cache save failed for {}: {e}", job.digest);
            }
        }
        let followers = inner
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&job.digest)
            .unwrap_or_default();
        match outcome {
            Outcome::Ok(result, audit) => {
                ServiceCounters::inc(&inner.counters.cache_misses);
                ServiceCounters::inc(&inner.counters.ok);
                let wall_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
                let _ = job.reply.send(Reply::fin(request::ok_line(
                    &job.id,
                    &job.digest,
                    "miss",
                    wall_ms,
                    &result,
                    audit.as_ref(),
                )));
                // Followers share the leader's result bytes, not its
                // envelope: the audit summary is the leader's fresh run.
                for follower in followers {
                    ServiceCounters::inc(&inner.counters.coalesced);
                    ServiceCounters::inc(&inner.counters.ok);
                    let wall_ms = follower.enqueued.elapsed().as_secs_f64() * 1e3;
                    let line = request::ok_line(
                        &follower.id,
                        &follower.digest,
                        "coalesced",
                        wall_ms,
                        &result,
                        None,
                    );
                    let _ = follower.reply.send(Reply::fin(line));
                }
            }
            Outcome::Timeout => {
                ServiceCounters::inc(&inner.counters.timeouts);
                let _ = job.reply.send(Reply::fin(request::timeout_line(
                    &job.id,
                    job.deadline.as_secs_f64(),
                )));
                // The leader's deadline is not the followers': give each a
                // fresh chance under its own clock.
                requeue(inner, followers);
            }
            Outcome::Error(detail) => {
                ServiceCounters::inc(&inner.counters.errors);
                let _ = job
                    .reply
                    .send(Reply::fin(request::error_line(&job.id, &detail)));
                for follower in followers {
                    ServiceCounters::inc(&inner.counters.errors);
                    let _ = follower
                        .reply
                        .send(Reply::fin(request::error_line(&follower.id, &detail)));
                }
            }
            Outcome::Disconnected => {
                // Nobody is listening for `job` any more; its followers'
                // clients may still be, so they re-run under their own
                // deadlines rather than inheriting the cancellation.
                ServiceCounters::inc(&inner.counters.stream_cancels);
                requeue(inner, followers);
            }
        }
    }
}

fn requeue(inner: &Inner, followers: Vec<Job>) {
    if followers.is_empty() {
        return;
    }
    let mut queue = inner.queue.lock().expect("queue lock");
    if queue.closed {
        for job in followers {
            ServiceCounters::inc(&inner.counters.errors);
            let _ = job.reply.send(Reply::fin(request::error_line(
                &job.id,
                "service is shutting down",
            )));
        }
        return;
    }
    let n = followers.len();
    for job in followers {
        queue.jobs.push_back(job);
    }
    drop(queue);
    for _ in 0..n {
        inner.available.notify_one();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::request::{parse_response, TestOp};
    use std::sync::mpsc;

    fn temp_cache(tag: &str) -> (ResultCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "wrsn-sched-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).unwrap(), dir)
    }

    fn echo(tag: u64, sleep_ms: u64) -> Payload {
        Payload::Test(TestOp::Echo { tag, sleep_ms })
    }

    #[test]
    fn work_round_trips_and_repeats_hit_the_cache() {
        let (cache, dir) = temp_cache("roundtrip");
        let scheduler = Scheduler::new(cache, 2, Duration::from_secs(10), 64);
        let (tx, rx) = mpsc::channel();
        scheduler.submit("a".to_string(), echo(1, 0), None, false, tx.clone());
        let first = parse_response(&rx.recv().unwrap().line).unwrap();
        assert_eq!(first.status, "ok");
        assert_eq!(first.cache.as_deref(), Some("miss"));
        scheduler.submit("b".to_string(), echo(1, 0), None, false, tx);
        let second = parse_response(&rx.recv().unwrap().line).unwrap();
        assert_eq!(second.cache.as_deref(), Some("hit"));
        assert_eq!(
            first.result_canonical, second.result_canonical,
            "hit replays the miss byte-identically"
        );
        assert_eq!(scheduler.counters().cache_hits(), 1);
        assert_eq!(scheduler.counters().cache_misses(), 1);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_duplicates_coalesce_into_one_computation() {
        let (cache, dir) = temp_cache("coalesce");
        let scheduler = Scheduler::new(cache, 4, Duration::from_secs(10), 64);
        let (tx, rx) = mpsc::channel();
        for k in 0..6 {
            scheduler.submit(format!("q{k}"), echo(7, 150), None, false, tx.clone());
        }
        drop(tx);
        let mut results = Vec::new();
        while let Ok(reply) = rx.recv() {
            results.push(parse_response(&reply.line).unwrap());
        }
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.status == "ok"));
        let bytes: Vec<_> = results.iter().map(|r| r.result_canonical.clone()).collect();
        assert!(
            bytes.windows(2).all(|w| w[0] == w[1]),
            "every duplicate gets identical bytes"
        );
        // Exactly one real computation; the rest coalesced or (if they
        // arrived after the leader finished) hit the cache.
        assert_eq!(scheduler.counters().cache_misses(), 1);
        assert_eq!(
            scheduler.counters().coalesced() + scheduler.counters().cache_hits(),
            5
        );
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_hung_payload_times_out_at_its_deadline() {
        let (cache, dir) = temp_cache("deadline");
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10), 64);
        let (tx, rx) = mpsc::channel();
        let started = Instant::now();
        scheduler.submit(
            "hang".to_string(),
            Payload::Test(TestOp::Hang),
            Some(Duration::from_millis(80)),
            false,
            tx,
        );
        let response = parse_response(&rx.recv().unwrap().line).unwrap();
        assert_eq!(response.status, "timeout");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "watchdog fired, not a test timeout"
        );
        assert_eq!(scheduler.counters().timeouts(), 1);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_request_queued_past_its_deadline_never_executes() {
        let (cache, dir) = temp_cache("queued");
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10), 64);
        let (tx, rx) = mpsc::channel();
        // Occupy the only worker…
        scheduler.submit("slow".to_string(), echo(9, 250), None, false, tx.clone());
        // …so this 1 ms deadline is long gone by the time it is popped.
        scheduler.submit(
            "late".to_string(),
            echo(10, 0),
            Some(Duration::from_millis(1)),
            false,
            tx,
        );
        let mut by_id = HashMap::new();
        for _ in 0..2 {
            let r = parse_response(&rx.recv().unwrap().line).unwrap();
            by_id.insert(r.id.clone(), r);
        }
        assert_eq!(by_id["slow"].status, "ok");
        assert_eq!(by_id["late"].status, "timeout");
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_payload_reports_an_error_and_the_worker_thread_survives() {
        let (cache, dir) = temp_cache("panic");
        // One worker: the follow-up request runs on the *same* pooled
        // thread the panic unwound through.
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10), 64);
        let (tx, rx) = mpsc::channel();
        scheduler.submit(
            "boom".to_string(),
            Payload::Test(TestOp::Panic),
            None,
            false,
            tx.clone(),
        );
        let boom = parse_response(&rx.recv().unwrap().line).unwrap();
        assert_eq!(boom.status, "error");
        assert!(boom.error.unwrap().contains("panicked"));
        // The reused thread must carry no stale cancel token: a fresh
        // request completes normally instead of being instantly "cancelled".
        scheduler.submit("after".to_string(), echo(11, 0), None, false, tx);
        let after = parse_response(&rx.recv().unwrap().line).unwrap();
        assert_eq!(after.status, "ok", "reused worker thread is clean");
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn followers_of_a_timed_out_leader_are_requeued_not_dropped() {
        let (cache, dir) = temp_cache("requeue");
        let scheduler = Scheduler::new(cache, 2, Duration::from_secs(10), 64);
        let (tx, rx) = mpsc::channel();
        // Leader hangs with a short deadline; follower (same digest) has a
        // generous one. After the leader times out the follower re-runs the
        // payload itself — Hang always hangs, so it times out on its *own*
        // deadline rather than being silently dropped.
        scheduler.submit(
            "leader".to_string(),
            Payload::Test(TestOp::Hang),
            Some(Duration::from_millis(60)),
            false,
            tx.clone(),
        );
        thread::sleep(Duration::from_millis(10));
        scheduler.submit(
            "follower".to_string(),
            Payload::Test(TestOp::Hang),
            Some(Duration::from_millis(300)),
            false,
            tx,
        );
        let mut statuses = HashMap::new();
        for _ in 0..2 {
            let r = parse_response(&rx.recv().unwrap().line).unwrap();
            statuses.insert(r.id.clone(), r.status);
        }
        assert_eq!(statuses["leader"], "timeout");
        assert_eq!(statuses["follower"], "timeout");
        assert_eq!(scheduler.counters().timeouts(), 2);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_full_queue_sheds_with_a_typed_overloaded_response() {
        let (cache, dir) = temp_cache("shed");
        // One worker, queue of one: occupy the worker, fill the queue, and
        // the third submission must be shed at the door.
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10), 1);
        let (tx, rx) = mpsc::channel();
        scheduler.submit("busy".to_string(), echo(20, 250), None, false, tx.clone());
        // Give the worker time to pop "busy" off the queue.
        thread::sleep(Duration::from_millis(50));
        scheduler.submit("queued".to_string(), echo(21, 0), None, false, tx.clone());
        scheduler.submit("shed".to_string(), echo(22, 0), None, false, tx.clone());
        drop(tx);
        let mut by_id = HashMap::new();
        while let Ok(reply) = rx.recv() {
            let r = parse_response(&reply.line).unwrap();
            by_id.insert(r.id.clone(), r);
        }
        assert_eq!(by_id["busy"].status, "ok");
        assert_eq!(by_id["queued"].status, "ok");
        let shed = &by_id["shed"];
        assert_eq!(shed.status, "overloaded");
        let hint = shed.retry_after_ms.expect("shed response carries a hint");
        assert!((RETRY_AFTER_MIN_MS..=RETRY_AFTER_MAX_MS).contains(&hint));
        assert_eq!(scheduler.counters().shed(), 1);
        assert!(scheduler.counters().queue_high_watermark() >= 1);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_streaming_job_emits_progress_frames_then_the_shared_cached_final() {
        let (cache, dir) = temp_cache("stream");
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10), 8);
        let stream_op = || {
            Payload::Test(TestOp::Stream {
                frames: 3,
                sleep_ms: 0,
            })
        };
        let (tx, rx) = mpsc::channel();
        scheduler.submit("s".to_string(), stream_op(), None, true, tx);
        let mut frames = Vec::new();
        let fin = loop {
            let reply = rx.recv().unwrap();
            let r = parse_response(&reply.line).unwrap();
            if reply.fin {
                break r;
            }
            assert_eq!(r.status, "progress");
            frames.push(r);
        };
        assert_eq!(frames.len(), 3);
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(frame.seq, Some(k as u64), "frames arrive in order");
            assert_eq!(frame.records.as_ref().unwrap().len(), 1);
        }
        assert_eq!(fin.status, "ok");
        assert_eq!(scheduler.counters().stream_frames(), 3);
        // The stream flag is envelope-only: the same payload submitted plain
        // hits the cache entry the streamed run saved, byte-identically.
        let (tx2, rx2) = mpsc::channel();
        scheduler.submit("p".to_string(), stream_op(), None, false, tx2);
        let plain = parse_response(&rx2.recv().unwrap().line).unwrap();
        assert_eq!(plain.status, "ok");
        assert_eq!(plain.cache.as_deref(), Some("hit"));
        assert_eq!(plain.result_canonical, fin.result_canonical);
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_disconnected_stream_cancels_without_poisoning_worker_or_cache() {
        let (cache, dir) = temp_cache("discon");
        let scheduler = Scheduler::new(cache, 1, Duration::from_secs(10), 8);
        let gone_op = Payload::Test(TestOp::Stream {
            frames: 500,
            sleep_ms: 5,
        });
        let digest = gone_op.digest();
        let (tx, rx) = mpsc::channel();
        scheduler.submit("gone".to_string(), gone_op, None, true, tx);
        let first = rx.recv().unwrap();
        assert!(!first.fin, "first line is a progress frame");
        drop(rx); // the client vanishes mid-stream
                  // The worker notices on its next frame send, cancels its own run,
                  // and survives to serve a fresh request on the same thread.
        let (tx2, rx2) = mpsc::channel();
        scheduler.submit("next".to_string(), echo(30, 0), None, false, tx2);
        let next = parse_response(&rx2.recv().unwrap().line).unwrap();
        assert_eq!(next.status, "ok");
        assert_eq!(scheduler.counters().stream_cancels(), 1);
        assert!(scheduler.counters().stream_frames() >= 1);
        // The aborted computation persisted nothing under its digest.
        assert!(
            !dir.join(format!("{digest}.out.json")).exists(),
            "cancelled stream must not leave a cache entry"
        );
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_value_reports_queue_and_cache_occupancy() {
        let dir = std::env::temp_dir().join(format!(
            "wrsn-sched-stats-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open_bounded(&dir, 1 << 20).unwrap();
        let scheduler = Scheduler::new(cache, 2, Duration::from_secs(10), 7);
        let Value::Map(entries) = scheduler.stats_value() else {
            panic!("stats_value is a map");
        };
        let get = |key: &str| {
            entries
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("stats missing {key}"))
                .1
                .clone()
        };
        assert_eq!(get("queue_cap"), Value::U64(7));
        assert_eq!(get("queue_depth"), Value::U64(0));
        assert_eq!(get("cache_cap_bytes"), Value::U64(1 << 20));
        assert_eq!(get(Counter::CacheEvictions.name()), Value::U64(0));
        assert_eq!(get(Counter::RequestsShed.name()), Value::U64(0));
        scheduler.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
