//! A deterministic network-chaos proxy for hardening tests (`wrsnd chaos`).
//!
//! Sits between a load generator and a `wrsnd` daemon and injects the
//! failures a hostile network produces, per connection, from a seeded plan:
//!
//! - **clean** pass-through (the control group);
//! - **drop**: after forwarding a byte budget of responses, both sides of
//!   the relay are torn down — from the client's view the daemon died
//!   mid-response (usually mid-*line*, which is what makes it interesting);
//!   from the daemon's view the client disconnected (cancelling any
//!   streamed computation);
//! - **stall**: after the budget, the relay goes silent for a while before
//!   dropping — the shape that distinguishes "slow" from "gone" and
//!   exercises client-side stall detection.
//!
//! The plan for connection `k` under seed `s` is a pure function of `(s, k)`
//! ([`plan_for_conn`]), so a chaos run is reproducible: same seed, same
//! faults in the same order. Requests (client→daemon) are forwarded
//! untouched — chaos corrupts *delivery*, never *content*, so any wrong
//! bytes surfacing downstream are the daemon's fault, which is the point of
//! the harness.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::BenchError;

/// Chaos-proxy configuration (assembled by the `wrsnd chaos` CLI).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Address to listen on (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// The real daemon to relay to.
    pub upstream: String,
    /// Fault-plan seed.
    pub seed: u64,
}

/// What one proxied connection has in store for its client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Forward everything faithfully.
    Clean,
    /// Forward `bytes` of responses, then tear the relay down. Budgets are
    /// deliberately not line-aligned, so drops usually truncate mid-line.
    DropAfter {
        /// Downstream byte budget before the teardown.
        bytes: usize,
    },
    /// Forward `bytes` of responses, go silent for `stall_ms`, then tear
    /// down.
    StallThenDrop {
        /// Downstream byte budget before the stall.
        bytes: usize,
        /// Silence before the teardown, milliseconds.
        stall_ms: u64,
    },
}

/// The deterministic fault plan for connection `conn_id` under `seed`.
/// Roughly half the connections are clean; the rest split between hard
/// drops and stall-then-drops.
pub fn plan_for_conn(seed: u64, conn_id: u64) -> FaultPlan {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ conn_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < 0.5 {
        FaultPlan::Clean
    } else if roll < 0.8 {
        FaultPlan::DropAfter {
            bytes: rng.gen_range(64usize..16_384),
        }
    } else {
        FaultPlan::StallThenDrop {
            bytes: rng.gen_range(64usize..16_384),
            stall_ms: rng.gen_range(100u64..7_000),
        }
    }
}

/// Handle for an in-process proxy (integration tests); dropping it does not
/// stop the proxy — call [`ChaosHandle::stop`].
pub struct ChaosHandle {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ChaosHandle {
    /// Signals the accept loop to exit and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

/// Starts a proxy on an ephemeral port, returning its address. Used by
/// integration tests; the CLI path is [`serve`].
///
/// # Errors
///
/// Propagates socket setup failures.
pub fn spawn(upstream: &str, seed: u64) -> std::io::Result<(SocketAddr, ChaosHandle)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let upstream = upstream.to_string();
    let thread = {
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("wrsnd-chaos".to_string())
            .spawn(move || accept_loop(&listener, &upstream, seed, &stop))?
    };
    Ok((
        addr,
        ChaosHandle {
            stop,
            thread: Some(thread),
        },
    ))
}

/// Runs the proxy until the process is killed (the `wrsnd chaos` CLI).
///
/// # Errors
///
/// [`BenchError::Io`] when the listen socket cannot be set up.
pub fn serve(config: &ChaosConfig) -> Result<(), BenchError> {
    let path = std::path::Path::new(&config.listen);
    let listener = TcpListener::bind(&config.listen)
        .map_err(|e| BenchError::io("bind chaos listener", path, &e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| BenchError::io("resolve chaos listener", path, &e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| BenchError::io("configure chaos listener", path, &e))?;
    println!("wrsnd chaos listening on {addr} -> {}", config.upstream);
    std::io::stdout().flush().ok();
    let stop = AtomicBool::new(false);
    accept_loop(&listener, &config.upstream, config.seed, &stop);
    Ok(())
}

fn accept_loop(listener: &TcpListener, upstream: &str, seed: u64, stop: &AtomicBool) {
    let mut conn_id = 0u64;
    let mut relays = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let id = conn_id;
                conn_id += 1;
                let upstream = upstream.to_string();
                relays.push(
                    thread::Builder::new()
                        .name(format!("wrsnd-chaos-{id}"))
                        .spawn(move || relay(client, &upstream, plan_for_conn(seed, id)))
                        .expect("spawn chaos relay"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("wrsnd chaos: accept failed: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    for handle in relays {
        let _ = handle.join();
    }
}

/// Relays one client connection through its fault plan. Requests flow
/// untouched on a side thread; responses flow through the budget/stall
/// logic here. When the plan fires (or either side ends), both sockets are
/// torn down so the other pump exits too.
fn relay(client: TcpStream, upstream_addr: &str, plan: FaultPlan) {
    let Ok(upstream) = TcpStream::connect(upstream_addr) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_r), Ok(upstream_w)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    let up = thread::Builder::new()
        .name("wrsnd-chaos-up".to_string())
        .spawn(move || {
            pump_clean(client_r, upstream_w);
        })
        .expect("spawn upstream pump");
    pump_faulted(upstream.try_clone().ok(), client.try_clone().ok(), plan);
    let _ = client.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = up.join();
}

/// Byte-for-byte pump (the request direction).
fn pump_clean(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Budgeted pump (the response direction): forwards until the plan's byte
/// budget is spent, then stalls (if planned) and returns, at which point
/// [`relay`] tears both sockets down.
fn pump_faulted(from: Option<TcpStream>, to: Option<TcpStream>, plan: FaultPlan) {
    let (Some(mut from), Some(mut to)) = (from, to) else {
        return;
    };
    let (mut budget, stall_ms) = match plan {
        FaultPlan::Clean => (usize::MAX, 0),
        FaultPlan::DropAfter { bytes } => (bytes, 0),
        FaultPlan::StallThenDrop { bytes, stall_ms } => (bytes, stall_ms),
    };
    let mut buf = [0u8; 4096];
    loop {
        if budget == 0 {
            if stall_ms > 0 {
                thread::sleep(Duration::from_millis(stall_ms));
            }
            break;
        }
        let want = budget.min(buf.len());
        match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_deterministic_in_seed_and_conn() {
        for conn in 0..64 {
            assert_eq!(plan_for_conn(7, conn), plan_for_conn(7, conn));
        }
        assert!(
            (0..64).any(|c| plan_for_conn(7, c) != plan_for_conn(8, c)),
            "different seeds must produce different plans"
        );
    }

    #[test]
    fn fault_plans_cover_every_variant() {
        let plans: Vec<FaultPlan> = (0..200).map(|c| plan_for_conn(42, c)).collect();
        assert!(plans.iter().any(|p| matches!(p, FaultPlan::Clean)));
        assert!(plans
            .iter()
            .any(|p| matches!(p, FaultPlan::DropAfter { .. })));
        assert!(plans
            .iter()
            .any(|p| matches!(p, FaultPlan::StallThenDrop { .. })));
        for plan in &plans {
            match plan {
                FaultPlan::Clean => {}
                FaultPlan::DropAfter { bytes } => assert!((64..16_384).contains(bytes)),
                FaultPlan::StallThenDrop { bytes, stall_ms } => {
                    assert!((64..16_384).contains(bytes));
                    assert!((100..7_000).contains(stall_ms));
                }
            }
        }
    }

    #[test]
    fn a_clean_plan_relays_bytes_faithfully_end_to_end() {
        use std::io::{BufRead, BufReader};
        // A tiny upstream echo server: reads lines, echoes them back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (stream, _) = upstream.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                writer.write_all(line.as_bytes()).unwrap();
                writer.flush().unwrap();
                line.clear();
            }
        });
        // Seed 42's connection 0 happens to be Clean; pin that so the test
        // exercises the faithful path (the assertion below guards the pin).
        assert_eq!(plan_for_conn(42, 0), FaultPlan::Clean);
        let (proxy_addr, proxy) = spawn(&upstream_addr.to_string(), 42).unwrap();
        let mut client = TcpStream::connect(proxy_addr).unwrap();
        client.write_all(b"hello through the proxy\n").unwrap();
        client.flush().unwrap();
        let mut reply = String::new();
        BufReader::new(client.try_clone().unwrap())
            .read_line(&mut reply)
            .unwrap();
        assert_eq!(reply, "hello through the proxy\n");
        drop(client);
        proxy.stop();
        let _ = echo.join();
    }
}
