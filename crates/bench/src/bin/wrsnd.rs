//! `wrsnd` — the resident campaign daemon and its load generator.
//!
//! ```text
//! # Serve scenario requests over TCP (port 0 = pick a free port).
//! cargo run -p wrsn-bench --release --bin wrsnd -- serve --listen 127.0.0.1:0
//!
//! # Serve over stdin/stdout (for pipe-based harnesses).
//! cargo run -p wrsn-bench --release --bin wrsnd -- serve --stdin
//!
//! # Drive a running daemon with a deterministic mixed-size load.
//! cargo run -p wrsn-bench --release --bin wrsnd -- \
//!     load --connect 127.0.0.1:7878 --requests 1000 --conns 8 \
//!          --dup-frac 0.5 --json BENCH_pr7.json --shutdown
//! ```
//!
//! The wire protocol, dedupe semantics, and deadline behaviour are
//! documented in `wrsn_bench::service` (DESIGN.md has the prose version).
//! The load generator exits nonzero if any contract check fails: a request
//! unanswered or non-`ok`, duplicate digests served different bytes, or
//! (with `--verify-exp`) daemon output drifting from an in-process run.

use std::process::ExitCode;
use std::time::Duration;

use wrsn_bench::error::BenchError;
use wrsn_bench::service::chaos::{self, ChaosConfig};
use wrsn_bench::service::loadgen::{run_load, LoadConfig};
use wrsn_bench::service::server::{serve, ServeConfig};

fn usage() -> String {
    "usage: wrsnd serve [--listen <addr>|--stdin] [--store <dir>] [--workers <n>]\n\
     \x20                  [--deadline-s <s>] [--max-requests <n>] [--queue-cap <n>]\n\
     \x20                  [--cache-cap-bytes <n>] [--idle-timeout-s <s>]\n\
     \x20      wrsnd load --connect <addr> [--requests <n>] [--conns <n>] [--dup-frac <f>]\n\
     \x20                 [--stream-frac <f>] [--max-attempts <n>] [--deadline-s <s>]\n\
     \x20                 [--seed <n>] [--json <path>] [--verify-exp <id>] [--shutdown]\n\
     \x20      wrsnd chaos --upstream <addr> [--listen <addr>] [--seed <n>]"
        .to_string()
}

fn invalid(flag: &'static str, detail: String) -> BenchError {
    BenchError::InvalidFlag { flag, detail }
}

/// Pulls the value of `flag` out of the argument stream.
fn take_value(
    args: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
    flag: &'static str,
) -> Result<String, BenchError> {
    args.next()
        .ok_or_else(|| invalid(flag, "missing value".to_string()))
}

fn parse_serve(args: Vec<String>) -> Result<ServeConfig, BenchError> {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut config = ServeConfig {
        listen: Some("127.0.0.1:0".to_string()),
        store_dir: std::path::PathBuf::from(".wrsnd"),
        workers,
        default_deadline: Duration::from_secs(60),
        max_requests: None,
        queue_cap: 0, // resolved after flags: workers may change
        cache_cap_bytes: None,
        idle_timeout: None,
    };
    let mut queue_cap = None;
    let mut args = args.into_iter().peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--listen" => config.listen = Some(take_value(&mut args, "--listen")?),
            "--stdin" => config.listen = None,
            "--store" => {
                config.store_dir = std::path::PathBuf::from(take_value(&mut args, "--store")?)
            }
            "--workers" => {
                let raw = take_value(&mut args, "--workers")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| invalid("--workers", format!("not a count: `{raw}`")))?;
                if n == 0 {
                    return Err(invalid("--workers", "must be at least 1".to_string()));
                }
                config.workers = n;
            }
            "--deadline-s" => {
                let raw = take_value(&mut args, "--deadline-s")?;
                let s: f64 = raw
                    .parse()
                    .map_err(|_| invalid("--deadline-s", format!("not a number: `{raw}`")))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(invalid("--deadline-s", format!("must be positive: {s}")));
                }
                config.default_deadline = Duration::from_secs_f64(s);
            }
            "--max-requests" => {
                let raw = take_value(&mut args, "--max-requests")?;
                config.max_requests = Some(
                    raw.parse()
                        .map_err(|_| invalid("--max-requests", format!("not a count: `{raw}`")))?,
                );
            }
            "--queue-cap" => {
                let raw = take_value(&mut args, "--queue-cap")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| invalid("--queue-cap", format!("not a count: `{raw}`")))?;
                if n == 0 {
                    return Err(invalid("--queue-cap", "must be at least 1".to_string()));
                }
                queue_cap = Some(n);
            }
            "--cache-cap-bytes" => {
                let raw = take_value(&mut args, "--cache-cap-bytes")?;
                let n: u64 = raw.parse().map_err(|_| {
                    invalid("--cache-cap-bytes", format!("not a byte count: `{raw}`"))
                })?;
                if n == 0 {
                    return Err(invalid(
                        "--cache-cap-bytes",
                        "must be at least 1".to_string(),
                    ));
                }
                config.cache_cap_bytes = Some(n);
            }
            "--idle-timeout-s" => {
                let raw = take_value(&mut args, "--idle-timeout-s")?;
                let s: f64 = raw
                    .parse()
                    .map_err(|_| invalid("--idle-timeout-s", format!("not a number: `{raw}`")))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(invalid(
                        "--idle-timeout-s",
                        format!("must be positive: {s}"),
                    ));
                }
                config.idle_timeout = Some(Duration::from_secs_f64(s));
            }
            other => {
                return Err(invalid(
                    "serve",
                    format!("unknown flag `{other}`\n{}", usage()),
                ))
            }
        }
    }
    config.queue_cap = queue_cap.unwrap_or_else(|| ServeConfig::default_queue_cap(config.workers));
    Ok(config)
}

fn parse_chaos(args: Vec<String>) -> Result<ChaosConfig, BenchError> {
    let mut config = ChaosConfig {
        listen: "127.0.0.1:0".to_string(),
        upstream: String::new(),
        seed: 42,
    };
    let mut args = args.into_iter().peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--listen" => config.listen = take_value(&mut args, "--listen")?,
            "--upstream" => config.upstream = take_value(&mut args, "--upstream")?,
            "--seed" => {
                let raw = take_value(&mut args, "--seed")?;
                config.seed = raw
                    .parse()
                    .map_err(|_| invalid("--seed", format!("not a seed: `{raw}`")))?;
            }
            other => {
                return Err(invalid(
                    "chaos",
                    format!("unknown flag `{other}`\n{}", usage()),
                ))
            }
        }
    }
    if config.upstream.is_empty() {
        return Err(invalid("--upstream", "is required for `chaos`".to_string()));
    }
    Ok(config)
}

fn parse_load(args: Vec<String>) -> Result<LoadConfig, BenchError> {
    let mut config = LoadConfig {
        connect: String::new(),
        requests: 1000,
        conns: 8,
        dup_frac: 0.5,
        stream_frac: 0.0,
        deadline_s: 60.0,
        seed: 7,
        max_attempts: 8,
        verify_exp: None,
        json_path: None,
        shutdown: false,
    };
    let mut args = args.into_iter().peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => config.connect = take_value(&mut args, "--connect")?,
            "--requests" => {
                let raw = take_value(&mut args, "--requests")?;
                config.requests = raw
                    .parse()
                    .map_err(|_| invalid("--requests", format!("not a count: `{raw}`")))?;
                if config.requests == 0 {
                    return Err(invalid("--requests", "must be at least 1".to_string()));
                }
            }
            "--conns" => {
                let raw = take_value(&mut args, "--conns")?;
                config.conns = raw
                    .parse()
                    .map_err(|_| invalid("--conns", format!("not a count: `{raw}`")))?;
                if config.conns == 0 {
                    return Err(invalid("--conns", "must be at least 1".to_string()));
                }
            }
            "--dup-frac" => {
                let raw = take_value(&mut args, "--dup-frac")?;
                let f: f64 = raw
                    .parse()
                    .map_err(|_| invalid("--dup-frac", format!("not a number: `{raw}`")))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(invalid("--dup-frac", format!("must be in 0..=1: {f}")));
                }
                config.dup_frac = f;
            }
            "--stream-frac" => {
                let raw = take_value(&mut args, "--stream-frac")?;
                let f: f64 = raw
                    .parse()
                    .map_err(|_| invalid("--stream-frac", format!("not a number: `{raw}`")))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(invalid("--stream-frac", format!("must be in 0..=1: {f}")));
                }
                config.stream_frac = f;
            }
            "--max-attempts" => {
                let raw = take_value(&mut args, "--max-attempts")?;
                let n: u32 = raw
                    .parse()
                    .map_err(|_| invalid("--max-attempts", format!("not a count: `{raw}`")))?;
                if n == 0 {
                    return Err(invalid("--max-attempts", "must be at least 1".to_string()));
                }
                config.max_attempts = n;
            }
            "--deadline-s" => {
                let raw = take_value(&mut args, "--deadline-s")?;
                let s: f64 = raw
                    .parse()
                    .map_err(|_| invalid("--deadline-s", format!("not a number: `{raw}`")))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(invalid("--deadline-s", format!("must be positive: {s}")));
                }
                config.deadline_s = s;
            }
            "--seed" => {
                let raw = take_value(&mut args, "--seed")?;
                config.seed = raw
                    .parse()
                    .map_err(|_| invalid("--seed", format!("not a seed: `{raw}`")))?;
            }
            "--verify-exp" => {
                let id = take_value(&mut args, "--verify-exp")?;
                if !wrsn_bench::is_known_id(&id) {
                    return Err(invalid(
                        "--verify-exp",
                        format!("unknown experiment `{id}`"),
                    ));
                }
                config.verify_exp = Some(id);
            }
            "--json" => {
                config.json_path = Some(std::path::PathBuf::from(take_value(&mut args, "--json")?))
            }
            "--shutdown" => config.shutdown = true,
            other => {
                return Err(invalid(
                    "load",
                    format!("unknown flag `{other}`\n{}", usage()),
                ))
            }
        }
    }
    if config.connect.is_empty() {
        return Err(invalid("--connect", "is required for `load`".to_string()));
    }
    Ok(config)
}

fn send_shutdown(connect: &str) {
    use std::io::{BufRead, BufReader, Write};
    match std::net::TcpStream::connect(connect) {
        Ok(mut stream) => {
            let _ = stream.write_all(b"{\"op\":\"shutdown\"}\n");
            let _ = stream.flush();
            // Wait for the ack (or EOF) so the daemon is actually stopping
            // before we return.
            let mut line = String::new();
            let _ = BufReader::new(stream).read_line(&mut line);
        }
        Err(e) => eprintln!("wrsnd: shutdown connect {connect}: {e}"),
    }
}

fn real_main() -> Result<(), BenchError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(invalid("wrsnd", usage()));
    }
    let mode = args.remove(0);
    match mode.as_str() {
        "serve" => serve(&parse_serve(args)?),
        "load" => {
            let config = parse_load(args)?;
            let report = run_load(&config);
            if config.shutdown {
                send_shutdown(&config.connect);
            }
            let report = report?;
            let opt = |x: Option<f64>| x.map_or("null".to_string(), |v| format!("{v:.2}"));
            eprintln!(
                "[load] {} requests over {} conns in {:.2} s — {:.0} ok/s; \
                 cache miss/hit/coalesced = {}/{}/{}; \
                 shed/retries/reconnects = {}/{}/{}; stream frames = {}; \
                 latency ms p50={} p99={} max={}",
                report.sent,
                config.conns,
                report.wall_s,
                report.throughput_rps,
                report.cache_paths.0,
                report.cache_paths.1,
                report.cache_paths.2,
                report.shed,
                report.retries,
                report.reconnects,
                report.stream_frames,
                opt(wrsn_bench::stats::p50(&report.latency_ms)),
                opt(wrsn_bench::stats::p99(&report.latency_ms)),
                opt(wrsn_bench::stats::max(&report.latency_ms)),
            );
            if let Some(path) = &config.json_path {
                eprintln!("[load] report written to {}", path.display());
            }
            if report.violations.is_empty() && report.ok == report.sent {
                Ok(())
            } else {
                for violation in report.violations.iter().take(20) {
                    eprintln!("[load] VIOLATION: {violation}");
                }
                if report.violations.len() > 20 {
                    eprintln!("[load] … {} more", report.violations.len() - 20);
                }
                Err(invalid(
                    "load",
                    format!(
                        "{} violations, {}/{} ok",
                        report.violations.len(),
                        report.ok,
                        report.sent
                    ),
                ))
            }
        }
        "chaos" => chaos::serve(&parse_chaos(args)?),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(invalid(
            "wrsnd",
            format!("unknown mode `{other}`\n{}", usage()),
        )),
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wrsnd: {e}");
            ExitCode::FAILURE
        }
    }
}
