//! The experiment runner.
//!
//! ```text
//! cargo run -p wrsn-bench --release --bin exp -- --id fig6
//! cargo run -p wrsn-bench --release --bin exp -- --id all --json bench.json
//! cargo run -p wrsn-bench --release --bin exp -- --list
//! ```
//!
//! Tables are printed and also written as CSV under `target/experiments/`
//! (override with `--out-dir`). With `--id all`, whole experiments run in
//! parallel; each experiment's output is buffered and printed in the
//! canonical `EXPERIMENTS.md` order, so the transcript is byte-identical to
//! a sequential run. `--threads 1` (or `WRSN_THREADS=1`) forces sequential
//! execution; `--json <path>` additionally records wall-clock time per
//! experiment, observability counters, span timings, and CSA planner
//! micro-timings; `--trace <path>` writes the versioned JSONL trace stream
//! (one record per simulation event / charging session / health snapshot,
//! plus per-experiment counters) in canonical experiment order.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use serde::Value;
use wrsn_bench::experiments::common::synthetic_instance;
use wrsn_bench::obs::{self, Recorder, SpanStats, StatsRecorder};
use wrsn_bench::parallel;

/// Everything one experiment produced, buffered for in-order printing.
struct ExpOutput {
    id: &'static str,
    wall_s: f64,
    rendered: Vec<String>,
    csvs: Vec<(String, String)>,
    /// Serialized JSONL trace lines (empty unless observability is on).
    jsonl: Vec<String>,
    /// Nonzero counters at the end of the experiment.
    counters: Vec<(String, u64)>,
    /// Aggregated span wall-times (never part of the JSONL stream).
    spans: Vec<SpanStats>,
}

fn run_experiment(id: &'static str, observe: bool) -> Result<ExpOutput, String> {
    let started = Instant::now();
    let mut stats = StatsRecorder::new();
    let mut null = obs::NullRecorder;
    let rec: &mut dyn Recorder = if observe { &mut stats } else { &mut null };
    let tables = wrsn_bench::run_with(id, rec)?;
    let wall_s = started.elapsed().as_secs_f64();
    let mut jsonl = Vec::new();
    let mut counters = Vec::new();
    let mut spans = Vec::new();
    if observe {
        stats.emit_counters(id);
        counters = stats.counter_entries();
        spans = stats.spans().to_vec();
        for record in stats.records() {
            jsonl.push(
                obs::to_jsonl_line(record)
                    .map_err(|e| format!("{id}: cannot serialize trace record: {}", e.0))?,
            );
        }
    }
    Ok(ExpOutput {
        id,
        wall_s,
        rendered: tables.iter().map(|t| t.render()).collect(),
        csvs: tables
            .iter()
            .enumerate()
            .map(|(k, t)| (format!("{id}_{k}.csv"), t.to_csv()))
            .collect(),
        jsonl,
        counters,
        spans,
    })
}

fn emit(output: &ExpOutput, dir: &PathBuf) -> Result<(), String> {
    for rendered in &output.rendered {
        println!("{rendered}");
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for (name, csv) in &output.csvs {
        let file = dir.join(name);
        std::fs::write(&file, csv).map_err(|e| format!("cannot write {}: {e}", file.display()))?;
    }
    eprintln!(
        "[{}] done in {:.1} s; CSVs in {}",
        output.id,
        output.wall_s,
        dir.display()
    );
    Ok(())
}

/// Times `csa::plan` on the synthetic planner workload at several sizes.
fn planner_timings() -> Vec<(usize, f64)> {
    [10usize, 20, 40, 80]
        .iter()
        .map(|&n| {
            let inst = synthetic_instance(n, 42, 400.0, 1.0e9);
            let schedule = wrsn::core::csa::plan(&inst); // warm-up
            std::hint::black_box(&schedule);
            let mut repeats = 0u32;
            let started = Instant::now();
            while repeats < 3 || (started.elapsed().as_secs_f64() < 0.3 && repeats < 200) {
                std::hint::black_box(wrsn::core::csa::plan(std::hint::black_box(&inst)));
                repeats += 1;
            }
            (n, started.elapsed().as_secs_f64() / f64::from(repeats))
        })
        .collect()
}

fn json_report(outputs: &[ExpOutput], planner: &[(usize, f64)]) -> Value {
    let experiments = outputs
        .iter()
        .map(|o| {
            let mut entry = vec![
                ("id".to_string(), Value::Str(o.id.to_string())),
                ("wall_s".to_string(), Value::F64(o.wall_s)),
            ];
            if !o.counters.is_empty() {
                entry.push((
                    "counters".to_string(),
                    Value::Map(
                        o.counters
                            .iter()
                            .map(|(name, v)| (name.clone(), Value::U64(*v)))
                            .collect(),
                    ),
                ));
            }
            if !o.spans.is_empty() {
                entry.push((
                    "spans".to_string(),
                    Value::Seq(
                        o.spans
                            .iter()
                            .map(|s| {
                                Value::Map(vec![
                                    ("path".to_string(), Value::Str(s.path.clone())),
                                    ("total_s".to_string(), Value::F64(s.total_s)),
                                    ("count".to_string(), Value::U64(s.count)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Value::Map(entry)
        })
        .collect();
    let planner = planner
        .iter()
        .map(|&(n, secs)| {
            Value::Map(vec![
                ("n".to_string(), Value::U64(n as u64)),
                ("plan_s".to_string(), Value::F64(secs)),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "threads".to_string(),
            Value::U64(parallel::threads() as u64),
        ),
        ("experiments".to_string(), Value::Seq(experiments)),
        ("csa_planner".to_string(), Value::Seq(planner)),
    ])
}

fn usage() -> String {
    format!(
        "usage: exp --id <id>|all [--threads <n>] [--out-dir <dir>] [--json <path>] [--trace <path>] | --list\n\
         known ids: {}",
        wrsn_bench::ALL_IDS.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut out_dir = PathBuf::from("target").join("experiments");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for known in wrsn_bench::ALL_IDS {
                    println!("{known}");
                }
                return ExitCode::SUCCESS;
            }
            "--id" => {
                i += 1;
                id = args.get(i).cloned();
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_path = Some(path.clone()),
                    None => {
                        eprintln!("--trace needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => {
                        eprintln!("--out-dir needs a directory\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|raw| raw.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => std::env::set_var(parallel::THREADS_ENV, n.to_string()),
                    _ => {
                        eprintln!("--threads needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(id) = id else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let ids: Vec<&'static str> = if id == "all" {
        wrsn_bench::ALL_IDS.to_vec()
    } else {
        match wrsn_bench::ALL_IDS.iter().find(|known| **known == id) {
            Some(&known) => vec![known],
            None => {
                eprintln!("unknown experiment id `{id}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    };

    // Run whole experiments in parallel, but buffer their output and print
    // in canonical order so the transcript matches a sequential run.
    // Observability is on only when something consumes it: traces need the
    // records, the JSON report the counters/spans. The plain path keeps the
    // allocation-free NullRecorder.
    //
    // The panic-safe harness keeps one poisoned experiment from sinking the
    // campaign: a worker panic is retried once, a terminal failure lands in
    // that experiment's slot, and every healthy experiment still prints,
    // exports its CSVs, and contributes to the trace/JSON reports. Any
    // failure makes the exit code nonzero.
    let observe = trace_path.is_some() || json_path.is_some();
    let results = parallel::try_map_indexed(ids.len(), 1, |k| run_experiment(ids[k], observe));
    let mut outputs = Vec::with_capacity(results.len());
    let mut failures: Vec<String> = Vec::new();
    for (k, result) in results.into_iter().enumerate() {
        match result {
            Ok(Ok(output)) => outputs.push(output),
            Ok(Err(e)) => failures.push(format!("{}: {e}", ids[k])),
            Err(e) => failures.push(format!("{}: {e}", ids[k])),
        }
    }
    for output in &outputs {
        if let Err(e) = emit(output, &out_dir) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = trace_path {
        // One stream, canonical experiment order: each experiment contributes
        // a Meta header, its event/session/snapshot records, and a closing
        // Counters record.
        let mut stream = String::new();
        for output in &outputs {
            for line in &output.jsonl {
                stream.push_str(line);
                stream.push('\n');
            }
        }
        if let Err(e) = std::fs::write(&path, &stream) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let records: usize = outputs.iter().map(|o| o.jsonl.len()).sum();
        eprintln!("[trace] {records} records written to {path}");
    }

    if let Some(path) = json_path {
        let report = json_report(&outputs, &planner_timings());
        match serde_json::to_string(&report) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text + "\n") {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[json] timing report written to {path}");
            }
            Err(e) => {
                eprintln!("error: serialize timing report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "error: {} of {} experiment(s) failed:",
            failures.len(),
            ids.len()
        );
        for failure in &failures {
            eprintln!("  {failure}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
