//! The experiment runner.
//!
//! ```text
//! cargo run -p wrsn-bench --release --bin exp -- --id fig6
//! cargo run -p wrsn-bench --release --bin exp -- --id all
//! cargo run -p wrsn-bench --release --bin exp -- --list
//! ```
//!
//! Tables are printed and also written as CSV under `target/experiments/`.

use std::path::PathBuf;
use std::process::ExitCode;

fn csv_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

fn run_one(id: &str) -> Result<(), String> {
    let started = std::time::Instant::now();
    let tables = wrsn_bench::run(id)?;
    let dir = csv_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for (k, table) in tables.iter().enumerate() {
        println!("{}", table.render());
        let file = dir.join(format!("{id}_{k}.csv"));
        std::fs::write(&file, table.to_csv())
            .map_err(|e| format!("cannot write {}: {e}", file.display()))?;
    }
    eprintln!(
        "[{id}] done in {:.1} s; CSVs in {}",
        started.elapsed().as_secs_f64(),
        dir.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for known in wrsn_bench::ALL_IDS {
                    println!("{known}");
                }
                return ExitCode::SUCCESS;
            }
            "--id" => {
                i += 1;
                id = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument `{other}`; usage: exp --id <id>|all | --list");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(id) = id else {
        eprintln!("usage: exp --id <id>|all | --list");
        return ExitCode::FAILURE;
    };
    let ids: Vec<&str> = if id == "all" {
        wrsn_bench::ALL_IDS.to_vec()
    } else {
        vec![id.as_str()]
    };
    for id in ids {
        if let Err(e) = run_one(id) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
