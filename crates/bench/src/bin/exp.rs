//! The experiment runner.
//!
//! ```text
//! cargo run -p wrsn-bench --release --bin exp -- --id fig6
//! cargo run -p wrsn-bench --release --bin exp -- --id all --json bench.json
//! cargo run -p wrsn-bench --release --bin exp -- --id all --timeout-s 300
//! cargo run -p wrsn-bench --release --bin exp -- --resume target/experiments
//! cargo run -p wrsn-bench --release --bin exp -- --list
//! ```
//!
//! Tables are printed and also written as CSV under `target/experiments/`
//! (override with `--out-dir`). With `--id all`, whole experiments run in
//! parallel; each experiment's output is buffered and printed in the
//! canonical `EXPERIMENTS.md` order, so the transcript is byte-identical to
//! a sequential run. `--threads 1` (or `WRSN_THREADS=1`) forces sequential
//! execution; `--json <path>` additionally records wall-clock time per
//! experiment, observability counters, span timings, and CSA planner
//! micro-timings; `--trace <path>` writes the versioned JSONL trace stream
//! in canonical experiment order.
//!
//! **Durable runs.** Every campaign keeps a [`manifest`] under `--out-dir`:
//! per-experiment status transitions are persisted atomically as they
//! happen, and a completed experiment's full output is stored as a
//! digest-pinned artifact. `--resume <dir>` replays completed experiments
//! byte-for-byte from their artifacts and re-runs the rest (experiments are
//! deterministic), so the resumed transcript, CSVs, and trace are identical
//! to an uninterrupted run. `--timeout-s <s>` (or `WRSN_TIMEOUT_S`) arms a
//! watchdog: a hung experiment is cancelled at its wall-clock deadline via
//! the engine's cooperative cancellation token and reported as a typed
//! timeout while the rest of the suite completes.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::Value;
use wrsn::sim::store::write_atomic;
use wrsn_bench::error::BenchError;
use wrsn_bench::experiments::common::synthetic_instance;
use wrsn_bench::manifest::{self, ExpStatus, FailKind, Manifest, StoredOutput};
use wrsn_bench::obs::{self, Counter, Recorder, SpanStats, StatsRecorder};
use wrsn_bench::parallel::{self, FailureKind};
use wrsn_bench::service::git_rev;

/// Everything one experiment produced, buffered for in-order printing.
struct ExpOutput {
    id: &'static str,
    wall_s: f64,
    rendered: Vec<String>,
    csvs: Vec<(String, String)>,
    /// Serialized JSONL trace lines (empty unless observability is on).
    jsonl: Vec<String>,
    /// Nonzero counters at the end of the experiment.
    counters: Vec<(String, u64)>,
    /// Aggregated span wall-times (never part of the JSONL stream, never
    /// persisted — a replayed experiment has none).
    spans: Vec<SpanStats>,
    /// Effective worker threads the experiment's worlds ran with, recorded
    /// at run time (a replay reports the original run's value).
    threads: usize,
    /// Effective spatial shards, recorded the same way.
    shards: usize,
}

impl ExpOutput {
    fn to_stored(&self) -> StoredOutput {
        StoredOutput {
            id: self.id.to_string(),
            wall_s: self.wall_s,
            rendered: self.rendered.clone(),
            csvs: self.csvs.clone(),
            jsonl: self.jsonl.clone(),
            counters: self.counters.clone(),
            threads: self.threads,
            shards: self.shards,
        }
    }

    fn from_stored(id: &'static str, stored: StoredOutput) -> Self {
        ExpOutput {
            id,
            wall_s: stored.wall_s,
            rendered: stored.rendered,
            csvs: stored.csvs,
            jsonl: stored.jsonl,
            counters: stored.counters,
            spans: Vec::new(),
            threads: stored.threads,
            shards: stored.shards,
        }
    }
}

fn run_experiment(id: &'static str, observe: bool) -> Result<ExpOutput, BenchError> {
    let started = Instant::now();
    let mut stats = StatsRecorder::new();
    let mut null = obs::NullRecorder;
    let rec: &mut dyn Recorder = if observe { &mut stats } else { &mut null };
    let tables = wrsn_bench::run_with(id, rec)?;
    let wall_s = started.elapsed().as_secs_f64();
    let mut jsonl = Vec::new();
    let mut counters = Vec::new();
    let mut spans = Vec::new();
    if observe {
        stats.emit_counters(id);
        counters = stats.counter_entries();
        spans = stats.spans().to_vec();
        for record in stats.records() {
            jsonl.push(obs::to_jsonl_line(record).map_err(|e| BenchError::Trace {
                id: id.to_string(),
                detail: e.0,
            })?);
        }
    }
    Ok(ExpOutput {
        id,
        wall_s,
        rendered: tables.iter().map(|t| t.render()).collect(),
        csvs: tables
            .iter()
            .enumerate()
            .map(|(k, t)| (format!("{id}_{k}.csv"), t.to_csv()))
            .collect(),
        jsonl,
        counters,
        spans,
        // Recorded at run time so a `--resume` replay reports the strategy
        // the numbers were actually produced with, not today's environment.
        threads: parallel::threads(),
        shards: parallel::shards(),
    })
}

fn emit(output: &ExpOutput, dir: &Path) -> Result<(), BenchError> {
    for rendered in &output.rendered {
        println!("{rendered}");
    }
    std::fs::create_dir_all(dir).map_err(|e| BenchError::io("create", dir, &e))?;
    for (name, csv) in &output.csvs {
        let file = dir.join(name);
        // Atomic like every other campaign artifact: a crash mid-write must
        // not leave a torn CSV at the final path.
        write_atomic(&file, csv.as_bytes()).map_err(|e| BenchError::Manifest {
            path: file.clone(),
            detail: e.to_string(),
        })?;
    }
    eprintln!(
        "[{}] done in {:.1} s; CSVs in {}",
        output.id,
        output.wall_s,
        dir.display()
    );
    Ok(())
}

/// Times `csa::plan` on the synthetic planner workload at several sizes.
fn planner_timings() -> Vec<(usize, f64)> {
    [10usize, 20, 40, 80]
        .iter()
        .map(|&n| {
            let inst = synthetic_instance(n, 42, 400.0, 1.0e9);
            let schedule = wrsn::core::csa::plan(&inst); // warm-up
            std::hint::black_box(&schedule);
            let mut repeats = 0u32;
            let started = Instant::now();
            while repeats < 3 || (started.elapsed().as_secs_f64() < 0.3 && repeats < 200) {
                std::hint::black_box(wrsn::core::csa::plan(std::hint::black_box(&inst)));
                repeats += 1;
            }
            (n, started.elapsed().as_secs_f64() / f64::from(repeats))
        })
        .collect()
}

/// Campaign-level durability tallies for the `--json` report. These stay out
/// of the JSONL trace on purpose: the trace must be byte-identical between
/// an uninterrupted run and a resumed one.
struct Campaign {
    run_id: String,
    resumes: u64,
    timeouts: u64,
}

fn json_report(outputs: &[ExpOutput], planner: &[(usize, f64)], campaign: &Campaign) -> Value {
    let experiments = outputs
        .iter()
        .map(|o| {
            let mut entry = vec![
                ("id".to_string(), Value::Str(o.id.to_string())),
                ("wall_s".to_string(), Value::F64(o.wall_s)),
                ("threads".to_string(), Value::U64(o.threads as u64)),
                ("shards".to_string(), Value::U64(o.shards as u64)),
            ];
            if !o.counters.is_empty() {
                entry.push((
                    "counters".to_string(),
                    Value::Map(
                        o.counters
                            .iter()
                            .map(|(name, v)| (name.clone(), Value::U64(*v)))
                            .collect(),
                    ),
                ));
            }
            if !o.spans.is_empty() {
                entry.push((
                    "spans".to_string(),
                    Value::Seq(
                        o.spans
                            .iter()
                            .map(|s| {
                                Value::Map(vec![
                                    ("path".to_string(), Value::Str(s.path.clone())),
                                    ("total_s".to_string(), Value::F64(s.total_s)),
                                    ("count".to_string(), Value::U64(s.count)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Value::Map(entry)
        })
        .collect();
    let planner = planner
        .iter()
        .map(|&(n, secs)| {
            Value::Map(vec![
                ("n".to_string(), Value::U64(n as u64)),
                ("plan_s".to_string(), Value::F64(secs)),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "threads".to_string(),
            Value::U64(parallel::threads() as u64),
        ),
        ("shards".to_string(), Value::U64(parallel::shards() as u64)),
        ("git_rev".to_string(), Value::Str(git_rev())),
        (
            "campaign".to_string(),
            Value::Map(vec![
                ("run_id".to_string(), Value::Str(campaign.run_id.clone())),
                (
                    Counter::Resumes.name().to_string(),
                    Value::U64(campaign.resumes),
                ),
                (
                    Counter::Timeouts.name().to_string(),
                    Value::U64(campaign.timeouts),
                ),
            ]),
        ),
        ("experiments".to_string(), Value::Seq(experiments)),
        ("csa_planner".to_string(), Value::Seq(planner)),
    ])
}

fn usage() -> String {
    format!(
        "usage: exp --id <id>[,<id>...]|all [--threads <n>] [--out-dir <dir>] [--json <path>] [--trace <path>] [--timeout-s <s>]\n\
         \x20      exp --resume <dir> [--threads <n>] [--json <path>] [--trace <path>] [--timeout-s <s>]\n\
         \x20      exp --list\n\
         known ids: {}\n\
         extra ids (not in `all`): {}",
        wrsn_bench::ALL_IDS.join(", "),
        wrsn_bench::EXTRA_IDS.join(", ")
    )
}

/// Parsed and validated command line.
struct Cli {
    /// `--id` target (absent in resume mode).
    id: Option<String>,
    /// `--resume <dir>`.
    resume: Option<PathBuf>,
    json_path: Option<String>,
    trace_path: Option<String>,
    out_dir: PathBuf,
    /// Watchdog deadline per experiment, seconds.
    timeout_s: Option<f64>,
}

fn flag_value<'a>(
    args: &'a [String],
    i: &mut usize,
    flag: &'static str,
    what: &str,
) -> Result<&'a str, BenchError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or(BenchError::InvalidFlag {
            flag,
            detail: format!("needs {what}"),
        })
}

fn parse_timeout(raw: &str, flag: &'static str) -> Result<f64, BenchError> {
    match raw.trim().parse::<f64>() {
        Ok(s) if s.is_finite() && s > 0.0 => Ok(s),
        _ => Err(BenchError::InvalidFlag {
            flag,
            detail: format!("needs a positive number of seconds, got `{raw}`"),
        }),
    }
}

/// Parses the command line; `None` means `--list` handled everything.
fn parse_cli(args: &[String]) -> Result<Option<Cli>, BenchError> {
    let mut cli = Cli {
        id: None,
        resume: None,
        json_path: None,
        trace_path: None,
        out_dir: PathBuf::from("target").join("experiments"),
        timeout_s: None,
    };
    let mut out_dir_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for known in wrsn_bench::ALL_IDS.iter().chain(wrsn_bench::EXTRA_IDS) {
                    println!("{known}");
                }
                return Ok(None);
            }
            "--id" => {
                cli.id = Some(flag_value(args, &mut i, "--id", "an experiment id")?.to_string());
            }
            "--resume" => {
                cli.resume = Some(PathBuf::from(flag_value(
                    args,
                    &mut i,
                    "--resume",
                    "a campaign directory",
                )?));
            }
            "--json" => {
                cli.json_path =
                    Some(flag_value(args, &mut i, "--json", "a file path")?.to_string());
            }
            "--trace" => {
                cli.trace_path =
                    Some(flag_value(args, &mut i, "--trace", "a file path")?.to_string());
            }
            "--out-dir" => {
                cli.out_dir = PathBuf::from(flag_value(args, &mut i, "--out-dir", "a directory")?);
                out_dir_set = true;
            }
            "--threads" => {
                let raw = flag_value(args, &mut i, "--threads", "a positive integer")?;
                match raw.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => std::env::set_var(parallel::THREADS_ENV, n.to_string()),
                    _ => {
                        return Err(BenchError::InvalidFlag {
                            flag: "--threads",
                            detail: format!("needs a positive integer, got `{raw}`"),
                        })
                    }
                }
            }
            "--timeout-s" => {
                let raw = flag_value(args, &mut i, "--timeout-s", "a positive number of seconds")?;
                cli.timeout_s = Some(parse_timeout(raw, "--timeout-s")?);
            }
            other => {
                return Err(BenchError::InvalidFlag {
                    flag: "--id",
                    detail: format!("unknown argument `{other}`"),
                })
            }
        }
        i += 1;
    }
    if cli.id.is_some() && cli.resume.is_some() {
        return Err(BenchError::InvalidFlag {
            flag: "--resume",
            detail: "is mutually exclusive with --id".to_string(),
        });
    }
    if let Some(dir) = &cli.resume {
        if out_dir_set {
            return Err(BenchError::InvalidFlag {
                flag: "--out-dir",
                detail: "is implied by --resume (the campaign directory)".to_string(),
            });
        }
        cli.out_dir = dir.clone();
    }
    if cli.timeout_s.is_none() {
        if let Ok(raw) = std::env::var(parallel::TIMEOUT_ENV) {
            cli.timeout_s = Some(parse_timeout(&raw, "WRSN_TIMEOUT_S")?);
        }
    }
    Ok(Some(cli))
}

/// Fails fast — before any experiment runs — if `--out-dir` is a file or not
/// writable.
fn probe_out_dir(dir: &Path) -> Result<(), BenchError> {
    if dir.exists() && !dir.is_dir() {
        return Err(BenchError::InvalidFlag {
            flag: "--out-dir",
            detail: format!("{} exists and is not a directory", dir.display()),
        });
    }
    std::fs::create_dir_all(dir).map_err(|e| BenchError::io("create", dir, &e))?;
    let probe = dir.join(format!(".probe.{}", std::process::id()));
    std::fs::write(&probe, b"probe").map_err(|e| BenchError::io("write to", dir, &e))?;
    std::fs::remove_file(&probe).map_err(|e| BenchError::io("clean up probe in", dir, &e))?;
    Ok(())
}

fn fresh_run_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("{}-{nanos:x}", std::process::id())
}

/// One terminal experiment failure, for the report and exit code.
struct Failure {
    error: BenchError,
    kind: FailKind,
}

/// Marks `id`'s manifest entry and persists the manifest. A ledger that
/// cannot be written fails the experiment (and ultimately the campaign):
/// continuing without durable status would lie about resumability.
fn mark(
    manifest: &Mutex<Manifest>,
    out_dir: &Path,
    id: &str,
    update: impl FnOnce(&mut manifest::ManifestEntry),
) -> Result<(), BenchError> {
    let mut guard = manifest.lock().expect("manifest lock");
    if let Some(entry) = guard.entry_mut(id) {
        update(entry);
    }
    guard.save(out_dir)
}

fn run_campaign(cli: &Cli) -> Result<ExitCode, BenchError> {
    probe_out_dir(&cli.out_dir)?;
    let resuming = cli.resume.is_some();

    // Build (or reload) the manifest and decide what to observe.
    let (manifest, ids): (Manifest, Vec<&'static str>) = if resuming {
        let mut m = Manifest::load(&cli.out_dir)?;
        if cli.trace_path.is_some() && !m.observed {
            return Err(BenchError::Manifest {
                path: Manifest::path(&cli.out_dir),
                detail: "original run did not collect observability; \
                         a resumed --trace cannot match it — re-run with --trace instead"
                    .to_string(),
            });
        }
        m.resumes += 1;
        // Running (in-flight at the crash) and Failed entries re-run from
        // scratch; experiments are deterministic so the bytes still match.
        for entry in &mut m.entries {
            if entry.status != ExpStatus::Done {
                entry.status = ExpStatus::Pending;
                entry.error = None;
                entry.failure = None;
            }
        }
        let ids = m
            .entries
            .iter()
            .map(|e| {
                wrsn_bench::ALL_IDS
                    .iter()
                    .chain(wrsn_bench::EXTRA_IDS)
                    .copied()
                    .find(|known| *known == e.id)
                    .expect("manifest ids validated on load")
            })
            .collect();
        (m, ids)
    } else {
        let id = cli.id.as_deref().expect("either --id or --resume");
        // `--id` takes a comma-separated list; `all` expands to the paper
        // suite (extra ids like `scale` must be named explicitly).
        let mut ids: Vec<&'static str> = Vec::new();
        for token in id.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if token == "all" {
                ids.extend(wrsn_bench::ALL_IDS);
                continue;
            }
            match wrsn_bench::ALL_IDS
                .iter()
                .chain(wrsn_bench::EXTRA_IDS)
                .find(|known| **known == token)
            {
                Some(&known) => ids.push(known),
                None => return Err(BenchError::unknown_id(token)),
            }
        }
        let mut seen = std::collections::HashSet::new();
        ids.retain(|id| seen.insert(*id));
        if ids.is_empty() {
            return Err(BenchError::unknown_id(id));
        }
        let observe = cli.trace_path.is_some() || cli.json_path.is_some();
        (
            Manifest::new(
                fresh_run_id(),
                &ids,
                parallel::threads(),
                observe,
                cli.timeout_s,
            ),
            ids,
        )
    };
    // Observability on resume follows the original run so replayed artifacts
    // and re-run experiments agree on what the trace contains.
    let observe = manifest.observed;
    let run_id = manifest.run_id.clone();
    let resumes = manifest.resumes;
    let timeout_s = cli.timeout_s.or(manifest.timeout_s);
    manifest.save(&cli.out_dir)?;
    let manifest = Mutex::new(manifest);

    // Run whole experiments in parallel, but buffer their output and print
    // in canonical order so the transcript matches a sequential run. The
    // panic-safe harness keeps one poisoned experiment from sinking the
    // campaign, and with a deadline the watchdog cancels hung experiments
    // through the engine's cooperative cancellation token. Every status
    // transition is persisted atomically, so a SIGKILL at any point leaves a
    // resumable manifest.
    let deadline = timeout_s.map(Duration::from_secs_f64);
    let out_dir = cli.out_dir.as_path();
    let results = parallel::try_map_indexed_watched(ids.len(), 1, deadline, |k| {
        let id = ids[k];
        let replay = {
            let guard = manifest.lock().expect("manifest lock");
            guard
                .entries
                .iter()
                .find(|e| e.id == id && e.status == ExpStatus::Done)
                .and_then(|e| e.digest.clone())
        };
        if let Some(digest) = replay {
            // Completed in a previous run: replay the digest-pinned artifact
            // byte-for-byte. A corrupt artifact falls through to a re-run —
            // experiments are deterministic, so the bytes come out the same.
            if let Ok(stored) = manifest::load_artifact(out_dir, id, &digest) {
                return Ok(ExpOutput::from_stored(id, stored));
            }
        }
        mark(&manifest, out_dir, id, |e| {
            e.status = ExpStatus::Running;
        })?;
        let output = run_experiment(id, observe)?;
        let digest = manifest::save_artifact(out_dir, &output.to_stored())?;
        mark(&manifest, out_dir, id, |e| {
            e.status = ExpStatus::Done;
            e.wall_s = output.wall_s;
            e.digest = Some(digest.clone());
        })?;
        Ok(output)
    });

    let mut outputs = Vec::with_capacity(results.len());
    let mut failures: Vec<Failure> = Vec::new();
    for (k, result) in results.into_iter().enumerate() {
        let id = ids[k];
        let failure = match result {
            Ok(Ok(output)) => {
                outputs.push(output);
                continue;
            }
            Ok(Err(e)) => Failure {
                error: e,
                kind: FailKind::Panic,
            },
            Err(worker) => Failure {
                kind: match worker.kind {
                    FailureKind::Timeout => FailKind::Timeout,
                    FailureKind::Panic => FailKind::Panic,
                },
                error: BenchError::Worker {
                    id: id.to_string(),
                    source: worker,
                },
            },
        };
        mark(&manifest, out_dir, id, |e| {
            e.status = ExpStatus::Failed;
            e.error = Some(failure.error.to_string());
            e.failure = Some(failure.kind);
        })?;
        failures.push(failure);
    }

    for output in &outputs {
        emit(output, out_dir)?;
    }

    if let Some(path) = &cli.trace_path {
        // One stream, canonical experiment order: each experiment contributes
        // a Meta header, its event/session/snapshot records, and a closing
        // Counters record.
        let mut stream = String::new();
        for output in &outputs {
            for line in &output.jsonl {
                stream.push_str(line);
                stream.push('\n');
            }
        }
        write_atomic(Path::new(path), stream.as_bytes()).map_err(|e| BenchError::Manifest {
            path: PathBuf::from(path),
            detail: e.to_string(),
        })?;
        let records: usize = outputs.iter().map(|o| o.jsonl.len()).sum();
        eprintln!("[trace] {records} records written to {path}");
    }

    if let Some(path) = &cli.json_path {
        let campaign = Campaign {
            run_id,
            resumes,
            timeouts: failures
                .iter()
                .filter(|f| f.kind == FailKind::Timeout)
                .count() as u64,
        };
        let report = json_report(&outputs, &planner_timings(), &campaign);
        let text = serde_json::to_string(&report).map_err(|e| BenchError::Trace {
            id: "report".to_string(),
            detail: e.0,
        })?;
        write_atomic(Path::new(path), (text + "\n").as_bytes()).map_err(|e| {
            BenchError::Manifest {
                path: PathBuf::from(path),
                detail: e.to_string(),
            }
        })?;
        eprintln!("[json] timing report written to {path}");
    }

    if !failures.is_empty() {
        eprintln!(
            "error: {} of {} experiment(s) failed:",
            failures.len(),
            ids.len()
        );
        for failure in &failures {
            let kind = match failure.kind {
                FailKind::Panic => "panic",
                FailKind::Timeout => "timeout",
            };
            eprintln!("  [{kind}] {}", failure.error);
        }
        eprintln!(
            "resume the completed portion with: exp --resume {}",
            out_dir.display()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if cli.id.is_none() && cli.resume.is_none() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    match run_campaign(&cli) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(
                e,
                BenchError::InvalidFlag { .. } | BenchError::UnknownId { .. }
            ) {
                eprintln!("{}", usage());
            }
            ExitCode::FAILURE
        }
    }
}
