//! The experiment runner.
//!
//! ```text
//! cargo run -p wrsn-bench --release --bin exp -- --id fig6
//! cargo run -p wrsn-bench --release --bin exp -- --id all --json bench.json
//! cargo run -p wrsn-bench --release --bin exp -- --list
//! ```
//!
//! Tables are printed and also written as CSV under `target/experiments/`
//! (override with `--out-dir`). With `--id all`, whole experiments run in
//! parallel; each experiment's output is buffered and printed in the
//! canonical `EXPERIMENTS.md` order, so the transcript is byte-identical to
//! a sequential run. `--threads 1` (or `WRSN_THREADS=1`) forces sequential
//! execution; `--json <path>` additionally records wall-clock time per
//! experiment and CSA planner micro-timings.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use serde::Value;
use wrsn_bench::experiments::common::synthetic_instance;
use wrsn_bench::parallel;

/// Everything one experiment produced, buffered for in-order printing.
struct ExpOutput {
    id: &'static str,
    wall_s: f64,
    rendered: Vec<String>,
    csvs: Vec<(String, String)>,
}

fn run_experiment(id: &'static str) -> Result<ExpOutput, String> {
    let started = Instant::now();
    let tables = wrsn_bench::run(id)?;
    let wall_s = started.elapsed().as_secs_f64();
    Ok(ExpOutput {
        id,
        wall_s,
        rendered: tables.iter().map(|t| t.render()).collect(),
        csvs: tables
            .iter()
            .enumerate()
            .map(|(k, t)| (format!("{id}_{k}.csv"), t.to_csv()))
            .collect(),
    })
}

fn emit(output: &ExpOutput, dir: &PathBuf) -> Result<(), String> {
    for rendered in &output.rendered {
        println!("{rendered}");
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for (name, csv) in &output.csvs {
        let file = dir.join(name);
        std::fs::write(&file, csv).map_err(|e| format!("cannot write {}: {e}", file.display()))?;
    }
    eprintln!(
        "[{}] done in {:.1} s; CSVs in {}",
        output.id,
        output.wall_s,
        dir.display()
    );
    Ok(())
}

/// Times `csa::plan` on the synthetic planner workload at several sizes.
fn planner_timings() -> Vec<(usize, f64)> {
    [10usize, 20, 40, 80]
        .iter()
        .map(|&n| {
            let inst = synthetic_instance(n, 42, 400.0, 1.0e9);
            let schedule = wrsn::core::csa::plan(&inst); // warm-up
            std::hint::black_box(&schedule);
            let mut repeats = 0u32;
            let started = Instant::now();
            while repeats < 3 || (started.elapsed().as_secs_f64() < 0.3 && repeats < 200) {
                std::hint::black_box(wrsn::core::csa::plan(std::hint::black_box(&inst)));
                repeats += 1;
            }
            (n, started.elapsed().as_secs_f64() / f64::from(repeats))
        })
        .collect()
}

fn json_report(outputs: &[ExpOutput], planner: &[(usize, f64)]) -> Value {
    let experiments = outputs
        .iter()
        .map(|o| {
            Value::Map(vec![
                ("id".to_string(), Value::Str(o.id.to_string())),
                ("wall_s".to_string(), Value::F64(o.wall_s)),
            ])
        })
        .collect();
    let planner = planner
        .iter()
        .map(|&(n, secs)| {
            Value::Map(vec![
                ("n".to_string(), Value::U64(n as u64)),
                ("plan_s".to_string(), Value::F64(secs)),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "threads".to_string(),
            Value::U64(parallel::threads() as u64),
        ),
        ("experiments".to_string(), Value::Seq(experiments)),
        ("csa_planner".to_string(), Value::Seq(planner)),
    ])
}

fn usage() -> String {
    format!(
        "usage: exp --id <id>|all [--threads <n>] [--out-dir <dir>] [--json <path>] | --list\n\
         known ids: {}",
        wrsn_bench::ALL_IDS.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut out_dir = PathBuf::from("target").join("experiments");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for known in wrsn_bench::ALL_IDS {
                    println!("{known}");
                }
                return ExitCode::SUCCESS;
            }
            "--id" => {
                i += 1;
                id = args.get(i).cloned();
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => {
                        eprintln!("--out-dir needs a directory\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|raw| raw.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => std::env::set_var(parallel::THREADS_ENV, n.to_string()),
                    _ => {
                        eprintln!("--threads needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(id) = id else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let ids: Vec<&'static str> = if id == "all" {
        wrsn_bench::ALL_IDS.to_vec()
    } else {
        match wrsn_bench::ALL_IDS.iter().find(|known| **known == id) {
            Some(&known) => vec![known],
            None => {
                eprintln!("unknown experiment id `{id}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    };

    // Run whole experiments in parallel, but buffer their output and print
    // in canonical order so the transcript matches a sequential run.
    let results = parallel::map_indexed(ids.len(), |k| run_experiment(ids[k]));
    let mut outputs = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Ok(output) => outputs.push(output),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for output in &outputs {
        if let Err(e) = emit(output, &out_dir) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = json_path {
        let report = json_report(&outputs, &planner_timings());
        match serde_json::to_string(&report) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text + "\n") {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[json] timing report written to {path}");
            }
            Err(e) => {
                eprintln!("error: serialize timing report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
