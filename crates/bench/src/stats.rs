//! Small statistics helpers for multi-seed sweeps and latency reporting.
//!
//! Order statistics over an *empty* sample are explicit: [`min`], [`max`],
//! and [`percentile`] return `None` instead of a sentinel. The old contract
//! (`0.0` for empty input) read as a real measurement downstream — a latency
//! dashboard would show "0 ms worst-case" for a window that simply had no
//! samples. `Option<f64>` serializes as JSON `null` through the vendored
//! serde, which is what the `wrsnd` latency reports emit.

/// Mean of `xs` (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of `xs` (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// `(mean, std_dev)` in one call.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

/// Minimum of `xs` (`NaN`-free input assumed); `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum of `xs` (`NaN`-free input assumed); `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// The `p`-th percentile of `xs` (`p` in `0..=100`), by linear interpolation
/// between closest ranks on a sorted copy — the convention most latency
/// tooling uses, so `percentile(xs, 50.0)` of two samples is their midpoint.
///
/// Returns `None` for an empty sample or a non-finite / out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !p.is_finite() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (50th percentile); `None` for an empty sample.
pub fn p50(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// 99th percentile; `None` for an empty sample.
pub fn p99(xs: &[f64]) -> Option<f64> {
    percentile(xs, 99.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.1380899353).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        let (m, s) = mean_std(&[3.0, 3.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(7.0));
    }

    #[test]
    fn min_max_of_empty_slice_are_none() {
        // Empty-sample order statistics are explicit: `None`, never a 0.0
        // that a dashboard would read as "0 ms worst case" (and never the
        // ±infinity that used to leak into CSV cells as "inf"/"-inf").
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn percentiles_interpolate_between_ranks() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert_eq!(p50(&xs), Some(25.0));
        // p99 of 4 samples: rank 2.97 → between 30 and 40.
        let p = p99(&xs).unwrap();
        assert!((p - 39.7).abs() < 1e-9, "p99 = {p}");
    }

    #[test]
    fn percentiles_are_order_independent() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        let shuffled = [4.0, 1.0, 5.0, 3.0, 2.0];
        assert_eq!(p50(&sorted), Some(3.0));
        assert_eq!(p50(&shuffled), Some(3.0));
        assert_eq!(p99(&sorted), p99(&shuffled));
    }

    #[test]
    fn percentile_rejects_empty_and_invalid_p() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(p50(&[]), None);
        assert_eq!(p99(&[]), None);
        assert_eq!(percentile(&[1.0], -1.0), None);
        assert_eq!(percentile(&[1.0], 100.5), None);
        assert_eq!(percentile(&[1.0], f64::NAN), None);
        assert_eq!(percentile(&[1.0], 50.0), Some(1.0));
    }

    #[test]
    fn empty_order_statistics_serialize_as_null() {
        // The wire contract for daemon latency reports: an absent statistic
        // is JSON `null`, not a fake zero.
        let text = serde_json::to_string(&min(&[])).expect("serialize");
        assert_eq!(text, "null");
        let text = serde_json::to_string(&p99(&[4.0])).expect("serialize");
        assert_eq!(text, "4");
    }
}
