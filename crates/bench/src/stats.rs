//! Small statistics helpers for multi-seed sweeps.

/// Mean of `xs` (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of `xs` (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// `(mean, std_dev)` in one call.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

/// Minimum of `xs` (`NaN`-free input assumed; 0 for empty).
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of `xs` (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.1380899353).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        let (m, s) = mean_std(&[3.0, 3.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.0);
    }

    #[test]
    fn min_max_of_empty_slice_are_zero() {
        // Documented contract: empty input yields 0.0, not ±infinity (which
        // used to leak into CSV cells as "inf"/"-inf").
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert!(min(&[]).is_finite());
        assert!(max(&[]).is_finite());
    }
}
