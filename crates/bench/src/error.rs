//! Typed errors for the experiment harness.
//!
//! The `exp` runner used to thread `Result<_, String>` everywhere, which
//! flattened every failure into prose and lost the underlying cause. The
//! variants here keep their sources ([`std::error::Error::source`] chains
//! into [`parallel::WorkerError`] and [`wrsn::sim::SimError`]) so the runner
//! can distinguish an unknown id from a worker timeout from a half-written
//! manifest — and exit with a message that still reads exactly like the old
//! one.

use std::fmt;
use std::path::PathBuf;

use wrsn::sim::SimError;

use crate::parallel::WorkerError;

/// Everything the experiment harness can fail with.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BenchError {
    /// `--id` (or a manifest entry) named an experiment that does not exist.
    UnknownId {
        /// The offending id.
        id: String,
    },
    /// A command-line flag had a missing or invalid value.
    InvalidFlag {
        /// The flag, e.g. `--threads`.
        flag: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// A work item failed terminally in the parallel harness (panicked out
    /// of retries, or was cancelled by the watchdog), annotated with the
    /// experiment id the index mapped to.
    Worker {
        /// The experiment that failed.
        id: String,
        /// The underlying worker failure.
        source: WorkerError,
    },
    /// The simulation engine returned a typed error.
    Sim {
        /// The experiment that failed.
        id: String,
        /// The underlying engine error.
        source: SimError,
    },
    /// A filesystem operation failed (CSV export, report writes, probes).
    Io {
        /// What the harness was doing, e.g. `"write CSV"`.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The stringified [`std::io::Error`].
        detail: String,
    },
    /// A trace record could not be serialized to JSONL.
    Trace {
        /// The experiment whose record failed.
        id: String,
        /// The serializer's message.
        detail: String,
    },
    /// The run manifest was missing, unreadable, or inconsistent.
    Manifest {
        /// The manifest (or artifact) file involved.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
}

impl BenchError {
    /// An [`BenchError::Io`] from a raw [`std::io::Error`].
    pub fn io(op: &'static str, path: impl Into<PathBuf>, e: &std::io::Error) -> Self {
        BenchError::Io {
            op,
            path: path.into(),
            detail: e.to_string(),
        }
    }

    /// The unknown-id error with the canonical id listing.
    pub fn unknown_id(id: &str) -> Self {
        BenchError::UnknownId { id: id.to_string() }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownId { id } => write!(
                f,
                "unknown experiment id `{id}`; known ids: {}",
                crate::ALL_IDS.join(", ")
            ),
            BenchError::InvalidFlag { flag, detail } => write!(f, "{flag}: {detail}"),
            BenchError::Worker { id, source } => write!(f, "{id}: {source}"),
            BenchError::Sim { id, source } => write!(f, "{id}: simulation failed: {source}"),
            BenchError::Io { op, path, detail } => {
                write!(f, "cannot {op} {}: {detail}", path.display())
            }
            BenchError::Trace { id, detail } => {
                write!(f, "{id}: cannot serialize trace record: {detail}")
            }
            BenchError::Manifest { path, detail } => {
                write!(f, "manifest {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Worker { source, .. } => Some(source),
            BenchError::Sim { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::FailureKind;

    #[test]
    fn unknown_id_lists_known_ids() {
        let e = BenchError::unknown_id("fig99");
        let text = e.to_string();
        assert!(text.contains("fig99"));
        assert!(text.contains("fig2"));
        assert!(text.contains("faults"));
    }

    #[test]
    fn worker_and_sim_errors_chain_their_sources() {
        let e = BenchError::Worker {
            id: "fig5".to_string(),
            source: WorkerError {
                index: 4,
                attempts: 1,
                kind: FailureKind::Timeout,
                message: "cancelled at its wall-clock deadline".to_string(),
            },
        };
        assert!(e.to_string().contains("fig5"));
        assert!(e.to_string().contains("timed out"));
        assert!(std::error::Error::source(&e).is_some());

        let e = BenchError::Sim {
            id: "fig6".to_string(),
            source: SimError::Cancelled,
        };
        assert!(e.to_string().contains("cancelled"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_helper_keeps_op_and_path() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied");
        let e = BenchError::io("write CSV", "/tmp/x.csv", &io);
        let text = e.to_string();
        assert!(text.contains("write CSV"));
        assert!(text.contains("/tmp/x.csv"));
        assert!(text.contains("denied"));
    }
}
