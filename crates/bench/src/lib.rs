//! # wrsn-bench — the evaluation harness
//!
//! One module per experiment in `EXPERIMENTS.md`. Run them with
//!
//! ```text
//! cargo run -p wrsn-bench --release --bin exp -- --id fig6
//! cargo run -p wrsn-bench --release --bin exp -- --id all
//! ```
//!
//! Each experiment returns [`Table`]s that are printed as aligned ASCII and
//! exported as CSV under `target/experiments/`. Criterion micro-benchmarks
//! (`cargo bench -p wrsn-bench`) cover the algorithmic costs behind `tab1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod stats;
pub mod table;

pub use wrsn::sim::parallel;

pub use table::Table;

/// All experiment ids, in the order of `EXPERIMENTS.md`.
pub const ALL_IDS: &[&str] = &[
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "tab1", "tab2", "tab3",
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error string for unknown ids.
pub fn run(id: &str) -> Result<Vec<Table>, String> {
    match id {
        "fig2" => Ok(experiments::fig2::run()),
        "fig3" => Ok(experiments::fig3::run()),
        "fig4" => Ok(experiments::fig4::run()),
        "fig5" => Ok(experiments::fig5::run()),
        "fig6" => Ok(experiments::fig6::run()),
        "fig7" => Ok(experiments::fig7::run()),
        "fig8" => Ok(experiments::fig8::run()),
        "fig9" => Ok(experiments::fig9::run()),
        "fig10" => Ok(experiments::fig10::run()),
        "fig11" => Ok(experiments::fig11::run()),
        "fig12" => Ok(experiments::fig12::run()),
        "fig13" => Ok(experiments::fig13::run()),
        "tab1" => Ok(experiments::tab1::run()),
        "tab2" => Ok(experiments::tab2::run()),
        "tab3" => Ok(experiments::tab3::run()),
        other => Err(format!(
            "unknown experiment id `{other}`; known ids: {}",
            ALL_IDS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_an_error() {
        let err = run("fig99").unwrap_err();
        assert!(err.contains("fig99"));
        assert!(err.contains("fig2"));
    }

    #[test]
    fn fast_experiments_produce_tables() {
        for id in ["fig2", "fig3", "fig4", "fig10", "fig13"] {
            let tables = run(id).unwrap();
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
            }
        }
    }
}
