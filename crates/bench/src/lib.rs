//! # wrsn-bench — the evaluation harness
//!
//! One module per experiment in `EXPERIMENTS.md`. Run them with
//!
//! ```text
//! cargo run -p wrsn-bench --release --bin exp -- --id fig6
//! cargo run -p wrsn-bench --release --bin exp -- --id all
//! ```
//!
//! Each experiment returns [`Table`]s that are printed as aligned ASCII and
//! exported as CSV under `target/experiments/`. Criterion micro-benchmarks
//! (`cargo bench -p wrsn-bench`) cover the algorithmic costs behind `tab1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiments;
pub mod manifest;
pub mod service;
pub mod stats;
pub mod table;

pub use wrsn::sim::obs;
pub use wrsn::sim::parallel;

pub use error::BenchError;
pub use table::Table;

use obs::{Recorder, TraceRecord, SCHEMA_VERSION};

/// All experiment ids, in the order of `EXPERIMENTS.md`.
pub const ALL_IDS: &[&str] = &[
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "tab1", "tab2", "tab3", "faults",
];

/// Extra experiment ids runnable with an explicit `--id` but excluded from
/// `--id all` (and therefore from the paper-suite timing baselines): these
/// are scaling/engineering studies, not paper figures.
pub const EXTRA_IDS: &[&str] = &["scale", "overload", "arms_race"];

/// Whether `id` names a runnable experiment ([`ALL_IDS`] or [`EXTRA_IDS`]).
pub fn is_known_id(id: &str) -> bool {
    ALL_IDS.contains(&id) || EXTRA_IDS.contains(&id)
}

/// Environment variable naming an experiment id whose run should panic on
/// entry. A test/CI hook for the `exp` runner's panic-safe harness: set
/// `WRSN_FORCE_PANIC=fig2` and `exp --id all` must still deliver every other
/// experiment's output plus a per-experiment failure report.
pub const FORCE_PANIC_ENV: &str = "WRSN_FORCE_PANIC";

/// Environment variable naming an experiment id whose run should hang
/// forever (cooperatively: it spins polling its cancellation token, exactly
/// like a world between integration segments). A test/CI hook for the `exp`
/// runner's watchdog: set `WRSN_FORCE_HANG=fig5` with `--timeout-s 2` and
/// the campaign must cancel `fig5` as a typed timeout while every other
/// experiment completes.
pub const FORCE_HANG_ENV: &str = "WRSN_FORCE_HANG";

/// Runs one experiment by id.
///
/// # Errors
///
/// [`BenchError::UnknownId`] for unknown ids.
pub fn run(id: &str) -> Result<Vec<Table>, BenchError> {
    run_with(id, &mut obs::NullRecorder)
}

/// Runs one experiment by id, reporting counters, spans, and trace records
/// into `rec`. The stream opens with a [`TraceRecord::Meta`] header scoped to
/// `id`; close it afterwards with [`obs::StatsRecorder::emit_counters`].
///
/// With a [`obs::NullRecorder`] this is exactly [`run`]: the recorder is
/// never consulted on the hot path and every table stays byte-identical
/// (pinned by the `trace_identity` integration tests).
///
/// # Errors
///
/// [`BenchError::UnknownId`] for unknown ids.
pub fn run_with(id: &str, rec: &mut dyn Recorder) -> Result<Vec<Table>, BenchError> {
    if std::env::var(FORCE_PANIC_ENV).as_deref() == Ok(id) {
        panic!("forced panic in `{id}` ({FORCE_PANIC_ENV} is set)");
    }
    if std::env::var(FORCE_HANG_ENV).as_deref() == Ok(id) {
        // A cooperative hang: spin on the thread's cancellation token the
        // way the run loop does between segments. Under the watchdog this
        // unwinds as a timeout; without one it hangs forever (that is the
        // point — CI kills the process here to exercise `--resume`).
        loop {
            if wrsn::sim::cancel::cancelled() {
                panic!("forced hang in `{id}` cancelled ({FORCE_HANG_ENV} is set)");
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    if rec.enabled() {
        rec.emit(&TraceRecord::Meta {
            schema: format!("wrsn-trace-v{SCHEMA_VERSION}"),
            scope: id.to_string(),
        });
    }
    match id {
        "fig2" => Ok(experiments::fig2::run()),
        "fig3" => Ok(experiments::fig3::run()),
        "fig4" => Ok(experiments::fig4::run()),
        "fig5" => Ok(experiments::fig5::run_with(rec)),
        "fig6" => Ok(experiments::fig6::run_with(rec)),
        "fig7" => Ok(experiments::fig7::run_with(rec)),
        "fig8" => Ok(experiments::fig8::run_with(rec)),
        "fig9" => Ok(experiments::fig9::run_with(rec)),
        "fig10" => Ok(experiments::fig10::run_with(rec)),
        "fig11" => Ok(experiments::fig11::run_with(rec)),
        "fig12" => Ok(experiments::fig12::run_with(rec)),
        "fig13" => Ok(experiments::fig13::run()),
        "tab1" => Ok(experiments::tab1::run()),
        "tab2" => Ok(experiments::tab2::run()),
        "tab3" => Ok(experiments::tab3::run_with(rec)),
        "faults" => Ok(experiments::faults::run_with(rec)),
        "scale" => Ok(experiments::scale::run_with(rec)),
        "overload" => Ok(experiments::overload::run_with(rec)),
        "arms_race" => Ok(experiments::arms_race::run_with(rec)),
        other => Err(BenchError::unknown_id(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_an_error() {
        let err = run("fig99").unwrap_err();
        assert!(matches!(err, BenchError::UnknownId { .. }), "{err}");
        let text = err.to_string();
        assert!(text.contains("fig99"));
        assert!(text.contains("fig2"));
    }

    #[test]
    fn fast_experiments_produce_tables() {
        for id in ["fig2", "fig3", "fig4", "fig10", "fig13"] {
            let tables = run(id).unwrap_or_else(|e| panic!("experiment `{id}` failed: {e}"));
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
            }
        }
    }
}
