//! `scale` — million-node worlds: wall-clock cost of a full CSA campaign
//! vs. network size, on the struct-of-arrays engine.
//!
//! Unlike the paper-figure experiments this one sweeps *simulator* scale,
//! not attack efficacy: one fig6-class campaign per size at paper density
//! (1 node / 100 m²), horizon shrunk as `2e8 / n` seconds so the drained
//! sink ring produces a comparable death/repair workload at every size.
//! Key-node identification runs in approximate hub mode (`max_exact_nodes:
//! 0`) with the hub fraction tuned to select ~64 hubs regardless of size —
//! the exact Tarjan/Brandes census is quadratic and would dominate the
//! measurement above 10⁵ nodes.
//!
//! Not part of `--id all`: run explicitly with `exp --id scale`. Sizes can
//! be overridden via `WRSN_SCALE_SIZES=10000,100000` (comma-separated) for
//! smoke tests and CI.

use std::time::Instant;

use wrsn::core::tide::TideConfig;
use wrsn::net::prelude::KeyNodeConfig;
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};

use crate::experiments::common::run_csa_scaled_with;
use crate::table::{f, Table};

/// Network sizes swept by the full experiment.
pub const SIZES: &[usize] = &[10_000, 100_000, 500_000, 1_000_000];
/// Env var overriding [`SIZES`] with a comma-separated list.
pub const SIZES_ENV: &str = "WRSN_SCALE_SIZES";
/// Single deployment seed — this experiment measures wall clock, not
/// attack-quality statistics, so one seed per size keeps 1M feasible.
pub const SEED: u64 = 7;
/// Approximate hub-census size held constant across the sweep.
const TARGET_HUBS: usize = 64;

/// Sizes to sweep: [`SIZES_ENV`] override or the built-in [`SIZES`].
pub fn sizes() -> Vec<usize> {
    match std::env::var(SIZES_ENV) {
        Ok(raw) => {
            let parsed: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&n| n >= 2)
                .collect();
            if parsed.is_empty() {
                SIZES.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => SIZES.to_vec(),
    }
}

/// Horizon for an `n`-node world: inversely proportional to size so the
/// total drain workload (node-seconds of discharge until the sink ring
/// dies and the network partitions) stays comparable across the sweep.
pub fn horizon_s(n: usize) -> f64 {
    2.0e8 / n as f64
}

/// The paper-density scenario at size `n` with the scaled horizon.
pub fn scenario(n: usize) -> Scenario {
    let mut scenario = Scenario::paper_scale(n, SEED);
    scenario.horizon_s = horizon_s(n);
    scenario
}

/// TIDE config for size `n`: the scenario's config with key-node
/// identification forced into approximate hub mode (~[`TARGET_HUBS`] hubs).
pub fn tide_config(n: usize) -> TideConfig {
    let scenario = scenario(n);
    TideConfig {
        keynode: KeyNodeConfig {
            hub_fraction: (TARGET_HUBS as f64 / n as f64).min(1.0),
            include_cut_vertices: false,
            max_exact_nodes: 0,
        },
        ..scenario.tide_config()
    }
}

/// One row of the scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRow {
    /// Network size.
    pub nodes: usize,
    /// Shard count the world ran with.
    pub shards: usize,
    /// Worker threads the parallel shard executor ran with.
    pub threads: usize,
    /// Seconds to deploy and build the world (graph, routing, grid).
    pub build_s: f64,
    /// Seconds to run the CSA campaign to the horizon.
    pub run_s: f64,
    /// Nodes dead at the end of the campaign.
    pub dead: usize,
    /// Victims the attack plan targeted.
    pub targeted: usize,
}

/// Builds and runs one campaign at size `n`, observed through `rec`.
///
/// Exposed so the golden-digest test and the CI smoke step can drive a
/// single small size directly instead of racing over [`SIZES_ENV`].
pub fn run_at_size_with(n: usize, rec: &mut dyn Recorder) -> ScaleRow {
    let scenario = scenario(n);
    let config = tide_config(n);
    let built = Instant::now();
    let mut world = scenario.build();
    let build_s = built.elapsed().as_secs_f64();
    let shards = world.shards();
    let threads = world.threads();
    let ran = Instant::now();
    let (report, outcome) = run_csa_scaled_with(&mut world, config, rec);
    let run_s = ran.elapsed().as_secs_f64();
    ScaleRow {
        nodes: n,
        shards,
        threads,
        build_s,
        run_s,
        dead: report.dead_nodes,
        targeted: outcome.targeted,
    }
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every campaign through `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let mut table = Table::new(
        "scale: CSA campaign wall-clock vs network size (SoA engine)",
        &[
            "nodes",
            "shards",
            "threads",
            "build (s)",
            "campaign (s)",
            "total (s)",
            "dead",
            "targeted",
        ],
    );
    for n in sizes() {
        // Span names must be `'static`; a handful of leaked size labels per
        // process puts the nodes-vs-wall-seconds curve into the `--json`
        // report's span table.
        let span: &'static str = Box::leak(format!("scale_n{n}").into_boxed_str());
        rec.span_enter(span);
        let row = run_at_size_with(n, rec);
        rec.span_exit(span);
        table.push(vec![
            row.nodes.to_string(),
            row.shards.to_string(),
            row.threads.to_string(),
            f(row.build_s, 3),
            f(row.run_s, 3),
            f(row.build_s + row.run_s, 3),
            row.dead.to_string(),
            row.targeted.to_string(),
        ]);
    }
    vec![table]
}
