//! `faults` — attack efficacy and detectability under injected faults.
//!
//! The robustness experiment: the CSA campaign runs against worlds with a
//! seeded [`FaultPlan`] installed — node crashes, charging-efficiency
//! degradation, charger stalls, request loss — at increasing intensity.
//! Every plan is derived deterministically from the trial seed, so the whole
//! table is byte-identical across runs and thread counts.
//!
//! Columns track both sides of the arms race as the substrate degrades: how
//! much of the attack still lands (targeted / exhausted victims), how much
//! collateral the faults add (dead nodes), and whether the post-mortem
//! auditor still attributes the kills (detection ratio over attacked nodes).

use wrsn::core::attack::{evaluate_attack, CsaAttackPolicy};
use wrsn::core::detect::{Detector, PostMortemAudit};
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};
use wrsn::sim::{FaultConfig, FaultPlan};

use crate::stats::mean_std;
use crate::table::{f, pm, Table};

/// Network size used for the sweep.
pub const NODES: usize = 60;
/// Seeds per intensity.
pub const SEEDS: u64 = 3;
/// Per-kind fault counts swept (0 = the fault-free control row).
pub const INTENSITIES: &[usize] = &[0, 1, 2, 4];

struct Trial {
    injected: f64,
    targeted: f64,
    exhausted: f64,
    lifetime_h: f64,
    delivered_kj: f64,
    detection: Option<f64>,
}

fn run_trial(intensity: usize, seed: u64, rec: &mut dyn Recorder) -> Trial {
    let scenario = Scenario::paper_scale(NODES, seed);
    let mut world = scenario.build();
    if intensity > 0 {
        let config = FaultConfig::uniform(intensity);
        world.set_fault_plan(FaultPlan::generate(
            seed,
            NODES,
            scenario.horizon_s,
            &config,
        ));
    }
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    let report = world
        .run_with(&mut policy, rec)
        .expect("faulted CSA campaign run failed");
    let outcome = evaluate_attack(&world, &policy);
    let attacked: Vec<_> = policy.targets().iter().map(|&(n, _)| n).collect();
    let audit = PostMortemAudit::default().analyze(&world);
    Trial {
        injected: world.fault_injector().map_or(0, |f| f.injected()) as f64,
        targeted: outcome.targeted as f64,
        exhausted: outcome.exhausted as f64,
        lifetime_h: report.network_lifetime_s.unwrap_or(report.final_time_s) / 3600.0,
        delivered_kj: report.total_delivered_j / 1.0e3,
        detection: audit.detection_ratio(&attacked),
    }
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every campaign through `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let mut table = Table::new(
        format!("faults: CSA under fault injection ({NODES} nodes)"),
        &[
            "intensity",
            "faults",
            "targeted",
            "exhausted",
            "lifetime (h)",
            "delivered (kJ)",
            "detection",
        ],
    );
    for &intensity in INTENSITIES {
        let trials: Vec<Trial> = (0..SEEDS)
            .map(|seed| run_trial(intensity, seed, rec))
            .collect();
        let col = |get: fn(&Trial) -> f64| trials.iter().map(get).collect::<Vec<_>>();
        let (lm, ls) = mean_std(&col(|t| t.lifetime_h));
        let detections: Vec<f64> = trials.iter().filter_map(|t| t.detection).collect();
        let (dm, ds) = mean_std(&detections);
        table.push(vec![
            format!("{intensity}"),
            f(mean_std(&col(|t| t.injected)).0, 1),
            f(mean_std(&col(|t| t.targeted)).0, 1),
            f(mean_std(&col(|t| t.exhausted)).0, 1),
            pm(lm, ls, 1),
            f(mean_std(&col(|t| t.delivered_kj)).0, 1),
            pm(dm, ds, 2),
        ]);
    }
    vec![table]
}
