//! `arms_race` — online digital-twin auditing vs. the adaptive CSA.
//!
//! The detection arms race, fought on the parallel harness: a base-station
//! **digital twin** with stochastic challenge-response probes
//! ([`wrsn::sim::audit`]) runs *during* every campaign, and three attacker
//! postures run against it —
//!
//! * **benign**: an honest Earliest-Deadline-First charger (the
//!   false-positive control),
//! * **naive**: the paper's CSA, full-cancellation spoofs (delivered ≈ 0),
//! * **adaptive**: the stealth CSA ([`CsaAttackPolicy::with_stealth`]),
//!   partial-power spoofs that keep probed residuals above the detector's
//!   tolerance at real energy cost —
//!
//! swept over detector aggressiveness ([`wrsn::sim::AuditConfig`] presets
//! `lax`/`default`/`aggressive`) and fault-injection intensity (PR 4's
//! crashes/degradations are the noise floor that makes detection genuinely
//! hard). Each run is classified at run level: **detected** iff the twin
//! convicted at least one node before 80 % of the key-node census was
//! exhausted (a later conviction names the culprit but saves nothing).
//! Benign detections are false positives. The tables are the ROC surface:
//! detection rate, FPR, time-to-detection, probe overhead, and the adaptive
//! attacker's quantified real-energy bill.
//!
//! Every cell is seeded; the whole artifact is byte-identical across
//! `WRSN_THREADS`/`WRSN_SHARDS` settings (audits are serial in-world code).

use wrsn::core::attack::{evaluate_attack, CsaAttackPolicy};
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder, StatsRecorder};
use wrsn::sim::{AuditConfig, FaultConfig, FaultPlan};

use crate::stats::mean_std;
use crate::table::{f, Table};

/// Network size used for the sweep.
pub const NODES: usize = 60;
/// Seeds per cell.
pub const SEEDS: u64 = 3;
/// Detector aggressiveness presets swept.
pub const PRESETS: &[&str] = &["lax", "default", "aggressive"];
/// Attacker postures swept.
pub const POLICIES: &[&str] = &["benign", "naive", "adaptive"];
/// Per-kind fault counts swept (0 = noise-free, 1 = the default intensity).
pub const INTENSITIES: &[usize] = &[0, 1, 4];
/// Stealth fraction the adaptive attacker runs at: above the `default`
/// tolerance (0.25), below `aggressive` (0.55) — it beats the detector it
/// was tuned against and loses to the harsher one.
pub const STEALTH_FRACTION: f64 = 0.35;
/// A run is "detected in time" when the first conviction lands before this
/// fraction of the key-node census is exhausted.
pub const EXHAUSTION_DEADLINE: f64 = 0.8;

struct Trial {
    /// Run-level verdict: convicted before the exhaustion deadline.
    detected: bool,
    /// Time of the first conviction, hours, if any fired at all.
    ttd_h: Option<f64>,
    convictions: f64,
    probes: f64,
    /// Probe overhead actually spent, joules.
    probe_j: f64,
    /// Fraction of the key-node census exhausted (attack rows only).
    key_exhausted: Option<f64>,
    /// Real energy delivered by attack-mode sessions, kilojoules — the
    /// adaptive attacker's stealth bill (0 for naive full-cancellation).
    attack_delivered_kj: f64,
}

fn run_trial(
    preset: &str,
    policy: &str,
    intensity: usize,
    seed: u64,
    rec: &mut dyn Recorder,
) -> Trial {
    let scenario = Scenario::paper_scale(NODES, seed);
    let audit = AuditConfig::preset(preset)
        .expect("known preset")
        .with_seed(seed);
    let mut world = scenario.build().with_audit(audit);
    if intensity > 0 {
        let config = FaultConfig::uniform(intensity);
        world.set_fault_plan(FaultPlan::generate(
            seed,
            NODES,
            scenario.horizon_s,
            &config,
        ));
    }
    // Run the posture; for attack rows, derive the key-node census deadline.
    let mut t80 = f64::INFINITY;
    let mut key_exhausted = None;
    match policy {
        "benign" => {
            world
                .run_with(&mut wrsn::charge::EarliestDeadlineFirst::new(), rec)
                .expect("benign campaign run failed");
        }
        _ => {
            let mut attack = CsaAttackPolicy::new(scenario.tide_config());
            if policy == "adaptive" {
                attack = attack.with_stealth(STEALTH_FRACTION);
            }
            world
                .run_with(&mut attack, rec)
                .expect("attack campaign run failed");
            let outcome = evaluate_attack(&world, &attack);
            key_exhausted = Some(outcome.key_node_exhausted_ratio);
            // The moment the census crossed the exhaustion deadline: the
            // k-th key-node death, k = ceil(deadline × census size).
            if let Some(instance) = attack.initial_instance() {
                let mut deaths: Vec<f64> = instance
                    .victims
                    .iter()
                    .filter_map(|v| world.trace().death_time_of(v.node))
                    .collect();
                deaths.sort_by(|a, b| a.partial_cmp(b).expect("finite death times"));
                let k = (EXHAUSTION_DEADLINE * instance.victims.len() as f64).ceil() as usize;
                if k > 0 && k <= deaths.len() {
                    t80 = deaths[k - 1];
                }
            }
        }
    }
    let audit = world.audit().expect("audit attached");
    let first = audit.first_conviction_s();
    Trial {
        detected: first.is_some_and(|t| t <= t80),
        ttd_h: first.map(|t| t / 3600.0),
        convictions: audit.convictions().len() as f64,
        probes: audit.probes().len() as f64,
        probe_j: audit.spent_j(),
        key_exhausted,
        // `+ 0.0` normalises the empty sum: float `sum()` has a `-0.0`
        // identity, which would print as "-0.00" on benign rows.
        attack_delivered_kj: (world
            .trace()
            .sessions()
            .iter()
            .filter(|s| s.mode.is_attack())
            .map(|s| s.delivered_j)
            .sum::<f64>()
            + 0.0)
            / 1.0e3,
    }
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every campaign through `rec`. Cells fan
/// out on the parallel harness; per-worker [`StatsRecorder`]s merge back in
/// index order, so the artifact is byte-identical at any worker count.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let observe = rec.enabled();
    let seeds = SEEDS as usize;
    let cells = PRESETS.len() * POLICIES.len() * INTENSITIES.len();
    let pairs = crate::parallel::map_indexed(cells * seeds, |k| {
        let seed = (k % seeds) as u64;
        let cell = k / seeds;
        let intensity = INTENSITIES[cell % INTENSITIES.len()];
        let policy = POLICIES[(cell / INTENSITIES.len()) % POLICIES.len()];
        let preset = PRESETS[cell / (INTENSITIES.len() * POLICIES.len())];
        let mut worker = StatsRecorder::new();
        let mut null = NullRecorder;
        let sink: &mut dyn Recorder = if observe { &mut worker } else { &mut null };
        let trial = run_trial(preset, policy, intensity, seed, sink);
        (trial, worker)
    });
    let mut trials = Vec::with_capacity(pairs.len());
    for (trial, worker) in pairs {
        if observe {
            worker.merge_into(rec);
        }
        trials.push(trial);
    }

    let mut roc = Table::new(
        format!(
            "arms_race: twin+probe audit vs CSA postures ({NODES} nodes, \
             stealth fraction {STEALTH_FRACTION})"
        ),
        &[
            "detector",
            "policy",
            "faults",
            "detect rate",
            "ttd (h)",
            "convictions",
            "probes",
            "probe cost (J)",
            "key exhausted",
            "attack delivered (kJ)",
        ],
    );
    for (cell, chunk) in trials.chunks(seeds).enumerate() {
        let intensity = INTENSITIES[cell % INTENSITIES.len()];
        let policy = POLICIES[(cell / INTENSITIES.len()) % POLICIES.len()];
        let preset = PRESETS[cell / (INTENSITIES.len() * POLICIES.len())];
        let rate = chunk.iter().filter(|t| t.detected).count() as f64 / chunk.len() as f64;
        let ttds: Vec<f64> = chunk.iter().filter_map(|t| t.ttd_h).collect();
        let key: Vec<f64> = chunk.iter().filter_map(|t| t.key_exhausted).collect();
        roc.push(vec![
            preset.to_string(),
            policy.to_string(),
            format!("{intensity}"),
            f(rate, 2),
            if ttds.is_empty() {
                "-".to_string()
            } else {
                f(mean_std(&ttds).0, 1)
            },
            f(
                mean_std(&chunk.iter().map(|t| t.convictions).collect::<Vec<_>>()).0,
                1,
            ),
            f(
                mean_std(&chunk.iter().map(|t| t.probes).collect::<Vec<_>>()).0,
                1,
            ),
            f(
                mean_std(&chunk.iter().map(|t| t.probe_j).collect::<Vec<_>>()).0,
                1,
            ),
            if key.is_empty() {
                "-".to_string()
            } else {
                f(mean_std(&key).0, 2)
            },
            f(
                mean_std(
                    &chunk
                        .iter()
                        .map(|t| t.attack_delivered_kj)
                        .collect::<Vec<_>>(),
                )
                .0,
                2,
            ),
        ]);
    }

    // The headline: per detector preset, true-positive rate on each attacker
    // vs. false-positive rate on benign runs, pooled over fault intensities.
    let mut summary = Table::new(
        "arms_race summary: ROC operating points (pooled over fault noise)",
        &["detector", "tpr naive", "tpr adaptive", "fpr benign"],
    );
    let per_policy = INTENSITIES.len() * seeds;
    for (p, preset) in PRESETS.iter().enumerate() {
        let base = p * POLICIES.len() * per_policy;
        let rate = |policy_idx: usize| {
            let lo = base + policy_idx * per_policy;
            let slice = &trials[lo..lo + per_policy];
            slice.iter().filter(|t| t.detected).count() as f64 / slice.len() as f64
        };
        summary.push(vec![
            preset.to_string(),
            f(rate(1), 2),
            f(rate(2), 2),
            f(rate(0), 2),
        ]);
    }

    vec![roc, summary]
}
