//! `fig9` — dead-node count over time under different chargers: benign
//! policies keep the network alive; the spoofing charger presides over its
//! collapse while radiating like a model citizen.

use wrsn::core::attack::CsaAttackPolicy;
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};
use wrsn::sim::{ChargerPolicy, IdlePolicy, World};

use crate::experiments::common::dead_at;
use crate::table::Table;

/// Network size.
pub const NODES: usize = 100;
/// Seed.
pub const SEED: u64 = 1;
/// Sample interval for the time series, hours.
pub const STEP_H: f64 = 48.0;

fn run_policy(label: &str, rec: &mut dyn Recorder) -> (String, World) {
    let scenario = Scenario::paper_scale(NODES, SEED);
    let mut world = scenario.build();
    match label {
        "absent" => {
            world.run_with(&mut IdlePolicy, rec).expect("run");
        }
        "njnp" => {
            world
                .run_with(&mut wrsn::charge::Njnp::new(), rec)
                .expect("run");
        }
        "edf" => {
            world
                .run_with(&mut wrsn::charge::EarliestDeadlineFirst::new(), rec)
                .expect("run");
        }
        "csa" => {
            let mut p = CsaAttackPolicy::new(scenario.tide_config());
            world.run_with(&mut p, rec).expect("run");
            return (p.name().to_string(), world);
        }
        other => unreachable!("unknown label {other}"),
    }
    (label.to_string(), world)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing all four policy runs through `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let labels = ["absent", "njnp", "edf", "csa"];
    let runs: Vec<(String, World)> = labels.iter().map(|l| run_policy(l, rec)).collect();

    let horizon_h = Scenario::paper_scale(NODES, SEED).horizon_s / 3600.0;
    let mut table = Table::new(
        format!("fig9: dead nodes over time ({NODES} nodes, seed {SEED})"),
        &["time (h)", "absent", "njnp", "edf", "attack-csa"],
    );
    let mut t_h = 0.0;
    while t_h <= horizon_h + 1e-9 {
        let mut row = vec![format!("{t_h:.0}")];
        for (_, world) in &runs {
            row.push(dead_at(world.trace().death_times(), t_h * 3600.0).to_string());
        }
        table.push(row);
        t_h += STEP_H;
    }

    let mut lifetimes = Table::new(
        "fig9b: network lifetime (sink-reachability threshold crossing)",
        &["policy", "lifetime (h)"],
    );
    for (name, world) in &runs {
        lifetimes.push(vec![
            name.clone(),
            world
                .network_lifetime_s()
                .map(|t| format!("{:.1}", t / 3600.0))
                .unwrap_or_else(|| "survived".to_string()),
        ]);
    }

    vec![table, lifetimes]
}
