//! `overload` — the campaign service under a burst far past its capacity.
//!
//! Drives an in-process [`Scheduler`] sized deliberately small (2 workers,
//! queue cap 2, a ~4 KiB result cache) with a burst of scenario requests
//! several times the queue capacity, then retries every shed request until
//! it lands — the client contract from `wrsnd load`, exercised without
//! sockets so the experiment measures admission policy, not TCP. A quarter
//! of the requests opt into streamed responses; the request mix cycles a
//! handful of distinct scenario seeds so dedupe (hits + coalescing) and
//! cache eviction both fire.
//!
//! The row's `violations` column is the robustness verdict: it counts
//! requests that terminally failed (error/timeout) plus digests whose `ok`
//! results were not byte-identical across duplicates and retries. Overload
//! must delay work, never corrupt it, so the expected value is 0.
//!
//! Not part of `--id all`: run explicitly with `exp --id overload`. The
//! burst size can be overridden via `WRSN_OVERLOAD_REQUESTS=96` for longer
//! soaks. Under `exp --json`, the shed/eviction/stream tallies also surface
//! as `requests_shed` / `cache_evictions` / `stream_frames` counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::thread;
use std::time::{Duration, Instant};

use wrsn::sim::obs::{Counter, NullRecorder, Recorder};

use crate::service::cache::ResultCache;
use crate::service::request::{parse_response, DeploymentKind, Payload, ScenarioSpec};
use crate::service::scheduler::{Reply, Scheduler};
use crate::table::{f, Table};

/// Worker threads in the scheduler under test.
pub const WORKERS: usize = 2;
/// Admission queue capacity — the burst is sized well past this.
pub const QUEUE_CAP: usize = 2;
/// Default burst size (requests submitted before any reply is read).
pub const REQUESTS: usize = 48;
/// Env var overriding [`REQUESTS`] for longer soaks.
pub const REQUESTS_ENV: &str = "WRSN_OVERLOAD_REQUESTS";
/// Distinct scenario seeds cycled through the burst (so ~6 duplicates per
/// digest exercise dedupe and single-flight under contention).
const DISTINCT_SPECS: usize = 8;
/// Result-cache byte budget — a few entries' worth, so [`DISTINCT_SPECS`]
/// distinct results cannot all fit and deterministic LRU eviction fires
/// mid-run.
const CACHE_CAP_BYTES: u64 = 1024;
/// Every `STREAM_EVERY`-th request asks for a streamed response.
const STREAM_EVERY: usize = 4;
/// Attempt ceiling per request before the run declares a liveness failure.
const MAX_ATTEMPTS: u32 = 1_000;
/// Scenario size: small enough that a request is milliseconds of work.
const NODES: usize = 16;
/// Scenario horizon, seconds of simulated time.
const HORIZON_S: f64 = 20_000.0;
/// Per-request wall-clock deadline (generous; nothing here should hit it).
const DEADLINE: Duration = Duration::from_secs(120);

/// Burst size: [`REQUESTS_ENV`] override or the built-in [`REQUESTS`].
pub fn requests() -> usize {
    std::env::var(REQUESTS_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(REQUESTS)
}

/// The `k`-th request's payload: scenario seeds cycle so the burst carries
/// duplicates of [`DISTINCT_SPECS`] distinct digests.
pub fn payload(k: usize) -> Payload {
    Payload::Scenario(ScenarioSpec {
        nodes: NODES,
        seed: (k % DISTINCT_SPECS) as u64,
        horizon_s: HORIZON_S,
        deployment: DeploymentKind::Uniform,
    })
}

/// One in-flight request the driver is tracking.
struct Pending {
    k: usize,
    digest: String,
    stream: bool,
    attempts: u32,
    rx: Receiver<Reply>,
}

/// What the drive loop tallied.
struct Drive {
    ok: u64,
    shed_seen: u64,
    retries: u64,
    stream_requests: u64,
    stream_frames_seen: u64,
    violations: u64,
    wall_s: f64,
}

/// Runs the burst against `scheduler` and enforces the client contract:
/// every request retried until terminal, every terminal response `ok`, and
/// every `ok` for a digest byte-identical to the first.
fn drive(scheduler: &Scheduler, total: usize) -> Drive {
    let started = Instant::now();
    let mut pending: Vec<Pending> = Vec::with_capacity(total);
    for k in 0..total {
        let payload = payload(k);
        let stream = k % STREAM_EVERY == 0;
        let (tx, rx) = mpsc::channel();
        let digest = payload.digest();
        scheduler.submit(format!("burst-{k}"), payload, None, stream, tx);
        pending.push(Pending {
            k,
            digest,
            stream,
            attempts: 1,
            rx,
        });
    }
    let stream_requests = pending.iter().filter(|p| p.stream).count() as u64;
    let mut by_digest: HashMap<String, String> = HashMap::new();
    let mut drive = Drive {
        ok: 0,
        shed_seen: 0,
        retries: 0,
        stream_requests,
        stream_frames_seen: 0,
        violations: 0,
        wall_s: 0.0,
    };
    for mut req in pending {
        loop {
            let Ok(reply) = req.rx.recv() else {
                // Worker dropped the reply channel without answering —
                // exactly the corruption class this experiment exists to
                // rule out.
                drive.violations += 1;
                break;
            };
            let Ok(parsed) = parse_response(&reply.line) else {
                drive.violations += 1;
                break;
            };
            if parsed.status == "progress" {
                drive.stream_frames_seen += parsed.records.map_or(0, |r| r.len() as u64);
                continue;
            }
            if parsed.status == "overloaded" {
                drive.shed_seen += 1;
                if req.attempts >= MAX_ATTEMPTS {
                    drive.violations += 1;
                    break;
                }
                // Honour the daemon's hint the way `wrsnd load` does, minus
                // the jitter: determinism matters more than fairness here.
                let backoff = parsed.retry_after_ms.unwrap_or(25).clamp(1, 200);
                thread::sleep(Duration::from_millis(backoff));
                drive.retries += 1;
                req.attempts += 1;
                let (tx, rx) = mpsc::channel();
                scheduler.submit(
                    format!("burst-{}-r{}", req.k, req.attempts),
                    payload(req.k),
                    None,
                    false,
                    tx,
                );
                req.rx = rx;
                continue;
            }
            if parsed.status == "ok" {
                drive.ok += 1;
                match (parsed.digest, parsed.result_canonical) {
                    (Some(digest), Some(result)) if digest == req.digest => {
                        let first = by_digest.entry(digest).or_insert_with(|| result.clone());
                        if *first != result {
                            drive.violations += 1;
                        }
                    }
                    _ => drive.violations += 1,
                }
            } else {
                drive.violations += 1;
            }
            break;
        }
    }
    drive.wall_s = started.elapsed().as_secs_f64();
    drive
}

/// A `u64` entry from the scheduler's `stats` map (0 when absent).
fn stat_u64(stats: &serde::Value, key: &str) -> u64 {
    stats
        .as_map()
        .and_then(|entries| entries.iter().find(|(k, _)| k == key))
        .map_or(0, |(_, v)| match v {
            serde::Value::U64(n) => *n,
            _ => 0,
        })
}

/// Runs the experiment without observation.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, reporting shed/eviction/stream tallies into `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    // Per-invocation store dir: the cache under test must start empty, and
    // parallel test runs in one process must not share it.
    static RUN_SEQ: AtomicU64 = AtomicU64::new(0);
    let store_dir = std::env::temp_dir().join(format!(
        "wrsn-overload-{}-{}",
        std::process::id(),
        RUN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&store_dir).expect("create overload store dir");
    let cache = ResultCache::open_bounded(&store_dir, CACHE_CAP_BYTES).expect("open result cache");
    let scheduler = Scheduler::new(cache, WORKERS, DEADLINE, QUEUE_CAP);

    let total = requests();
    let drive = drive(&scheduler, total);

    let stats = scheduler.stats_value();
    let shed = stat_u64(&stats, Counter::RequestsShed.name());
    let evictions = stat_u64(&stats, Counter::CacheEvictions.name());
    let stream_frames = stat_u64(&stats, Counter::StreamFrames.name());
    let cache_hits = stat_u64(&stats, "cache_hits");
    let coalesced = stat_u64(&stats, "coalesced");
    let high_watermark = stat_u64(&stats, "queue_high_watermark");
    scheduler.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    rec.add(Counter::RequestsShed, shed);
    rec.add(Counter::CacheEvictions, evictions);
    rec.add(Counter::StreamFrames, stream_frames);

    let mut table = Table::new(
        format!(
            "overload: {total}-request burst vs {WORKERS} workers / queue cap {QUEUE_CAP} / {CACHE_CAP_BYTES} B cache"
        ),
        &[
            "requests",
            "distinct",
            "ok",
            "shed",
            "retries",
            "hwm",
            "hits",
            "coalesced",
            "evictions",
            "stream reqs",
            "stream frames",
            "violations",
            "wall (s)",
        ],
    );
    table.push(vec![
        total.to_string(),
        DISTINCT_SPECS.min(total).to_string(),
        drive.ok.to_string(),
        shed.to_string(),
        drive.retries.to_string(),
        high_watermark.to_string(),
        cache_hits.to_string(),
        coalesced.to_string(),
        evictions.to_string(),
        drive.stream_requests.to_string(),
        stream_frames.to_string(),
        drive.violations.to_string(),
        f(drive.wall_s, 3),
    ]);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_burst_is_shed_retried_and_resolved_without_violations() {
        let tables = run();
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.rows.len(), 1);
        let row = &table.rows[0];
        let col = |name: &str| -> u64 {
            let idx = table
                .columns
                .iter()
                .position(|c| c == name)
                .unwrap_or_else(|| panic!("missing column {name}"));
            row[idx].parse().unwrap()
        };
        assert_eq!(col("ok"), REQUESTS as u64, "every request resolves ok");
        assert_eq!(col("violations"), 0, "overload must never corrupt results");
        assert!(
            col("shed") > 0,
            "the burst must overrun queue cap {QUEUE_CAP}"
        );
        assert_eq!(col("shed"), col("retries"), "every shed is retried");
        assert!(
            col("evictions") > 0,
            "{DISTINCT_SPECS} distinct results must not fit in {CACHE_CAP_BYTES} bytes"
        );
        assert!(col("stream frames") > 0, "streamed leaders emit frames");
    }

    #[test]
    fn payloads_cycle_a_fixed_set_of_digests() {
        let digests: Vec<String> = (0..REQUESTS).map(|k| payload(k).digest()).collect();
        for (k, digest) in digests.iter().enumerate() {
            assert_eq!(digest, &digests[k % DISTINCT_SPECS]);
        }
        let mut distinct = digests.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(distinct.len(), DISTINCT_SPECS);
    }
}
