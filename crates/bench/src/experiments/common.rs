//! Shared scaffolding for the experiments.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wrsn::core::attack::{evaluate_attack, AttackOutcome, CsaAttackPolicy};
use wrsn::core::tide::{TideConfig, TideInstance, TimeWindow, Victim};
use wrsn::net::{NodeId, Point};
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};
use wrsn::sim::{SimReport, World};

/// Runs a full adaptive CSA campaign on `scenario`'s world.
pub fn run_csa(scenario: &Scenario) -> (World, CsaAttackPolicy, SimReport, AttackOutcome) {
    run_csa_with(scenario, &mut NullRecorder)
}

/// Like [`run_csa`], with the campaign observed through `rec`.
pub fn run_csa_with(
    scenario: &Scenario,
    rec: &mut dyn Recorder,
) -> (World, CsaAttackPolicy, SimReport, AttackOutcome) {
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    // A `SimError` here means the experiment itself is broken (there is no
    // fault plan installed); panic and let the `exp` runner's panic-safe
    // harness report it per-experiment instead of threading Result through
    // every table builder.
    let report = world
        .run_with(&mut policy, rec)
        .expect("CSA campaign run failed");
    let outcome = evaluate_attack(&world, &policy);
    (world, policy, report, outcome)
}

/// Runs a CSA campaign on an already-built `world` with an explicit
/// `config` — the `scale` experiment's entry point, which needs to time
/// world construction separately and swap in an approximate key-node
/// census that stays tractable at 10⁶ nodes.
pub fn run_csa_scaled_with(
    world: &mut World,
    config: TideConfig,
    rec: &mut dyn Recorder,
) -> (SimReport, AttackOutcome) {
    let mut policy = CsaAttackPolicy::new(config);
    let report = world
        .run_with(&mut policy, rec)
        .expect("CSA campaign run failed");
    let outcome = evaluate_attack(world, &policy);
    (report, outcome)
}

/// A synthetic TIDE instance with `n` victims scattered around a 200 m disc,
/// windows of the given mean length — the workload for planner-only
/// experiments (`fig10`, `tab1`).
pub fn synthetic_instance(n: usize, seed: u64, window_len_s: f64, budget_j: f64) -> TideInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let victims = (0..n)
        .map(|i| {
            let open = rng.gen_range(0.0..600.0);
            let len = rng.gen_range(0.5 * window_len_s..1.5 * window_len_s);
            Victim {
                node: NodeId(i),
                position: Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)),
                weight: rng.gen_range(1.0..5.0),
                window: TimeWindow {
                    open_s: open,
                    close_s: open + len,
                },
                service_s: rng.gen_range(10.0..60.0),
                death_s: open + len + 60.0,
            }
        })
        .collect();
    TideInstance {
        victims,
        start: Point::new(100.0, 100.0),
        speed_mps: 5.0,
        budget_j,
        move_cost_j_per_m: 1.0,
        radiated_power_w: 1.0,
        now_s: 0.0,
    }
}

/// Dead-node count at time `t` from a run's death records.
pub fn dead_at(deaths: &[(NodeId, f64)], t: f64) -> usize {
    deaths.iter().filter(|&&(_, d)| d <= t).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_instance_is_deterministic_and_sized() {
        let a = synthetic_instance(12, 3, 300.0, 1e6);
        let b = synthetic_instance(12, 3, 300.0, 1e6);
        assert_eq!(a, b);
        assert_eq!(a.victim_count(), 12);
    }

    #[test]
    fn dead_at_counts_cumulatively() {
        let deaths = vec![(NodeId(0), 10.0), (NodeId(1), 20.0)];
        assert_eq!(dead_at(&deaths, 5.0), 0);
        assert_eq!(dead_at(&deaths, 10.0), 1);
        assert_eq!(dead_at(&deaths, 100.0), 2);
    }
}
