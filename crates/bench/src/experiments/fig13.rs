//! `fig13` (extension) — simultaneous multi-victim spoofing.
//!
//! With `M + 1` coherent antennas one parked rig can place nulls on `M`
//! victims at once (`wrsn_em::beamform`): a whole cluster masqueraded in a
//! single visit. This experiment measures the achievable suppression vs.
//! cluster size, in the ideal case and under per-antenna phase jitter —
//! array nulls sharpen with size, so calibration demands grow with ambition.

use wrsn::em::beamform;
use wrsn::em::noise::MeasurementNoise;
use wrsn::em::superposition;

use crate::stats::mean_std;
use crate::table::{f, Table};

/// Cluster sizes swept (victims per visit).
pub const CLUSTER_SIZES: &[usize] = &[1, 2, 3, 4, 6];
/// Per-antenna phase-jitter standard deviations swept, radians.
pub const PHASE_JITTER_RAD: &[f64] = &[0.0, 0.02, 0.05, 0.1];
/// Random victim layouts per configuration.
pub const LAYOUTS: u64 = 20;

fn victim_layout(m: usize, seed: u64) -> Vec<(f64, f64)> {
    // Victims scattered 1.5–3 m in front of the array.
    let mut noise = MeasurementNoise::new(seed, 1.0);
    (0..m)
        .map(|_| {
            let x = 1.5 + 1.5 * (0.5 + 0.2 * noise.standard_normal()).clamp(0.0, 1.0);
            let y = 1.2 * noise.standard_normal().clamp(-1.5, 1.5);
            (x, y)
        })
        .collect()
}

/// Mean suppression (1 − residual/honest) across a cluster, for one layout
/// and jitter level.
fn suppression(m: usize, seed: u64, jitter_rad: f64) -> Option<f64> {
    let antennas = beamform::linear_array(m + 1, 0.0, 0.0, 0.3);
    let victims = victim_layout(m, seed);
    let weights = beamform::null_weights(&antennas, &victims)?;
    let mut jitter = MeasurementNoise::new(seed.wrapping_add(99), 1.0);
    let jittered: Vec<_> = weights
        .iter()
        .map(|w| w.rotate(jitter_rad * jitter.standard_normal()))
        .collect();
    let mut fractions = Vec::new();
    for &v in &victims {
        // "Honest" reference: the full array transmitting coherently in
        // phase at full power.
        let honest_waves = beamform::waves_with_weights(
            &antennas,
            &vec![wrsn::em::Phasor::new(1.0, 0.0); antennas.len()],
            v,
        );
        let honest = superposition::received_power(&honest_waves);
        if honest <= 0.0 {
            continue;
        }
        let residual = beamform::received_power_with_weights(&antennas, &jittered, v);
        fractions.push(1.0 - (residual / honest).min(1.0));
    }
    Some(mean_std(&fractions).0)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "fig13: multi-victim nulling — mean suppression vs cluster size and phase jitter",
        &[
            "victims per visit",
            "antennas",
            "jitter 0",
            "jitter 0.02 rad",
            "jitter 0.05 rad",
            "jitter 0.1 rad",
        ],
    );
    // One nulling solve per (cluster size, jitter, layout) — all independent.
    // Fan the whole cross product out; in-order collection plus a seed-order
    // flatten reproduces the sequential `filter_map` exactly.
    let cells: Vec<(usize, f64)> = CLUSTER_SIZES
        .iter()
        .flat_map(|&m| PHASE_JITTER_RAD.iter().map(move |&j| (m, j)))
        .collect();
    let layouts = LAYOUTS as usize;
    let sups = crate::parallel::map_indexed(cells.len() * layouts, |k| {
        let (m, j) = cells[k / layouts];
        suppression(m, (k % layouts) as u64 * 131 + 7, j)
    });
    for (mi, &m) in CLUSTER_SIZES.iter().enumerate() {
        let mut row = vec![m.to_string(), (m + 1).to_string()];
        for ji in 0..PHASE_JITTER_RAD.len() {
            let cell = (mi * PHASE_JITTER_RAD.len() + ji) * layouts;
            let sups: Vec<f64> = sups[cell..cell + layouts]
                .iter()
                .filter_map(|s| *s)
                .collect();
            row.push(f(mean_std(&sups).0, 4));
        }
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_suppression_is_essentially_total() {
        for &m in &[1usize, 3] {
            let s = suppression(m, 7, 0.0).unwrap();
            assert!(s > 0.999999, "m={m}: suppression {s}");
        }
    }

    #[test]
    fn jitter_degrades_suppression() {
        let clean = suppression(3, 7, 0.0).unwrap();
        let dirty = suppression(3, 7, 0.1).unwrap();
        assert!(dirty < clean);
        assert!(
            dirty > 0.5,
            "even jittered arrays suppress most power: {dirty}"
        );
    }
}
