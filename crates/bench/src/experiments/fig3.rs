//! `fig3` — received charging power vs. distance, with the empirical
//! `P(d) = α/(d+β)²` model fitted to the emulated measurements.

use wrsn::testbed::measure;
use wrsn::testbed::TestbedParams;

use crate::table::{f, Table};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let params = TestbedParams::default();
    let distances: Vec<f64> = (2..=30).map(|k| k as f64 * 0.1).collect();
    let (series, fit) = measure::distance_campaign(&params, &distances);

    let mut samples = Table::new(
        "fig3a: received power vs distance (measured on the emulated bench)",
        &[
            "distance (m)",
            "ideal P (W)",
            "measured P (W)",
            "fitted P (W)",
        ],
    );
    for (d, ideal, noisy) in &series.samples {
        let fitted = fit.alpha / ((d + fit.beta) * (d + fit.beta));
        samples.push(vec![f(*d, 2), f(*ideal, 4), f(*noisy, 4), f(fitted, 4)]);
    }

    let truth = wrsn::em::ChargeModel::powercast();
    let mut params_table = Table::new(
        "fig3b: fitted empirical model parameters vs ground truth",
        &["parameter", "true", "fitted"],
    );
    params_table.push(vec![
        "alpha (W·m²)".into(),
        f(truth.alpha(), 4),
        f(fit.alpha, 4),
    ]);
    params_table.push(vec!["beta (m)".into(), f(truth.beta(), 4), f(fit.beta, 4)]);
    params_table.push(vec!["R²".into(), "1.0000".into(), f(fit.r_squared, 4)]);

    vec![samples, params_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_is_close_to_truth() {
        let tables = run();
        let alpha_true = tables[1].cell_f64(0, 1);
        let alpha_fit = tables[1].cell_f64(0, 2);
        assert!((alpha_true - alpha_fit).abs() < 0.1);
        let r2 = tables[1].cell_f64(2, 2);
        assert!(r2 > 0.9);
    }

    #[test]
    fn power_decreases_with_distance() {
        let tables = run();
        let first = tables[0].cell_f64(0, 1);
        let last = tables[0].cell_f64(tables[0].rows.len() - 1, 1);
        assert!(first > last);
    }
}
