//! `tab2` — the emulated benchtop: per-mote outcomes under honest charging
//! vs. the Charging Spoofing Attack, with detector verdicts.

use wrsn::testbed::{run_bench_experiment, TestbedParams};

use crate::table::{f, Table};

/// Bench horizon, seconds (a benchtop afternoon-and-then-some).
pub const HORIZON_S: f64 = 120_000.0;

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let outcome = run_bench_experiment(&TestbedParams::default(), HORIZON_S);

    let mut per_mote = Table::new(
        "tab2: emulated 8-mote benchtop, honest vs spoofed charging",
        &[
            "mote",
            "key node",
            "honest delivered (J)",
            "honest survived",
            "attack delivered (J)",
            "death under attack (h)",
            "flagged",
        ],
    );
    for row in &outcome.rows {
        per_mote.push(vec![
            row.node.to_string(),
            if row.is_key { "yes" } else { "no" }.to_string(),
            f(row.honest_delivered_j, 1),
            if row.honest_alive { "yes" } else { "no" }.to_string(),
            f(row.attack_delivered_j, 1),
            row.attack_death_s
                .map(|t| format!("{:.1}", t / 3600.0))
                .unwrap_or_else(|| "alive".to_string()),
            if row.flagged { "YES" } else { "no" }.to_string(),
        ]);
    }

    let mut summary = Table::new(
        "tab2b: benchtop summary",
        &["metric", "honest", "attack", "absent"],
    );
    summary.push(vec![
        "motes alive at end".into(),
        outcome.honest.alive_nodes.to_string(),
        outcome.attack.alive_nodes.to_string(),
        outcome.absent.alive_nodes.to_string(),
    ]);
    summary.push(vec![
        "energy delivered (J)".into(),
        f(outcome.honest.total_delivered_j, 1),
        f(outcome.attack.total_delivered_j, 1),
        f(outcome.absent.total_delivered_j, 1),
    ]);
    summary.push(vec![
        "energy radiated (J)".into(),
        f(outcome.honest.total_radiated_j, 0),
        f(outcome.attack.total_radiated_j, 0),
        f(outcome.absent.total_radiated_j, 0),
    ]);
    summary.push(vec![
        "targeted victims exhausted".into(),
        "—".into(),
        format!(
            "{}/{} ({:.0} %)",
            outcome.outcome.exhausted,
            outcome.outcome.targeted,
            outcome.outcome.exhausted_ratio * 100.0
        ),
        "—".into(),
    ]);
    summary.push(vec![
        "attack detection ratio".into(),
        "—".into(),
        f(outcome.detection_ratio, 2),
        "—".into(),
    ]);

    vec![per_mote, summary]
}
