//! `fig12` (extension) — the attack-vs-detector payoff matrix.
//!
//! Four charger behaviours × four audits, detection ratio measured on each
//! behaviour's own victims (for honest operation, on the nodes it served).
//! The matrix shows what the spoofing hardware buys: CSA is the only attack
//! that passes every *live* audit — the neglect attacker needs no hardware
//! but leaves the targeted-starvation pattern the fairness audit reads, and
//! the eager spoofer's victims survive to contradict it. Only post-mortem
//! forensics (alarms after the victims are already dead) sees CSA.

use wrsn::core::attack::{CsaAttackPolicy, EagerSpoofPolicy, SelectiveNeglectPolicy};
use wrsn::core::detect::{
    Detector, EnergyReportAudit, FairnessAudit, PostMortemAudit, RadiatedPowerAudit,
};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder, StatsRecorder};
use wrsn::sim::World;

use crate::stats::mean_std;
use crate::table::{f, Table};

/// Network size.
pub const NODES: usize = 100;
/// Seeds per behaviour.
pub const SEEDS: u64 = 3;

struct Run {
    world: World,
    victims: Vec<NodeId>,
}

fn behaviours() -> Vec<&'static str> {
    vec!["honest-edf", "csa", "eager-spoof", "selective-neglect"]
}

fn run_behaviour(label: &str, seed: u64, rec: &mut dyn Recorder) -> Run {
    let scenario = Scenario::paper_scale(NODES, seed);
    let mut world = scenario.build();
    match label {
        "honest-edf" => {
            world
                .run_with(&mut wrsn::charge::EarliestDeadlineFirst::new(), rec)
                .expect("run");
            let victims = world.trace().sessions().iter().map(|s| s.node).collect();
            Run { world, victims }
        }
        "csa" => {
            let mut p = CsaAttackPolicy::new(scenario.tide_config());
            world.run_with(&mut p, rec).expect("run");
            let victims = p.targets().iter().map(|&(n, _)| n).collect();
            Run { world, victims }
        }
        "eager-spoof" => {
            let mut p = EagerSpoofPolicy::new(3_000.0);
            world.run_with(&mut p, rec).expect("run");
            let victims = world
                .trace()
                .sessions()
                .iter()
                .filter(|s| s.mode == wrsn::sim::ChargeMode::Spoofed)
                .map(|s| s.node)
                .collect();
            Run { world, victims }
        }
        "selective-neglect" => {
            let mut p = SelectiveNeglectPolicy::new();
            world.run_with(&mut p, rec).expect("run");
            let victims = p.census();
            Run { world, victims }
        }
        other => unreachable!("unknown behaviour {other}"),
    }
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every run through `rec`. Parallel workers
/// record into private [`StatsRecorder`]s merged back in index order.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let detectors: Vec<(&str, Box<dyn Detector>)> = vec![
        ("energy-report", Box::new(EnergyReportAudit::default())),
        ("radiated-power", Box::new(RadiatedPowerAudit::default())),
        ("fairness", Box::new(FairnessAudit::default())),
        ("post-mortem", Box::new(PostMortemAudit::default())),
    ];
    let mut table = Table::new(
        "fig12: detection ratio on each behaviour's victims (live audits | forensic)",
        &[
            "behaviour",
            "energy-report",
            "radiated-power",
            "fairness",
            "post-mortem (forensic)",
        ],
    );
    let mut kills = Table::new(
        "fig12b: what each behaviour achieves (key-node deaths)",
        &["behaviour", "victims", "victims dead at horizon"],
    );
    // All (behaviour, seed) simulations at once; the analysis below walks
    // them in the original order, so the table is unchanged.
    let labels = behaviours();
    let seeds = SEEDS as usize;
    let observe = rec.enabled();
    let pairs = crate::parallel::map_indexed(labels.len() * seeds, |k| {
        let mut worker = StatsRecorder::new();
        let mut null = NullRecorder;
        let sink: &mut dyn Recorder = if observe { &mut worker } else { &mut null };
        (
            run_behaviour(labels[k / seeds], (k % seeds) as u64, sink),
            worker,
        )
    });
    let mut all: Vec<Run> = Vec::with_capacity(pairs.len());
    for (run, worker) in pairs {
        if observe {
            worker.merge_into(rec);
        }
        all.push(run);
    }
    for (bi, label) in labels.into_iter().enumerate() {
        let runs = &all[bi * seeds..(bi + 1) * seeds];
        let mut row = vec![label.to_string()];
        for (_, detector) in &detectors {
            let ratios: Vec<f64> = runs
                .iter()
                .filter_map(|r| detector.analyze(&r.world).detection_ratio(&r.victims))
                .collect();
            row.push(f(mean_std(&ratios).0, 2));
        }
        table.push(row);
        let victims: Vec<f64> = runs.iter().map(|r| r.victims.len() as f64).collect();
        let dead: Vec<f64> = runs
            .iter()
            .map(|r| {
                r.victims
                    .iter()
                    .filter(|v| {
                        r.world
                            .network()
                            .node(**v)
                            .map(|n| !n.is_alive())
                            .unwrap_or(false)
                    })
                    .count() as f64
            })
            .collect();
        kills.push(vec![
            label.to_string(),
            f(mean_std(&victims).0, 1),
            f(mean_std(&dead).0, 1),
        ]);
    }
    vec![table, kills]
}
