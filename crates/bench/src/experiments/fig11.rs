//! `fig11` (extension) — the post-mortem countermeasure.
//!
//! CSA is invisible to every *live* audit because its victims die before
//! contradicting the fake charge. The tombstone pattern — served, then dead
//! within hours — is visible to an operator replaying logs. This experiment
//! quantifies the countermeasure: true-positive ratio on CSA's victims,
//! false-positive count on honest operation (budget-limited and
//! depot-provisioned), and the alarm latency relative to the damage.

use wrsn::core::attack::CsaAttackPolicy;
use wrsn::core::detect::{Detector, PostMortemAudit};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder, StatsRecorder};
use wrsn::sim::World;

use crate::stats::mean_std;
use crate::table::{f, Table};

/// Network size.
pub const NODES: usize = 100;
/// Seeds per condition.
pub const SEEDS: u64 = 3;
/// Grace periods swept, hours.
pub const GRACE_H: &[f64] = &[1.0, 3.0, 6.0, 12.0, 24.0];

struct Run {
    world: World,
    victims: Vec<NodeId>,
}

fn csa_run(seed: u64, rec: &mut dyn Recorder) -> Run {
    let scenario = Scenario::paper_scale(NODES, seed);
    let mut world = scenario.build();
    let mut policy = CsaAttackPolicy::new(scenario.tide_config());
    world.run_with(&mut policy, rec).expect("run");
    let victims = policy.targets().iter().map(|&(n, _)| n).collect();
    Run { world, victims }
}

fn honest_run(seed: u64, depot: bool, rec: &mut dyn Recorder) -> Run {
    let mut scenario = Scenario::paper_scale(NODES, seed);
    scenario.depot = depot;
    let mut world = scenario.build();
    world
        .run_with(&mut wrsn::charge::EarliestDeadlineFirst::new(), rec)
        .expect("run");
    Run {
        world,
        victims: Vec::new(),
    }
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every run through `rec`. The parallel
/// workers record into private [`StatsRecorder`]s that are merged back in
/// index order, so the merged stream is independent of the worker count.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    // Every (condition, seed) simulation is independent — fan all of them
    // out at once; index order keeps the tables byte-identical.
    let observe = rec.enabled();
    let seeds = SEEDS as usize;
    let pairs = crate::parallel::map_indexed(3 * seeds, |k| {
        let seed = (k % seeds) as u64;
        let mut worker = StatsRecorder::new();
        let mut null = NullRecorder;
        let sink: &mut dyn Recorder = if observe { &mut worker } else { &mut null };
        let run = match k / seeds {
            0 => csa_run(seed, sink),
            1 => honest_run(seed, false, sink),
            _ => honest_run(seed, true, sink),
        };
        (run, worker)
    });
    let mut all = Vec::with_capacity(pairs.len());
    for (run, worker) in pairs {
        if observe {
            worker.merge_into(rec);
        }
        all.push(run);
    }
    let depot_runs: Vec<Run> = all.split_off(2 * seeds);
    let honest_runs: Vec<Run> = all.split_off(seeds);
    let csa_runs: Vec<Run> = all;

    let mut sweep = Table::new(
        "fig11: post-mortem audit vs grace period",
        &[
            "grace (h)",
            "csa true-positive ratio",
            "honest false alarms",
            "honest+depot false alarms",
        ],
    );
    for &g in GRACE_H {
        let audit = PostMortemAudit {
            grace_period_s: g * 3600.0,
        };
        let tp: Vec<f64> = csa_runs
            .iter()
            .filter_map(|r| audit.analyze(&r.world).detection_ratio(&r.victims))
            .collect();
        let fp: Vec<f64> = honest_runs
            .iter()
            .map(|r| audit.analyze(&r.world).alarm_count() as f64)
            .collect();
        let fp_depot: Vec<f64> = depot_runs
            .iter()
            .map(|r| audit.analyze(&r.world).alarm_count() as f64)
            .collect();
        sweep.push(vec![
            f(g, 0),
            f(mean_std(&tp).0, 2),
            f(mean_std(&fp).0, 1),
            f(mean_std(&fp_depot).0, 1),
        ]);
    }

    // Latency: when do the alarms arrive relative to the campaign's damage?
    let audit = PostMortemAudit::default();
    let mut latency = Table::new(
        "fig11b: alarm timing vs damage (6 h grace, per seed)",
        &[
            "seed",
            "first alarm (h)",
            "key nodes already dead at first alarm",
            "total key nodes exhausted",
        ],
    );
    for (seed, r) in csa_runs.iter().enumerate() {
        let report = audit.analyze(&r.world);
        let first_alarm = report
            .alarms
            .iter()
            .map(|a| a.time_s)
            .fold(f64::INFINITY, f64::min);
        let dead_by_then = r
            .victims
            .iter()
            .filter(|v| {
                r.world
                    .trace()
                    .death_time_of(**v)
                    .map(|d| d <= first_alarm)
                    .unwrap_or(false)
            })
            .count();
        latency.push(vec![
            seed.to_string(),
            if first_alarm.is_finite() {
                f(first_alarm / 3600.0, 1)
            } else {
                "never".to_string()
            },
            dead_by_then.to_string(),
            r.victims.len().to_string(),
        ]);
    }

    vec![sweep, latency]
}
