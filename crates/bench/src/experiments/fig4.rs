//! `fig4` — how precisely must the attacker cancel? Residual power fraction
//! vs. phase/amplitude tuning error, plus the implied victim outcome.

use wrsn::testbed::measure;
use wrsn::testbed::TestbedParams;

use crate::table::{f, Table};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let params = TestbedParams::default();
    let phase_errors = [0.0, 0.02, 0.05, 0.1, 0.2, 0.5];
    let amp_errors = [0.0, 0.02, 0.05, 0.1];
    let rows = measure::cancellation_robustness_campaign(&params, &phase_errors, &amp_errors);

    let mut grid = Table::new(
        "fig4: residual power fraction vs attacker tuning error",
        &[
            "phase err (rad)",
            "amp err 0%",
            "amp err 2%",
            "amp err 5%",
            "amp err 10%",
        ],
    );
    for (pi, &pe) in phase_errors.iter().enumerate() {
        let mut row = vec![f(pe, 2)];
        for ai in 0..amp_errors.len() {
            let (_, _, residual) = rows[pi * amp_errors.len() + ai];
            row.push(f(residual, 5));
        }
        grid.push(row);
    }

    // What the residual means for the victim: does the leak exceed a typical
    // disconnected node drain (≈1.1 mW), i.e. would the attacker accidentally
    // keep the victim alive?
    let honest_w = wrsn::em::ChargeModel::powercast().power_at(1.0);
    let drain_w = 1.1e-3;
    let mut verdicts = Table::new(
        "fig4b: can the victim still be exhausted? (leak vs 1.1 mW node drain, 1 m spoof)",
        &["phase err (rad)", "amp err", "leak (mW)", "victim dies"],
    );
    for &(pe, ae, residual) in &rows {
        let leak_w = residual * honest_w;
        verdicts.push(vec![
            f(pe, 2),
            f(ae, 2),
            f(leak_w * 1e3, 4),
            if leak_w < drain_w { "yes" } else { "NO" }.to_string(),
        ]);
    }

    vec![grid, verdicts]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_grows_monotonically_with_phase_error() {
        let tables = run();
        let col: Vec<f64> = (0..tables[0].rows.len())
            .map(|row| tables[0].cell_f64(row, 1))
            .collect();
        for w in col.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "{col:?}");
        }
    }

    #[test]
    fn practical_errors_still_kill_the_victim() {
        let tables = run();
        // 0.05 rad / 2 % — the default attacker — must say "yes".
        let row = tables[1]
            .rows
            .iter()
            .find(|r| r[0] == "0.05" && r[1] == "0.02")
            .expect("default error row");
        assert_eq!(row[3], "yes");
    }
}
