//! `fig10` — CSA's empirical approximation ratio against the exact solver on
//! small instances ("bounded performance guarantee").

use wrsn::core::{csa, exact, theory};
use wrsn::sim::obs::{NullRecorder, Recorder};

use crate::experiments::common::synthetic_instance;
use crate::stats::{mean_std, min};
use crate::table::{f, Table};

/// Instances per configuration.
pub const INSTANCES: u64 = 50;
/// Victims per instance.
pub const VICTIMS: usize = 8;

/// Window-length / budget configurations swept (label, window seconds,
/// budget joules).
pub const CONFIGS: &[(&str, f64, f64)] = &[
    ("tight windows, tight budget", 120.0, 400.0),
    ("tight windows, loose budget", 120.0, 5_000.0),
    ("loose windows, tight budget", 800.0, 400.0),
    ("loose windows, loose budget", 800.0, 5_000.0),
];

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, counting CSA planner work into `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let mut table = Table::new(
        format!(
            "fig10: CSA / exact utility ratio over {INSTANCES} random instances of {VICTIMS} victims \
             (theoretical floor {:.3})",
            theory::greedy_guarantee()
        ),
        &["configuration", "mean ratio", "min ratio", "ratio = 1 (%)"],
    );
    for &(label, window, budget) in CONFIGS {
        let mut ratios = Vec::new();
        let mut perfect = 0usize;
        for seed in 0..INSTANCES {
            let inst = synthetic_instance(VICTIMS, seed.wrapping_mul(7919) + 13, window, budget);
            let opt = inst.utility(&exact::solve(&inst));
            let got = inst.utility(&csa::plan_with_obs(&inst, &csa::CsaOptions::default(), rec));
            let ratio = theory::approximation_ratio(got, opt);
            if ratio > 1.0 - 1e-9 {
                perfect += 1;
            }
            ratios.push(ratio);
        }
        let (m, s) = mean_std(&ratios);
        table.push(vec![
            label.to_string(),
            format!("{m:.3} ± {s:.3}"),
            // One ratio per seed, so the sample is never empty.
            f(min(&ratios).expect("INSTANCES > 0"), 3),
            f(100.0 * perfect as f64 / INSTANCES as f64, 0),
        ]);
    }
    vec![table]
}

/// Worst observed ratio across all configurations (for the integration
/// tests' bound assertion).
pub fn worst_ratio() -> f64 {
    let mut worst = 1.0f64;
    for &(_, window, budget) in CONFIGS {
        for seed in 0..INSTANCES {
            let inst = synthetic_instance(VICTIMS, seed.wrapping_mul(7919) + 13, window, budget);
            let opt = inst.utility(&exact::solve(&inst));
            let got = inst.utility(&csa::plan(&inst));
            worst = worst.min(theory::approximation_ratio(got, opt));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_ratio_respects_the_theoretical_floor() {
        assert!(
            worst_ratio() >= theory::greedy_guarantee() - 1e-9,
            "worst ratio {} under floor",
            worst_ratio()
        );
    }
}
