//! `fig2` — the nonlinear superposition law: received power vs. phase offset.
//!
//! Validates the abstract's Section-II claim ("we explain and model the
//! nonlinear superposition effect through experiments"). Prints the ideal
//! interference pattern and the emulated noisy measurements for three
//! amplitude ratios.

use wrsn::em::superposition;
use wrsn::testbed::measure;
use wrsn::testbed::TestbedParams;

use crate::table::{f, Table};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let params = TestbedParams::default();

    let mut measured = Table::new(
        "fig2a: measured two-wave power vs phase offset (equal amplitudes)",
        &["phase offset (rad)", "ideal P/Pmax", "measured P/Pmax"],
    );
    let series = measure::phase_offset_campaign(&params, 25);
    for (x, ideal, noisy) in &series.samples {
        measured.push(vec![f(*x, 3), f(*ideal, 4), f(*noisy, 4)]);
    }

    let mut ratios = Table::new(
        "fig2b: ideal interference pattern for unequal amplitude ratios",
        &["phase offset (rad)", "a2/a1=1.0", "a2/a1=0.8", "a2/a1=0.5"],
    );
    let sweeps: Vec<Vec<(f64, f64)>> = [1.0, 0.8, 0.5]
        .iter()
        .map(|&r| superposition::phase_sweep(1.0, r, 13))
        .collect();
    for ((s0, s1), s2) in sweeps[0].iter().zip(&sweeps[1]).zip(&sweeps[2]) {
        ratios.push(vec![f(s0.0, 3), f(s0.1, 4), f(s1.1, 4), f(s2.1, 4)]);
    }

    let mut check = Table::new(
        "fig2c: three-meter-reading superposition check (P1, P2 alone vs together)",
        &[
            "Δφ (rad)",
            "P1 (W)",
            "P2 (W)",
            "together (W)",
            "naive P1+P2 (W)",
        ],
    );
    for &dphi in &[0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI] {
        let (p1, p2, together, naive) = measure::superposition_check(&params, dphi);
        check.push(vec![
            f(dphi, 3),
            f(p1, 3),
            f(p2, 3),
            f(together, 3),
            f(naive, 3),
        ]);
    }

    vec![measured, ratios, check]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sits_at_pi_and_peak_at_zero() {
        let tables = run();
        let first = tables[0].cell_f64(0, 1);
        let mid = tables[0].cell_f64(12, 1); // 25 samples → index 12 is π
        assert!((first - 1.0).abs() < 1e-9);
        assert!(mid < 1e-3, "ideal null = {mid}");
    }

    #[test]
    fn unequal_amplitudes_have_shallower_nulls() {
        let tables = run();
        // Row 6 is Δφ = π.
        let null_10 = tables[1].cell_f64(6, 1);
        let null_08 = tables[1].cell_f64(6, 2);
        let null_05 = tables[1].cell_f64(6, 3);
        assert!(null_10 < null_08 && null_08 < null_05);
    }
}
