//! `fig6` — the headline: fraction of key nodes exhausted (under a
//! masquerade) vs. network size, from full attack executions.

use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};

use crate::experiments::common::{run_csa, run_csa_with};
use crate::stats::mean_std;
use crate::table::{f, pm, Table};

/// Network sizes swept.
pub const SIZES: &[usize] = &[50, 100, 150, 200];
/// Seeds per size.
pub const SEEDS: u64 = 5;

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every campaign through `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let mut table = Table::new(
        "fig6: key nodes exhausted by the executed attack vs network size (paper: ≥80 %)",
        &[
            "nodes",
            "targeted",
            "exhausted/targeted",
            "census covered",
            "charger energy (kJ)",
        ],
    );
    for &n in SIZES {
        let mut targeted = Vec::new();
        let mut exhausted_ratio = Vec::new();
        let mut covered = Vec::new();
        let mut energy = Vec::new();
        for seed in 0..SEEDS {
            let scenario = Scenario::paper_scale(n, seed);
            let (_, _, report, outcome) = run_csa_with(&scenario, rec);
            targeted.push(outcome.targeted as f64);
            exhausted_ratio.push(outcome.exhausted_ratio);
            covered.push(outcome.covered_exhausted_ratio);
            energy.push(report.charger_energy_used_j / 1e3);
        }
        let (tm, _) = mean_std(&targeted);
        let (em_, es) = mean_std(&exhausted_ratio);
        let (cm, cs) = mean_std(&covered);
        let (gm, _) = mean_std(&energy);
        table.push(vec![
            n.to_string(),
            f(tm, 1),
            pm(em_, es, 2),
            pm(cm, cs, 2),
            f(gm, 0),
        ]);
    }
    vec![table]
}

/// Mean covered-census ratio per size (for the headline assertion).
pub fn covered_ratios() -> Vec<(usize, f64)> {
    SIZES
        .iter()
        .map(|&n| {
            let mut covered = Vec::new();
            for seed in 0..SEEDS {
                let scenario = Scenario::paper_scale(n, seed);
                let (_, _, _, outcome) = run_csa(&scenario);
                covered.push(outcome.covered_exhausted_ratio);
            }
            (n, mean_std(&covered).0)
        })
        .collect()
}
