//! `tab3` — ablation: what each CSA component buys.
//!
//! Planner-level knobs (ratio ordering, 2-opt route repair, latest-start
//! shifting) are measured as planned utility on identical instances;
//! execution-level knobs (stealth windows, adaptive replanning, decoy
//! service) are measured on full runs, including the detector's view.

use wrsn::core::attack::{evaluate_attack, CsaAttackPolicy};
use wrsn::core::csa::{self, CsaOptions};
use wrsn::core::detect::{Detector, EnergyReportAudit};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;

use crate::stats::mean_std;
use crate::table::{f, Table};

/// Network size.
pub const NODES: usize = 100;
/// Seeds per configuration.
pub const SEEDS: u64 = 3;

/// Synthetic-instance seeds for the planner ablation — real census instances
/// are too easy (every order serves everyone), so the knobs only separate on
/// contended instances: many victims, tight budget.
const PLANNER_SEEDS: u64 = 10;

fn planner_ablation() -> Table {
    let variants: &[(&str, CsaOptions)] = &[
        ("full CSA", CsaOptions::default()),
        (
            "no ratio ordering",
            CsaOptions {
                ratio_ordering: false,
                ..CsaOptions::default()
            },
        ),
        (
            "no 2-opt repair",
            CsaOptions {
                route_improvement: false,
                ..CsaOptions::default()
            },
        ),
        (
            "no latest-start shift",
            CsaOptions {
                latest_start: false,
                ..CsaOptions::default()
            },
        ),
    ];
    let mut table = Table::new(
        "tab3a: planner ablation on contended instances (20 victims, 800 J budget)",
        &["variant", "utility", "energy (J)", "mean slack before death (s)"],
    );
    for (label, opts) in variants {
        let mut utility = Vec::new();
        let mut energy = Vec::new();
        let mut slack = Vec::new();
        for seed in 0..PLANNER_SEEDS {
            let inst = crate::experiments::common::synthetic_instance(20, seed, 300.0, 800.0);
            let plan = csa::plan_with(&inst, opts);
            debug_assert!(inst.validate(&plan).is_ok());
            utility.push(inst.utility(&plan));
            energy.push(inst.energy_cost(&plan));
            // Slack = victim's residual life after the masquerade ends;
            // latest-start shifting exists to shrink this.
            let slacks: Vec<f64> = plan
                .stops()
                .iter()
                .filter_map(|s| {
                    inst.victims
                        .get(s.victim)
                        .map(|v| v.death_s - (s.begin_s + v.service_s))
                })
                .collect();
            slack.push(mean_std(&slacks).0);
        }
        table.push(vec![
            label.to_string(),
            f(mean_std(&utility).0, 1),
            f(mean_std(&energy).0, 0),
            f(mean_std(&slack).0, 0),
        ]);
    }
    table
}

fn execution_ablation() -> Table {
    let mut table = Table::new(
        "tab3b: execution ablation (full runs)",
        &[
            "variant",
            "targeted",
            "census covered",
            "energy-audit detection",
        ],
    );
    let variants: &[&str] = &[
        "full CSA",
        "no stealth windows",
        "static plan",
        "no decoy service",
    ];
    for &label in variants {
        let mut targeted = Vec::new();
        let mut covered = Vec::new();
        let mut detection = Vec::new();
        for seed in 0..SEEDS {
            let scenario = Scenario::paper_scale(NODES, seed);
            let mut cfg = scenario.tide_config();
            if label == "no stealth windows" {
                cfg.stealth_windows = false;
            }
            let mut policy = CsaAttackPolicy::new(cfg);
            if label == "static plan" {
                policy = policy.with_static_plan();
            }
            if label == "no decoy service" {
                policy = policy.without_decoys();
            }
            let mut world = scenario.build();
            world.run(&mut policy);
            let outcome = evaluate_attack(&world, &policy);
            let victims: Vec<NodeId> = policy.targets().iter().map(|&(n, _)| n).collect();
            targeted.push(outcome.targeted as f64);
            covered.push(outcome.covered_exhausted_ratio);
            detection.push(
                EnergyReportAudit::default()
                    .analyze(&world)
                    .detection_ratio(&victims),
            );
        }
        table.push(vec![
            label.to_string(),
            f(mean_std(&targeted).0, 1),
            f(mean_std(&covered).0, 2),
            f(mean_std(&detection).0, 2),
        ]);
    }
    table
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    vec![planner_ablation(), execution_ablation()]
}
