//! `tab3` — ablation: what each CSA component buys.
//!
//! Planner-level knobs (ratio ordering, 2-opt route repair, latest-start
//! shifting) are measured as planned utility on identical instances;
//! execution-level knobs (stealth windows, adaptive replanning, decoy
//! service) are measured on full runs, including the detector's view.

use wrsn::core::attack::{evaluate_attack, CsaAttackPolicy};
use wrsn::core::csa::{self, CsaOptions};
use wrsn::core::detect::{Detector, EnergyReportAudit};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder, StatsRecorder};

use crate::stats::mean_std;
use crate::table::{f, Table};

/// Network size.
pub const NODES: usize = 100;
/// Seeds per configuration.
pub const SEEDS: u64 = 3;

/// Synthetic-instance seeds for the planner ablation — real census instances
/// are too easy (every order serves everyone), so the knobs only separate on
/// contended instances: many victims, tight budget.
const PLANNER_SEEDS: u64 = 10;

fn planner_ablation(rec: &mut dyn Recorder) -> Table {
    let variants: &[(&str, CsaOptions)] = &[
        ("full CSA", CsaOptions::default()),
        (
            "no ratio ordering",
            CsaOptions {
                ratio_ordering: false,
                ..CsaOptions::default()
            },
        ),
        (
            "no 2-opt repair",
            CsaOptions {
                route_improvement: false,
                ..CsaOptions::default()
            },
        ),
        (
            "no latest-start shift",
            CsaOptions {
                latest_start: false,
                ..CsaOptions::default()
            },
        ),
    ];
    let mut table = Table::new(
        "tab3a: planner ablation on contended instances (20 victims, 800 J budget)",
        &[
            "variant",
            "utility",
            "energy (J)",
            "mean slack before death (s)",
        ],
    );
    let observe = rec.enabled();
    for (label, opts) in variants {
        // One planner run per seed, fanned out; per-seed rows come back in
        // seed order, so the aggregated row is byte-identical.
        let pairs = crate::parallel::map_indexed(PLANNER_SEEDS as usize, |k| {
            let mut worker = StatsRecorder::new();
            let mut null = NullRecorder;
            let sink: &mut dyn Recorder = if observe { &mut worker } else { &mut null };
            let inst = crate::experiments::common::synthetic_instance(20, k as u64, 300.0, 800.0);
            let plan = csa::plan_with_obs(&inst, opts, sink);
            debug_assert!(inst.validate(&plan).is_ok());
            // Slack = victim's residual life after the masquerade ends;
            // latest-start shifting exists to shrink this.
            let slacks: Vec<f64> = plan
                .stops()
                .iter()
                .filter_map(|s| {
                    inst.victims
                        .get(s.victim)
                        .map(|v| v.death_s - (s.begin_s + v.service_s))
                })
                .collect();
            (
                (
                    inst.utility(&plan),
                    inst.energy_cost(&plan),
                    mean_std(&slacks).0,
                ),
                worker,
            )
        });
        let mut rows = Vec::with_capacity(pairs.len());
        for (row, worker) in pairs {
            if observe {
                worker.merge_into(rec);
            }
            rows.push(row);
        }
        let utility: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let energy: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let slack: Vec<f64> = rows.iter().map(|r| r.2).collect();
        table.push(vec![
            label.to_string(),
            f(mean_std(&utility).0, 1),
            f(mean_std(&energy).0, 0),
            f(mean_std(&slack).0, 0),
        ]);
    }
    table
}

fn execution_ablation(rec: &mut dyn Recorder) -> Table {
    let mut table = Table::new(
        "tab3b: execution ablation (full runs)",
        &[
            "variant",
            "targeted",
            "census covered",
            "energy-audit detection",
        ],
    );
    let variants: &[&str] = &[
        "full CSA",
        "no stealth windows",
        "static plan",
        "no decoy service",
    ];
    // Full (variant, seed) simulations are independent — run them all at
    // once and aggregate per variant afterwards, in the original order.
    let seeds = SEEDS as usize;
    let observe = rec.enabled();
    let pairs = crate::parallel::map_indexed(variants.len() * seeds, |k| {
        let mut worker = StatsRecorder::new();
        let mut null = NullRecorder;
        let sink: &mut dyn Recorder = if observe { &mut worker } else { &mut null };
        let label = variants[k / seeds];
        let seed = (k % seeds) as u64;
        let scenario = Scenario::paper_scale(NODES, seed);
        let mut cfg = scenario.tide_config();
        if label == "no stealth windows" {
            cfg.stealth_windows = false;
        }
        let mut policy = CsaAttackPolicy::new(cfg);
        if label == "static plan" {
            policy = policy.with_static_plan();
        }
        if label == "no decoy service" {
            policy = policy.without_decoys();
        }
        let mut world = scenario.build();
        world.run_with(&mut policy, sink).expect("run");
        let outcome = evaluate_attack(&world, &policy);
        let victims: Vec<NodeId> = policy.targets().iter().map(|&(n, _)| n).collect();
        (
            (
                outcome.targeted as f64,
                outcome.covered_exhausted_ratio,
                EnergyReportAudit::default()
                    .analyze(&world)
                    .detection_ratio(&victims),
            ),
            worker,
        )
    });
    let mut all = Vec::with_capacity(pairs.len());
    for (row, worker) in pairs {
        if observe {
            worker.merge_into(rec);
        }
        all.push(row);
    }
    for (vi, &label) in variants.iter().enumerate() {
        let rows = &all[vi * seeds..(vi + 1) * seeds];
        let targeted: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let covered: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let detection: Vec<f64> = rows.iter().filter_map(|r| r.2).collect();
        table.push(vec![
            label.to_string(),
            f(mean_std(&targeted).0, 1),
            f(mean_std(&covered).0, 2),
            f(mean_std(&detection).0, 2),
        ]);
    }
    table
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing planner and execution runs through `rec`.
/// Parallel workers record into private [`StatsRecorder`]s merged back in
/// index order.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    vec![planner_ablation(rec), execution_ablation(rec)]
}
