//! One module per experiment; see `EXPERIMENTS.md` for the index.

pub mod arms_race;
pub mod common;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod overload;
pub mod scale;
pub mod tab1;
pub mod tab2;
pub mod tab3;
