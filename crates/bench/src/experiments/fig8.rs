//! `fig8` — detection ratio vs. detector threshold for honest charging, CSA
//! and the window-oblivious eager spoofer ("without being detected").
//!
//! Each policy runs once per seed; thresholds are swept *post hoc* over the
//! recorded traces, which is what a base station replaying its logs would do.

use wrsn::core::attack::{CsaAttackPolicy, EagerSpoofPolicy};
use wrsn::core::detect::{Detector, EnergyReportAudit, TrajectoryAudit};
use wrsn::net::NodeId;
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};
use wrsn::sim::World;

use crate::stats::mean_std;
use crate::table::{f, Table};

/// Network size.
pub const NODES: usize = 100;
/// Seeds per policy.
pub const SEEDS: u64 = 3;

/// Energy-audit efficiency thresholds swept.
pub const EFFICIENCY_THRESHOLDS: &[f64] = &[0.1, 0.3, 0.5, 0.7, 0.9];
/// Trajectory-audit response deadlines swept, seconds.
pub const RESPONSE_DEADLINES: &[f64] = &[100e3, 300e3, 600e3, 1_000e3];

struct Run {
    world: World,
    /// Nodes whose detection status we evaluate (served/targeted nodes).
    victims: Vec<NodeId>,
}

fn runs_for(policy_kind: &str, seed: u64, rec: &mut dyn Recorder) -> Run {
    let scenario = Scenario::paper_scale(NODES, seed);
    let mut world = scenario.build();
    let victims = match policy_kind {
        "honest" => {
            world
                .run_with(&mut wrsn::charge::Njnp::new(), rec)
                .expect("run");
            world.trace().sessions().iter().map(|s| s.node).collect()
        }
        "csa" => {
            let mut p = CsaAttackPolicy::new(scenario.tide_config());
            world.run_with(&mut p, rec).expect("run");
            p.targets().iter().map(|&(n, _)| n).collect()
        }
        "eager" => {
            let mut p = EagerSpoofPolicy::new(3_000.0);
            world.run_with(&mut p, rec).expect("run");
            world.trace().sessions().iter().map(|s| s.node).collect()
        }
        other => unreachable!("unknown policy {other}"),
    };
    let mut victims: Vec<NodeId> = victims;
    victims.sort();
    victims.dedup();
    Run { world, victims }
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every run through `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let policies = ["honest", "csa", "eager"];
    let runs: Vec<Vec<Run>> = policies
        .iter()
        .map(|p| (0..SEEDS).map(|s| runs_for(p, s, rec)).collect())
        .collect();

    let mut energy = Table::new(
        "fig8a: energy-report-audit detection ratio vs efficiency threshold",
        &["threshold", "honest-njnp", "csa", "eager-spoof"],
    );
    for &thr in EFFICIENCY_THRESHOLDS {
        let mut row = vec![f(thr, 1)];
        for policy_runs in &runs {
            let ratios: Vec<f64> = policy_runs
                .iter()
                .filter_map(|r| {
                    EnergyReportAudit {
                        efficiency_threshold: thr,
                        ..EnergyReportAudit::default()
                    }
                    .analyze(&r.world)
                    .detection_ratio(&r.victims)
                })
                .collect();
            row.push(f(mean_std(&ratios).0, 2));
        }
        energy.push(row);
    }

    let mut trajectory = Table::new(
        "fig8b: trajectory-audit detection ratio vs response deadline",
        &["deadline (s)", "honest-njnp", "csa", "eager-spoof"],
    );
    for &dl in RESPONSE_DEADLINES {
        let mut row = vec![f(dl, 0)];
        for policy_runs in &runs {
            let ratios: Vec<f64> = policy_runs
                .iter()
                .filter_map(|r| {
                    TrajectoryAudit { max_response_s: dl }
                        .analyze(&r.world)
                        .detection_ratio(&r.victims)
                })
                .collect();
            row.push(f(mean_std(&ratios).0, 2));
        }
        trajectory.push(row);
    }

    vec![energy, trajectory]
}
