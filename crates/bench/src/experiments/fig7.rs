//! `fig7` — sensitivity of the executed attack to the charger's speed and
//! energy budget.

use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};

use crate::experiments::common::run_csa_with;
use crate::stats::mean_std;
use crate::table::{f, pm, Table};

/// Network size used for the sweeps.
pub const NODES: usize = 100;
/// Seeds per point.
pub const SEEDS: u64 = 3;

/// Charger speeds swept, m/s. Sub-m/s speeds matter: stealth windows are
/// only minutes long, so a slow crawler starts missing them.
pub const SPEEDS: &[f64] = &[0.1, 0.25, 1.0, 5.0];
/// Charger budgets swept, joules. The masquerades themselves are cheap
/// (~5–20 kJ per victim); the sweep descends into the regime where the
/// budget caps the victim count.
pub const BUDGETS: &[f64] = &[2.0e4, 5.0e4, 1.0e5, 2.0e6];

fn sweep<F: Fn(&mut Scenario, f64)>(
    values: &[f64],
    label: &str,
    apply: F,
    rec: &mut dyn Recorder,
) -> Table {
    let mut table = Table::new(
        format!("fig7: executed attack vs {label} ({NODES} nodes)"),
        &[label, "targeted", "census covered", "utility"],
    );
    for &v in values {
        let mut targeted = Vec::new();
        let mut covered = Vec::new();
        let mut utility = Vec::new();
        for seed in 0..SEEDS {
            let mut scenario = Scenario::paper_scale(NODES, seed);
            apply(&mut scenario, v);
            let (_, _, _, outcome) = run_csa_with(&scenario, rec);
            targeted.push(outcome.targeted as f64);
            covered.push(outcome.covered_exhausted_ratio);
            utility.push(outcome.utility);
        }
        let (cm, cs) = mean_std(&covered);
        table.push(vec![
            f(v, 1),
            f(mean_std(&targeted).0, 1),
            pm(cm, cs, 2),
            f(mean_std(&utility).0, 1),
        ]);
    }
    table
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, observing every campaign through `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    vec![
        sweep(SPEEDS, "speed (m/s)", |s, v| s.mc_speed_mps = v, rec),
        sweep(BUDGETS, "budget (J)", |s, v| s.mc_energy_j = v, rec),
    ]
}
