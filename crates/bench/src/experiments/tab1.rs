//! `tab1` — planner runtime scaling with victim count.
//!
//! Wall-clock medians over a few repetitions; the Criterion benches in
//! `benches/microbench.rs` measure the same costs rigorously.

use std::time::Instant;

use wrsn::core::baseline;
use wrsn::core::exact;

use crate::experiments::common::synthetic_instance;
use crate::table::Table;

/// Victim counts swept.
pub const SIZES: &[usize] = &[5, 10, 20, 40, 80];
/// Repetitions per measurement (median reported).
pub const REPS: usize = 5;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "tab1: planner runtime vs victim count (median ms)",
        &["victims", "csa", "greedy-utility", "tsp", "random", "exact"],
    );
    for &n in SIZES {
        let inst = synthetic_instance(n, 42, 400.0, 1.0e9);
        let mut row = vec![n.to_string()];
        for planner in baseline::standard_planners(1) {
            let samples: Vec<f64> = (0..REPS)
                .map(|_| {
                    let t0 = Instant::now();
                    let s = planner.plan(&inst);
                    std::hint::black_box(s);
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            row.push(format!("{:.2}", median_ms(samples)));
        }
        if n <= 12 {
            let samples: Vec<f64> = (0..REPS)
                .map(|_| {
                    let t0 = Instant::now();
                    let s = exact::solve(&inst);
                    std::hint::black_box(s);
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            row.push(format!("{:.2}", median_ms(samples)));
        } else {
            row.push("—".to_string());
        }
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_sample() {
        assert_eq!(median_ms(vec![3.0, 1.0, 2.0]), 2.0);
    }
}
