//! `fig5` — attack utility vs. network size: CSA against the baseline
//! planners (greedy-utility, TSP-order, random) on identical TIDE instances.

use wrsn::core::baseline;
use wrsn::core::tide::TideInstance;
use wrsn::scenario::Scenario;
use wrsn::sim::obs::{NullRecorder, Recorder};

use crate::stats::mean_std;
use crate::table::{pm, Table};

/// Network sizes swept.
pub const SIZES: &[usize] = &[50, 100, 150, 200];
/// Seeds per size.
pub const SEEDS: u64 = 8;

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    run_with(&mut NullRecorder)
}

/// Runs the experiment, counting planner work into `rec`.
pub fn run_with(rec: &mut dyn Recorder) -> Vec<Table> {
    let mut table = Table::new(
        "fig5: planned attack utility vs network size (mean ± std over seeds)",
        &["nodes", "victims", "csa", "greedy-utility", "tsp", "random"],
    );
    for &n in SIZES {
        let mut victims = Vec::new();
        let mut per_planner: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for seed in 0..SEEDS {
            let scenario = Scenario::paper_scale(n, seed);
            let world = scenario.build();
            let instance = TideInstance::from_world(&world, &scenario.tide_config());
            victims.push(instance.victim_count() as f64);
            for (k, planner) in baseline::standard_planners(seed).iter().enumerate() {
                let schedule = planner.plan_obs(&instance, rec);
                debug_assert!(instance.validate(&schedule).is_ok());
                per_planner[k].push(instance.utility(&schedule));
            }
        }
        let (vm, _) = mean_std(&victims);
        let cells: Vec<String> = per_planner
            .iter()
            .map(|xs| {
                let (m, s) = mean_std(xs);
                pm(m, s, 1)
            })
            .collect();
        table.push(vec![
            n.to_string(),
            format!("{vm:.1}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    vec![table]
}

/// CSA's mean utility advantage over the best baseline, per size (used by the
/// integration tests to assert the paper's "CSA wins" shape).
pub fn csa_advantage() -> Vec<(usize, f64, f64)> {
    let mut out = Vec::new();
    for &n in SIZES {
        let mut csa = Vec::new();
        let mut best_base = Vec::new();
        for seed in 0..SEEDS {
            let scenario = Scenario::paper_scale(n, seed);
            let world = scenario.build();
            let instance = TideInstance::from_world(&world, &scenario.tide_config());
            let planners = baseline::standard_planners(seed);
            let utilities: Vec<f64> = planners
                .iter()
                .map(|p| instance.utility(&p.plan(&instance)))
                .collect();
            csa.push(utilities[0]);
            best_base.push(utilities[1..].iter().cloned().fold(0.0, f64::max));
        }
        out.push((n, mean_std(&csa).0, mean_std(&best_base).0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csa_never_loses_to_the_baselines_on_average() {
        for (n, csa, best_base) in csa_advantage() {
            assert!(
                csa + 1e-9 >= best_base,
                "n={n}: csa {csa} vs best baseline {best_base}"
            );
        }
    }
}
