//! Aligned ASCII tables with CSV export.

use std::fmt::Write as _;

/// A titled result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (includes the experiment id).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells, each the same length as `columns`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the column count.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned ASCII.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Parses cell `(row, col)` as an `f64`.
    ///
    /// # Panics
    ///
    /// Panics with the table title, coordinates, and raw cell text when the
    /// cell is missing or not a number — so a failed assertion in a test
    /// names the offending cell instead of a bare `ParseFloatError`.
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        let cell = self
            .rows
            .get(row)
            .and_then(|r| r.get(col))
            .unwrap_or_else(|| {
                panic!(
                    "table `{}`: no cell at row {row}, col {col} ({} rows × {} cols)",
                    self.title,
                    self.rows.len(),
                    self.columns.len()
                )
            });
        cell.parse().unwrap_or_else(|e| {
            panic!(
                "table `{}`: cell at row {row}, col {col} is not a number: {cell:?} ({e})",
                self.title
            )
        })
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a `mean ± std` pair.
pub fn pm(mean: f64, std: f64, digits: usize) -> String {
    format!("{mean:.digits$} ± {std:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("test", &["a", "long-header"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["100".into(), "x".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("## test"));
        assert!(s.contains("long-header"));
        // Rows are right-aligned to the header width.
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["x"]);
        t.push(vec!["a,b".into()]);
        t.push(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn cell_f64_parses_numbers() {
        let t = sample();
        assert_eq!(t.cell_f64(0, 0), 1.0);
        assert_eq!(t.cell_f64(1, 0), 100.0);
    }

    #[test]
    #[should_panic(expected = "row 1, col 1 is not a number: \"x\"")]
    fn cell_f64_names_the_bad_cell() {
        sample().cell_f64(1, 1);
    }

    #[test]
    #[should_panic(expected = "no cell at row 9")]
    fn cell_f64_names_the_missing_cell() {
        sample().cell_f64(9, 0);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pm(1.5, 0.25, 1), "1.5 ± 0.2");
    }
}
