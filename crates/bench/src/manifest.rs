//! The run manifest: durable per-experiment status for `exp --resume`.
//!
//! A campaign run with `--out-dir <dir>` keeps a small ledger next to its
//! CSVs:
//!
//! * `<dir>/manifest.json` — run id, worker count, observability flag,
//!   watchdog deadline, and one [`ManifestEntry`] per experiment
//!   (pending → running → done/failed), rewritten atomically on every
//!   transition;
//! * `<dir>/.run/<id>.out.json` — the completed experiment's full output
//!   (rendered tables, CSVs, JSONL trace lines, counters) as a
//!   [`StoredOutput`] artifact, with its FNV-1a digest pinned in the
//!   manifest entry.
//!
//! `exp --resume <dir>` replays `Done` entries byte-for-byte from their
//! artifacts (digest-checked) and re-runs everything else. Experiments are
//! deterministic — seeds are compile-time constants — so the resumed
//! transcript, CSVs, and trace are byte-identical to an uninterrupted run;
//! CI enforces this with a kill-and-resume smoke test.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use wrsn::sim::store;

use crate::error::BenchError;

/// Manifest file name under `--out-dir`.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Artifact directory name under `--out-dir`.
pub const ARTIFACT_DIR: &str = ".run";

/// Manifest schema tag; bumped on incompatible layout changes.
pub const SCHEMA: &str = "wrsn-manifest-v1";

/// Lifecycle of one experiment inside a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpStatus {
    /// Not started yet.
    Pending,
    /// Claimed by a worker; a crash leaves it here, and resume re-runs it.
    Running,
    /// Finished; its artifact and digest are valid.
    Done,
    /// Failed terminally (panic out of retries, timeout, or engine error).
    Failed,
}

/// Why a `Failed` entry failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailKind {
    /// The experiment panicked on every allowed attempt.
    Panic,
    /// The watchdog cancelled it at its wall-clock deadline.
    Timeout,
}

/// One experiment's durable status line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Experiment id (one of [`crate::ALL_IDS`]).
    pub id: String,
    /// Where it is in its lifecycle.
    pub status: ExpStatus,
    /// Wall-clock seconds of the completed run (0 until `Done`).
    pub wall_s: f64,
    /// FNV-1a 64 digest (16 hex digits) of the artifact bytes, once `Done`.
    pub digest: Option<String>,
    /// The failure message, once `Failed`.
    pub error: Option<String>,
    /// The failure kind, once `Failed`.
    pub failure: Option<FailKind>,
}

impl ManifestEntry {
    fn pending(id: &str) -> Self {
        ManifestEntry {
            id: id.to_string(),
            status: ExpStatus::Pending,
            wall_s: 0.0,
            digest: None,
            error: None,
            failure: None,
        }
    }
}

/// The campaign ledger persisted as `manifest.json` under `--out-dir`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Opaque id of the original run (pid + monotonic tag).
    pub run_id: String,
    /// Worker threads of the original run (informational; resume may differ).
    pub threads: u64,
    /// Whether the original run collected observability records. A resume
    /// can only produce a byte-identical `--trace` if this was set.
    pub observed: bool,
    /// Watchdog deadline of the original run, seconds.
    pub timeout_s: Option<f64>,
    /// How many times this campaign has been resumed.
    pub resumes: u64,
    /// One entry per experiment, in canonical order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// A fresh manifest with every experiment `Pending`.
    pub fn new(
        run_id: String,
        ids: &[&str],
        threads: usize,
        observed: bool,
        timeout_s: Option<f64>,
    ) -> Self {
        Manifest {
            schema: SCHEMA.to_string(),
            run_id,
            threads: threads as u64,
            observed,
            timeout_s,
            resumes: 0,
            entries: ids.iter().map(|id| ManifestEntry::pending(id)).collect(),
        }
    }

    /// The entry for `id`, if the manifest tracks it.
    pub fn entry_mut(&mut self, id: &str) -> Option<&mut ManifestEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Path of the manifest file under `out_dir`.
    pub fn path(out_dir: &Path) -> PathBuf {
        out_dir.join(MANIFEST_FILE)
    }

    /// Atomically persists the manifest under `out_dir`.
    ///
    /// # Errors
    ///
    /// [`BenchError::Manifest`] when serialization or the atomic write fails.
    pub fn save(&self, out_dir: &Path) -> Result<(), BenchError> {
        let path = Manifest::path(out_dir);
        let text = serde_json::to_string(&self.to_value()).map_err(|e| BenchError::Manifest {
            path: path.clone(),
            detail: format!("cannot serialize: {}", e.0),
        })?;
        store::write_atomic(&path, (text + "\n").as_bytes()).map_err(|e| BenchError::Manifest {
            path,
            detail: e.to_string(),
        })
    }

    /// Loads and validates the manifest under `out_dir`.
    ///
    /// # Errors
    ///
    /// [`BenchError::Manifest`] when the file is missing, malformed, or has
    /// an unsupported schema tag; [`BenchError::UnknownId`] when an entry
    /// names an experiment this binary does not know.
    pub fn load(out_dir: &Path) -> Result<Self, BenchError> {
        let path = Manifest::path(out_dir);
        let text = std::fs::read_to_string(&path).map_err(|e| BenchError::Manifest {
            path: path.clone(),
            detail: format!("cannot read: {e}"),
        })?;
        let value = serde_json::from_str(&text).map_err(|e| BenchError::Manifest {
            path: path.clone(),
            detail: format!("malformed JSON: {}", e.0),
        })?;
        let manifest = Manifest::from_value(&value).map_err(|e| BenchError::Manifest {
            path: path.clone(),
            detail: format!("malformed manifest: {}", e.0),
        })?;
        if manifest.schema != SCHEMA {
            return Err(BenchError::Manifest {
                path,
                detail: format!(
                    "unsupported schema `{}` (this binary speaks `{SCHEMA}`)",
                    manifest.schema
                ),
            });
        }
        for entry in &manifest.entries {
            if !crate::is_known_id(&entry.id) {
                return Err(BenchError::unknown_id(&entry.id));
            }
        }
        Ok(manifest)
    }
}

/// A completed experiment's full output, persisted so `--resume` can replay
/// it byte-for-byte without re-running anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredOutput {
    /// Experiment id.
    pub id: String,
    /// Wall-clock seconds of the original run.
    pub wall_s: f64,
    /// Rendered ASCII tables, in order.
    pub rendered: Vec<String>,
    /// `(file name, contents)` CSV exports.
    pub csvs: Vec<(String, String)>,
    /// Serialized JSONL trace lines (empty unless observability was on).
    pub jsonl: Vec<String>,
    /// Nonzero counters at the end of the experiment.
    pub counters: Vec<(String, u64)>,
    /// Worker threads the run executed with. An artifact predating this
    /// field fails deserialization, which the replay path already treats as
    /// a corrupt artifact: the experiment deterministically re-runs.
    pub threads: usize,
    /// Spatial shards the run executed with (same compatibility story).
    pub shards: usize,
}

/// Path of the artifact for `id` under `out_dir`.
pub fn artifact_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join(ARTIFACT_DIR).join(format!("{id}.out.json"))
}

/// Atomically persists a completed experiment's artifact and returns its
/// digest (16 hex digits of FNV-1a 64 over the file bytes).
///
/// # Errors
///
/// [`BenchError::Manifest`] when serialization or the write fails.
pub fn save_artifact(out_dir: &Path, output: &StoredOutput) -> Result<String, BenchError> {
    let path = artifact_path(out_dir, &output.id);
    let text = serde_json::to_string(&output.to_value()).map_err(|e| BenchError::Manifest {
        path: path.clone(),
        detail: format!("cannot serialize artifact: {}", e.0),
    })?;
    let bytes = text.into_bytes();
    let digest = format!("{:016x}", store::fnv1a64(&bytes));
    store::write_atomic(&path, &bytes).map_err(|e| BenchError::Manifest {
        path,
        detail: e.to_string(),
    })?;
    Ok(digest)
}

/// Loads the artifact for `id`, verifying its digest against the manifest's
/// pinned value.
///
/// # Errors
///
/// [`BenchError::Manifest`] when the artifact is missing, corrupt, or does
/// not match `expected_digest`.
pub fn load_artifact(
    out_dir: &Path,
    id: &str,
    expected_digest: &str,
) -> Result<StoredOutput, BenchError> {
    let path = artifact_path(out_dir, id);
    let bytes = std::fs::read(&path).map_err(|e| BenchError::Manifest {
        path: path.clone(),
        detail: format!("cannot read artifact: {e}"),
    })?;
    let digest = format!("{:016x}", store::fnv1a64(&bytes));
    if digest != expected_digest {
        return Err(BenchError::Manifest {
            path,
            detail: format!("artifact digest {digest} does not match manifest {expected_digest}"),
        });
    }
    let text = String::from_utf8(bytes).map_err(|e| BenchError::Manifest {
        path: path.clone(),
        detail: format!("artifact is not UTF-8: {e}"),
    })?;
    let value = serde_json::from_str(&text).map_err(|e| BenchError::Manifest {
        path: path.clone(),
        detail: format!("malformed artifact JSON: {}", e.0),
    })?;
    let output = StoredOutput::from_value(&value).map_err(|e| BenchError::Manifest {
        path: path.clone(),
        detail: format!("malformed artifact: {}", e.0),
    })?;
    if output.id != id {
        return Err(BenchError::Manifest {
            path,
            detail: format!("artifact is for `{}`, expected `{id}`", output.id),
        });
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "wrsn-manifest-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let mut m = Manifest::new("run-1".to_string(), &["fig2", "tab1"], 4, true, Some(30.0));
        m.entry_mut("fig2").unwrap().status = ExpStatus::Done;
        m.entry_mut("fig2").unwrap().digest = Some("00deadbeef00cafe".to_string());
        m.entry_mut("tab1").unwrap().status = ExpStatus::Failed;
        m.entry_mut("tab1").unwrap().error = Some("tab1: work item 1 timed out".to_string());
        m.entry_mut("tab1").unwrap().failure = Some(FailKind::Timeout);
        m.save(&dir).expect("save");
        let loaded = Manifest::load(&dir).expect("load");
        assert_eq!(loaded, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_and_unknown_ids_are_rejected() {
        let dir = temp_dir("schema");
        let mut m = Manifest::new("run-1".to_string(), &["fig2"], 1, false, None);
        m.schema = "wrsn-manifest-v99".to_string();
        m.save(&dir).expect("save");
        let err = Manifest::load(&dir).unwrap_err();
        assert!(matches!(err, BenchError::Manifest { .. }), "{err}");
        assert!(err.to_string().contains("v99"));

        let mut m = Manifest::new("run-1".to_string(), &["fig2"], 1, false, None);
        m.entries[0].id = "fig99".to_string();
        m.save(&dir).expect("save");
        let err = Manifest::load(&dir).unwrap_err();
        assert!(matches!(err, BenchError::UnknownId { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_typed_error() {
        let dir = temp_dir("missing");
        let err = Manifest::load(&dir.join("nope")).unwrap_err();
        assert!(matches!(err, BenchError::Manifest { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifacts_round_trip_and_pin_their_digest() {
        let dir = temp_dir("artifact");
        let output = StoredOutput {
            id: "fig2".to_string(),
            wall_s: 1.25,
            rendered: vec!["## fig2\ntable".to_string()],
            csvs: vec![("fig2_0.csv".to_string(), "a,b\n1,2\n".to_string())],
            jsonl: vec!["{\"t\":\"meta\"}".to_string()],
            counters: vec![("sessions_started".to_string(), 7)],
            threads: 2,
            shards: 8,
        };
        let digest = save_artifact(&dir, &output).expect("save");
        assert_eq!(digest.len(), 16);
        let loaded = load_artifact(&dir, "fig2", &digest).expect("load");
        assert_eq!(loaded, output);

        // A flipped byte must be rejected by the digest check.
        let path = artifact_path(&dir, "fig2");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_artifact(&dir, "fig2", &digest).unwrap_err();
        assert!(matches!(err, BenchError::Manifest { .. }), "{err}");
        assert!(err.to_string().contains("digest"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_artifacts_are_rejected_at_every_cut_point() {
        // The crash signature atomic writes exist to prevent: a prefix of
        // the real bytes at the final path (power loss mid-write on a
        // filesystem that still tore it, a partial copy, …). Every proper
        // prefix must fail the digest check — never load as a shorter-but-
        // plausible artifact.
        let dir = temp_dir("truncate");
        let output = StoredOutput {
            id: "fig2".to_string(),
            wall_s: 0.5,
            rendered: vec!["## fig2".to_string()],
            csvs: vec![("fig2_0.csv".to_string(), "a\n1\n".to_string())],
            jsonl: Vec::new(),
            counters: Vec::new(),
            threads: 1,
            shards: 1,
        };
        let digest = save_artifact(&dir, &output).expect("save");
        let path = artifact_path(&dir, "fig2");
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = load_artifact(&dir, "fig2", &digest).unwrap_err();
            assert!(
                matches!(err, BenchError::Manifest { .. }),
                "cut at {cut}: {err}"
            );
        }
        // The intact bytes still load.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(load_artifact(&dir, "fig2", &digest).unwrap(), output);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saves_and_artifacts_leave_no_temp_droppings() {
        // write_atomic's temp files must never be visible after a
        // successful save — resume scans the out-dir and a stray
        // `.manifest.json.tmp.<pid>` would be one crash away from shadowing
        // real state.
        let dir = temp_dir("tmpfiles");
        let m = Manifest::new("run-1".to_string(), &["fig2"], 1, false, None);
        m.save(&dir).expect("save");
        let output = StoredOutput {
            id: "fig2".to_string(),
            wall_s: 0.1,
            rendered: Vec::new(),
            csvs: Vec::new(),
            jsonl: Vec::new(),
            counters: Vec::new(),
            threads: 1,
            shards: 1,
        };
        save_artifact(&dir, &output).expect("save artifact");
        let mut walk = vec![dir.clone()];
        while let Some(d) = walk.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let entry = entry.unwrap();
                if entry.file_type().unwrap().is_dir() {
                    walk.push(entry.path());
                    continue;
                }
                let name = entry.file_name();
                assert!(
                    !name.to_string_lossy().contains(".tmp"),
                    "stray temp file {:?}",
                    entry.path()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
