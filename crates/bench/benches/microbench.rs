//! Criterion micro-benchmarks behind `tab1`: the algorithmic building blocks
//! of the attack pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wrsn::core::tide::TideInstance;
use wrsn::core::{csa, exact};
use wrsn::em::{superposition, Wave};
use wrsn::net::routing::RoutingTree;
use wrsn::scenario::Scenario;

use wrsn_bench::experiments::common::synthetic_instance;

fn bench_superposition(c: &mut Criterion) {
    let waves: Vec<Wave> = (0..64)
        .map(|k| Wave::new(1.0 / (k + 1) as f64, k as f64 * 0.37))
        .collect();
    c.bench_function("superposition/received_power_64_waves", |b| {
        b.iter(|| superposition::received_power(black_box(&waves)))
    });
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let world = Scenario::paper_scale(n, 3).build();
        let net = world.network().clone();
        let mask = net.alive_mask();
        group.bench_with_input(BenchmarkId::new("routing_tree", n), &n, |b, _| {
            b.iter(|| RoutingTree::shortest_path(black_box(&net), black_box(&mask)))
        });
        group.bench_with_input(BenchmarkId::new("betweenness", n), &n, |b, _| {
            b.iter(|| net.betweenness(black_box(&mask)))
        });
        group.bench_with_input(BenchmarkId::new("articulation_points", n), &n, |b, _| {
            b.iter(|| net.articulation_points(black_box(&mask)))
        });
    }
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("planners");
    group.sample_size(10);
    for &n in &[10usize, 20, 40, 80] {
        let inst = synthetic_instance(n, 42, 400.0, 1.0e9);
        group.bench_with_input(BenchmarkId::new("csa_plan", n), &inst, |b, inst| {
            b.iter(|| csa::plan(black_box(inst)))
        });
    }
    let small = synthetic_instance(10, 42, 400.0, 1.0e9);
    group.bench_function("exact_solve_10", |b| {
        b.iter(|| exact::solve(black_box(&small)))
    });
    group.finish();
}

fn bench_instance_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tide");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let scenario = Scenario::paper_scale(n, 5);
        let world = scenario.build();
        let cfg = scenario.tide_config();
        group.bench_with_input(BenchmarkId::new("from_world", n), &n, |b, _| {
            b.iter(|| TideInstance::from_world(black_box(&world), black_box(&cfg)))
        });
    }
    group.finish();
}

fn bench_full_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("attack_run_50_nodes", |b| {
        b.iter(|| {
            let scenario = Scenario::paper_scale(50, 9);
            let mut world = scenario.build();
            let mut policy = wrsn::core::attack::CsaAttackPolicy::new(scenario.tide_config());
            black_box(world.run(&mut policy))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_superposition,
    bench_network,
    bench_planners,
    bench_instance_derivation,
    bench_full_attack
);
criterion_main!(benches);
