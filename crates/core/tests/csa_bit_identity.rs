//! Bit-identity of the incremental CSA planner.
//!
//! The planner in `wrsn_core::csa` evaluates insertions incrementally
//! (prefix folds + backward slacks) instead of rebuilding every candidate
//! route. That optimization claims **bit-identical** output. Two enforcement
//! layers:
//!
//! 1. a golden test against `(order, begin-time bit patterns)` captured from
//!    the pre-optimization naive planner — any rounding or tie-break drift
//!    fails loudly;
//! 2. a property test comparing the planner against [`reference::plan_with`],
//!    a verbatim copy of the naive clone-and-rescore greedy, under every
//!    ablation option combination (`AttackSchedule`'s derived `PartialEq`
//!    compares `f64`s exactly, so equality here is equality of bits).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wrsn_core::csa::{self, CsaOptions};
use wrsn_core::tide::{TideInstance, TimeWindow, Victim};
use wrsn_net::{NodeId, Point};

fn random_instance(n: usize, seed: u64, window: f64, budget: f64) -> TideInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let victims = (0..n)
        .map(|i| {
            let open = rng.gen_range(0.0..500.0);
            let len = rng.gen_range(0.2 * window..2.0 * window);
            Victim {
                node: NodeId(i),
                position: Point::new(rng.gen_range(0.0..150.0), rng.gen_range(0.0..150.0)),
                weight: rng.gen_range(1.0..5.0),
                window: TimeWindow {
                    open_s: open,
                    close_s: open + len,
                },
                service_s: rng.gen_range(10.0..80.0),
                death_s: open + len + 100.0,
            }
        })
        .collect();
    TideInstance {
        victims,
        start: Point::new(75.0, 75.0),
        speed_mps: 5.0,
        budget_j: budget,
        move_cost_j_per_m: 1.0,
        radiated_power_w: 1.0,
        now_s: 0.0,
    }
}

/// The pre-optimization planner, kept verbatim as the comparison oracle.
mod reference {
    use wrsn_core::csa::CsaOptions;
    use wrsn_core::schedule::{self, AttackSchedule};
    use wrsn_core::tide::TideInstance;

    pub fn plan_with(instance: &TideInstance, opts: &CsaOptions) -> AttackSchedule {
        let n = instance.victims.len();
        let mut order: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut current_cost = 0.0f64;

        loop {
            let mut best: Option<(f64, f64, usize, usize)> = None; // (score, mcost, vi, pos)
            for &vi in &remaining {
                let weight = instance.victims[vi].weight;
                for pos in 0..=order.len() {
                    let mut candidate = order.clone();
                    candidate.insert(pos, vi);
                    let Some(sched) = schedule::earliest_times(instance, &candidate) else {
                        continue;
                    };
                    let cost = instance.energy_cost(&sched);
                    if cost > instance.budget_j {
                        continue;
                    }
                    let mcost = (cost - current_cost).max(0.0);
                    let score = if opts.ratio_ordering {
                        weight / (mcost + 1.0)
                    } else {
                        weight
                    };
                    let better = match best {
                        None => true,
                        Some((bs, bc, _, _)) => {
                            score > bs + 1e-12 || (score > bs - 1e-12 && mcost < bc)
                        }
                    };
                    if better {
                        best = Some((score, mcost, vi, pos));
                    }
                }
            }
            match best {
                Some((_, mcost, vi, pos)) => {
                    order.insert(pos, vi);
                    remaining.retain(|&x| x != vi);
                    current_cost += mcost;
                }
                None => break,
            }
        }

        if opts.route_improvement {
            improve_route(instance, &mut order);
        }

        let greedy =
            schedule::earliest_times(instance, &order).unwrap_or_else(AttackSchedule::empty);

        let mut candidates = vec![greedy, wrsn_core::csa::best_singleton(instance)];
        let points: Vec<wrsn_net::Point> = instance.victims.iter().map(|v| v.position).collect();
        let (tsp_order, _) = wrsn_charge::tour::plan_tour(instance.start, &points);
        candidates.push(schedule::from_order_skipping(instance, &tsp_order));
        let mut weight_order: Vec<usize> = (0..n).collect();
        weight_order.sort_by(|&a, &b| {
            instance.victims[b]
                .weight
                .partial_cmp(&instance.victims[a].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        candidates.push(schedule::from_order_skipping(instance, &weight_order));

        let mut chosen = AttackSchedule::empty();
        let mut best_key = (f64::NEG_INFINITY, f64::INFINITY);
        for c in candidates {
            let key = (instance.utility(&c), instance.energy_cost(&c));
            if key.0 > best_key.0 + 1e-12 || (key.0 > best_key.0 - 1e-12 && key.1 < best_key.1) {
                best_key = key;
                chosen = c;
            }
        }

        if opts.latest_start {
            chosen = schedule::latest_start_shift(instance, &chosen);
        }
        chosen
    }

    fn improve_route(instance: &TideInstance, order: &mut [usize]) {
        let n = order.len();
        if n < 3 {
            return;
        }
        let cost_of = |ord: &[usize]| -> Option<f64> {
            let s = schedule::earliest_times(instance, ord)?;
            let c = instance.energy_cost(&s);
            (c <= instance.budget_j).then_some(c)
        };
        let Some(mut best_cost) = cost_of(order) else {
            return;
        };
        for _ in 0..16 {
            let mut improved = false;
            for i in 0..n - 1 {
                for j in i + 1..n {
                    order[i..=j].reverse();
                    match cost_of(order) {
                        Some(c) if c + 1e-9 < best_cost => {
                            best_cost = c;
                            improved = true;
                        }
                        _ => order[i..=j].reverse(), // undo
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
}

/// `(n, seed, window_s, budget_j, order, begin_s bit patterns)` recorded from
/// the pre-optimization planner (default options).
#[allow(clippy::type_complexity)]
fn golden_cases() -> Vec<(usize, u64, f64, f64, Vec<usize>, Vec<u64>)> {
    vec![
        (
            6,
            1,
            300.0,
            800.0,
            vec![4, 3, 2, 5, 0, 1],
            vec![
                4645497049730212555,
                4646204802586791894,
                4647082345997206069,
                4647767215779413412,
                4648814611292302974,
                4649143760519206422,
            ],
        ),
        (
            10,
            7,
            400.0,
            1500.0,
            vec![5, 2, 0, 3, 1, 6, 4, 8, 9, 7],
            vec![
                4643669552196000676,
                4645081563275639145,
                4645699918388160215,
                4646208052793552050,
                4647778834571885823,
                4647994133009249285,
                4648226447010161002,
                4648886339775325078,
                4649081880998047710,
                4650427490707342590,
            ],
        ),
        (
            14,
            21,
            600.0,
            2500.0,
            vec![7, 13, 9, 10, 4, 11, 1, 12, 3, 0, 6, 8, 5, 2],
            vec![
                4641547225916245632,
                4643237203019677137,
                4644107526344763965,
                4644537980124103092,
                4645822501659314328,
                4646564658383264880,
                4647024081051567805,
                4647455132333508841,
                4648093096620545441,
                4648312629055188637,
                4648828091008875759,
                4649358082346133390,
                4649855730975615278,
                4650556472470958282,
            ],
        ),
        (
            20,
            5,
            500.0,
            4000.0,
            vec![7, 19, 14, 15, 4, 12, 18, 3, 0, 17, 11, 13, 10, 16, 9, 8, 6],
            vec![
                4641306294570795242,
                4642411610169990102,
                4643429218300643712,
                4643734200640404512,
                4645074198873223340,
                4645870650018427528,
                4646592769708582907,
                4647672125939461903,
                4648400817434646885,
                4648850533847513220,
                4648973806820287038,
                4649245331206014243,
                4649791727788982525,
                4650482894091112998,
                4650996807692790096,
                4651673630554542104,
                4653100939134491987,
            ],
        ),
        (
            30,
            97,
            700.0,
            8000.0,
            vec![
                8, 15, 22, 1, 4, 10, 0, 13, 26, 25, 19, 12, 7, 6, 9, 28, 18, 14, 5, 23, 27, 24, 17,
                11,
            ],
            vec![
                4639986790884612898,
                4641988805166587672,
                4643242237423519654,
                4643550509239403080,
                4644940485712485949,
                4645839563858170298,
                4646570764446525385,
                4646768127964204229,
                4647352735770141108,
                4647927090573289410,
                4648279118631066035,
                4648726547308664304,
                4649465441801798036,
                4650042447331177119,
                4650401777649904578,
                4650680575718139018,
                4651431150716585685,
                4651572850106910629,
                4652186490369632623,
                4652396060954120876,
                4652744091404396876,
                4653071441006859042,
                4653343288618185145,
                4654472374637493843,
            ],
        ),
    ]
}

#[test]
fn golden_plans_from_the_naive_planner_are_reproduced_bit_for_bit() {
    for (n, seed, window, budget, order, begin_bits) in golden_cases() {
        let inst = random_instance(n, seed, window, budget);
        let p = csa::plan(&inst);
        assert_eq!(p.order(), order, "order drifted on n={n} seed={seed}");
        let bits: Vec<u64> = p.stops().iter().map(|s| s.begin_s.to_bits()).collect();
        assert_eq!(
            bits, begin_bits,
            "begin-time bits drifted on n={n} seed={seed}"
        );
    }
}

#[test]
fn golden_instances_also_match_the_reference_under_all_option_combinations() {
    for (n, seed, window, budget, _, _) in golden_cases() {
        let inst = random_instance(n, seed, window, budget);
        for &ratio_ordering in &[false, true] {
            for &route_improvement in &[false, true] {
                for &latest_start in &[false, true] {
                    let opts = CsaOptions {
                        ratio_ordering,
                        route_improvement,
                        latest_start,
                    };
                    assert_eq!(
                        csa::plan_with(&inst, &opts),
                        reference::plan_with(&inst, &opts),
                        "divergence on n={n} seed={seed} opts={opts:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental insertion ≡ recompute-from-scratch, bitwise, on random
    /// instances and every ablation switch.
    #[test]
    fn incremental_plan_equals_naive_plan_bitwise(
        n in 0usize..13,
        seed in 0u64..10_000,
        window in 20.0..900.0f64,
        budget in 50.0..5000.0f64,
        ratio_ordering in proptest::bool::ANY,
        route_improvement in proptest::bool::ANY,
        latest_start in proptest::bool::ANY,
    ) {
        let inst = random_instance(n, seed, window, budget);
        let opts = CsaOptions { ratio_ordering, route_improvement, latest_start };
        let fast = csa::plan_with(&inst, &opts);
        let naive = reference::plan_with(&inst, &opts);
        prop_assert_eq!(fast, naive);
    }
}
