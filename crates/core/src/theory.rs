//! Theoretical bounds and ratio instrumentation for CSA.
//!
//! CSA's construction is greedy marginal-utility-per-cost insertion combined
//! with a best-singleton fallback. For budgeted maximisation of a monotone
//! modular objective (victim weights are additive) this combination carries
//! the Khuller–Moss–Naor guarantee of `(1 − 1/e)/2 ≈ 0.316·OPT`; the
//! time-window constraints take the formal bound away in the worst case, so
//! the evaluation measures the *empirical* ratio against [`crate::exact`]
//! (experiment `fig10`) — in practice it sits far above the floor.

use crate::tide::TideInstance;

/// The guaranteed fraction of the optimum for budgeted monotone-modular
/// greedy-plus-best-singleton: `(1 − 1/e)/2`.
pub fn greedy_guarantee() -> f64 {
    0.5 * (1.0 - (-1.0f64).exp())
}

/// Empirical approximation ratio `achieved / optimal`, clamped to `[0, 1]`;
/// `1.0` when the optimum is zero (nothing was achievable).
pub fn approximation_ratio(achieved: f64, optimal: f64) -> f64 {
    if optimal <= 0.0 {
        1.0
    } else {
        (achieved / optimal).clamp(0.0, 1.0)
    }
}

/// A loose *a-priori* upper bound on any schedule's utility: the total victim
/// weight, refined by dropping victims that are individually unreachable
/// (window closed before the charger could ever arrive) or individually
/// unaffordable.
pub fn utility_upper_bound(instance: &TideInstance) -> f64 {
    instance
        .victims
        .iter()
        .filter(|v| {
            let arrive = instance.now_s + instance.travel_time(instance.start, v.position);
            let reachable = arrive.max(v.window.open_s) <= v.window.close_s + 1e-9;
            let affordable = instance.start.distance(v.position) * instance.move_cost_j_per_m
                + v.service_s * instance.radiated_power_w
                <= instance.budget_j + 1e-9;
            reachable && affordable
        })
        .map(|v| v.weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csa;
    use crate::exact;
    use crate::tide::{TimeWindow, Victim};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wrsn_net::{NodeId, Point};

    #[test]
    fn guarantee_constant_value() {
        assert!((greedy_guarantee() - 0.3160602794).abs() < 1e-9);
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(approximation_ratio(5.0, 10.0), 0.5);
        assert_eq!(approximation_ratio(0.0, 0.0), 1.0);
        assert_eq!(approximation_ratio(11.0, 10.0), 1.0);
        assert_eq!(approximation_ratio(-1.0, 10.0), 0.0);
    }

    fn random_instance(n: usize, seed: u64) -> TideInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let victims = (0..n)
            .map(|i| {
                let open = rng.gen_range(0.0..400.0);
                Victim {
                    node: NodeId(i),
                    position: Point::new(rng.gen_range(0.0..150.0), rng.gen_range(0.0..150.0)),
                    weight: rng.gen_range(1.0..4.0),
                    window: TimeWindow {
                        open_s: open,
                        close_s: open + rng.gen_range(100.0..600.0),
                    },
                    service_s: rng.gen_range(10.0..40.0),
                    death_s: open + 800.0,
                }
            })
            .collect();
        TideInstance {
            victims,
            start: Point::new(75.0, 75.0),
            speed_mps: 5.0,
            budget_j: 900.0,
            move_cost_j_per_m: 1.0,
            radiated_power_w: 1.0,
            now_s: 0.0,
        }
    }

    #[test]
    fn csa_exceeds_the_theoretical_floor_on_random_instances() {
        for seed in 0..10 {
            let inst = random_instance(8, seed);
            let opt = inst.utility(&exact::solve(&inst));
            let got = inst.utility(&csa::plan(&inst));
            let ratio = approximation_ratio(got, opt);
            assert!(
                ratio >= greedy_guarantee() - 1e-9,
                "seed {seed}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn upper_bound_dominates_exact_optimum() {
        for seed in 0..6 {
            let inst = random_instance(7, seed);
            let opt = inst.utility(&exact::solve(&inst));
            assert!(utility_upper_bound(&inst) + 1e-9 >= opt, "seed {seed}");
        }
    }

    #[test]
    fn upper_bound_excludes_unreachable_victims() {
        let mut inst = random_instance(3, 1);
        let full: f64 = inst.victims.iter().map(|v| v.weight).sum();
        inst.victims[0].window = TimeWindow {
            open_s: 0.0,
            close_s: 0.0,
        };
        assert!(utility_upper_bound(&inst) < full);
    }
}
