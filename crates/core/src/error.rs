//! Error types for the `wrsn-core` crate.

use std::error::Error;
use std::fmt;

/// Why a proposed attack schedule is infeasible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A stop references a victim index outside the instance.
    UnknownVictim {
        /// The offending victim index.
        index: usize,
    },
    /// The same victim is served more than once.
    DuplicateVictim {
        /// The victim index served twice.
        index: usize,
    },
    /// A stop begins before the charger can physically arrive.
    ArrivesLate {
        /// The stop position in the schedule.
        stop: usize,
        /// Earliest possible arrival, seconds.
        earliest_s: f64,
        /// Scheduled begin, seconds.
        begin_s: f64,
    },
    /// A stop violates its victim's time window.
    WindowViolated {
        /// The stop position in the schedule.
        stop: usize,
    },
    /// The schedule needs more energy than the charger's budget.
    BudgetExceeded {
        /// Energy the schedule needs, joules.
        needed_j: f64,
        /// Available budget, joules.
        budget_j: f64,
    },
    /// A stop has a non-finite or negative time.
    InvalidTime {
        /// The stop position in the schedule.
        stop: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownVictim { index } => write!(f, "unknown victim index {index}"),
            CoreError::DuplicateVictim { index } => {
                write!(f, "victim {index} is served more than once")
            }
            CoreError::ArrivesLate {
                stop,
                earliest_s,
                begin_s,
            } => write!(
                f,
                "stop {stop} begins at {begin_s} s but the charger arrives at {earliest_s} s"
            ),
            CoreError::WindowViolated { stop } => {
                write!(f, "stop {stop} violates its victim's time window")
            }
            CoreError::BudgetExceeded { needed_j, budget_j } => write!(
                f,
                "schedule needs {needed_j} J but the budget is {budget_j} J"
            ),
            CoreError::InvalidTime { stop } => write!(f, "stop {stop} has an invalid time"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_numbers() {
        let e = CoreError::BudgetExceeded {
            needed_j: 10.0,
            budget_j: 5.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('5'));
        assert!(CoreError::UnknownVictim { index: 7 }
            .to_string()
            .contains('7'));
    }
}
