//! Attack execution: carrying a TIDE schedule out in the simulated world.
//!
//! [`CsaAttackPolicy`] is the full paper pipeline as a
//! [`wrsn_sim::ChargerPolicy`]: derive the TIDE instance on first decision,
//! plan with a pluggable [`Planner`], then execute each stop — wait for the
//! window, drive over, radiate a full-length *spoofed* charge.
//!
//! [`EagerSpoofPolicy`] is the window-*oblivious* strawman: it spoofs every
//! charging request the moment it arrives. It exhausts nodes too, but its
//! victims linger long enough to file energy reports — the detector bait that
//! motivates TIDE's time windows (experiment `fig8`).

use wrsn_net::NodeId;
use wrsn_sim::obs::{Counter, NullRecorder, Recorder};
use wrsn_sim::{ChargeMode, ChargerAction, ChargerPolicy, SimReport, World, WorldView};

use crate::baseline::{CsaPlanner, Planner};
use crate::schedule::AttackSchedule;
use crate::tide::{TideConfig, TideInstance};

/// The Charging Spoofing Attack as a charger policy.
///
/// By default the attack is **adaptive**: it replans the remaining TIDE
/// instance after every completed masquerade, because each kill reroutes
/// traffic and shifts the surviving victims' drain rates — and stealth
/// (dying before the next energy report) depends on accurate death
/// predictions. `with_static_plan` disables replanning for the ablation.
///
/// # Example
///
/// ```
/// use wrsn_core::prelude::*;
///
/// let policy = CsaAttackPolicy::new(TideConfig::default());
/// // run it: World::run(&mut policy)
/// # let _ = policy;
/// ```
pub struct CsaAttackPolicy {
    config: TideConfig,
    planner: Box<dyn Planner>,
    replan_every_stop: bool,
    /// Serve ordinary nodes' requests *honestly* between masquerades: the
    /// malicious MC is the network's charger, and a healthy-looking rest of
    /// the network is its best disguise.
    serve_decoys: bool,
    /// Replan when the current plan is older than this (drain predictions
    /// drift as the unserved network degrades), seconds.
    plan_age_limit_s: f64,
    plan_made_at_s: f64,
    plan: Option<(TideInstance, AttackSchedule)>,
    next_stop: usize,
    /// Victim currently being squatted on (masquerade in progress).
    squatting: Option<NodeId>,
    /// Stealth mode against the online audit: `Some(fraction)` makes every
    /// masquerade a *partial-power* spoof delivering `fraction` of the honest
    /// power — enough real energy to keep a challenge-response probe's
    /// residual above the detector's tolerance. `None` is the naive CSA
    /// (full cancellation, delivered ≈ 0).
    stealth_fraction: Option<f64>,
    served: std::collections::HashSet<NodeId>,
    /// Census victims not yet served, in census order — the filter
    /// `make_instance` would otherwise re-derive from `served` on each of the
    /// tens of thousands of replans, maintained instead at the (rare) serves.
    unserved: Vec<(NodeId, f64)>,
    /// Census ∪ served as a direct-indexed mask: nodes the decoy pass must
    /// never rescue. The request scan runs on nearly every idle decision, so
    /// it checks one bool per request instead of hashing and walking the
    /// census.
    decoy_excluded: Vec<bool>,
    /// Every victim actually spoofed, with its weight at targeting time.
    targets: Vec<(NodeId, f64)>,
    /// Instance snapshot at first decision — the key-node census used for the
    /// headline "fraction of key nodes exhausted".
    initial_instance: Option<TideInstance>,
    name: String,
}

impl std::fmt::Debug for CsaAttackPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsaAttackPolicy")
            .field("planner", &self.name)
            .field("adaptive", &self.replan_every_stop)
            .field("targets", &self.targets.len())
            .finish()
    }
}

impl CsaAttackPolicy {
    /// An adaptive attack driven by the CSA planner.
    pub fn new(config: TideConfig) -> Self {
        CsaAttackPolicy::with_planner(config, Box::new(CsaPlanner))
    }

    /// An adaptive attack driven by an arbitrary planner (baselines,
    /// ablations).
    pub fn with_planner(config: TideConfig, planner: Box<dyn Planner>) -> Self {
        let name = format!("attack-{}", planner.name());
        CsaAttackPolicy {
            config,
            planner,
            replan_every_stop: true,
            serve_decoys: true,
            plan_age_limit_s: 3_600.0,
            plan_made_at_s: 0.0,
            plan: None,
            next_stop: 0,
            squatting: None,
            stealth_fraction: None,
            served: std::collections::HashSet::new(),
            unserved: Vec::new(),
            decoy_excluded: Vec::new(),
            targets: Vec::new(),
            initial_instance: None,
            name,
        }
    }

    /// Plan once at the first decision and never adapt (ablation switch).
    pub fn with_static_plan(mut self) -> Self {
        self.replan_every_stop = false;
        self
    }

    /// Never serve ordinary nodes honestly (ablation switch — the pure
    /// attack, at the price of a starving, alarm-ridden network).
    pub fn without_decoys(mut self) -> Self {
        self.serve_decoys = false;
        self
    }

    /// The **adaptive** arms-race attacker: masquerades become partial-power
    /// spoofs ([`ChargeMode::Partial`]) delivering `fraction` of the honest
    /// power, so a challenge-response probe measures a residual gain above a
    /// detector tolerance below `fraction`. The price is real: each stealth
    /// masquerade is a single bounded squat that *charges* its victim instead
    /// of killing it, trading exhaustion coverage (and joules actually
    /// delivered) for staying under the conviction threshold. Externally —
    /// radiated power, session length — it is indistinguishable from the
    /// naive spoof.
    pub fn with_stealth(mut self, fraction: f64) -> Self {
        self.stealth_fraction = Some(fraction);
        self.name.push_str("-stealth");
        self
    }

    /// The stealth fraction, if this attacker runs in stealth mode.
    pub fn stealth_fraction(&self) -> Option<f64> {
        self.stealth_fraction
    }

    /// The current instance/schedule, once the first decision has been made.
    pub fn plan(&self) -> Option<&(TideInstance, AttackSchedule)> {
        self.plan.as_ref()
    }

    /// The key-node census taken at the first decision.
    pub fn initial_instance(&self) -> Option<&TideInstance> {
        self.initial_instance.as_ref()
    }

    /// Every node actually spoofed so far, with its targeting weight.
    pub fn targets(&self) -> &[(NodeId, f64)] {
        &self.targets
    }

    fn live_config(&self, view: &WorldView<'_>) -> TideConfig {
        let mut cfg = self.config;
        cfg.start = view.charger.position();
        cfg.speed_mps = view.charger.speed_mps();
        cfg.budget_j = view.charger.energy_j();
        cfg.move_cost_j_per_m = view.charger.move_cost_j_per_m();
        cfg.now_s = view.time_s;
        cfg
    }

    fn make_instance(&self, view: &WorldView<'_>) -> TideInstance {
        let cfg = self.live_config(view);
        match &self.initial_instance {
            // The census is fixed at campaign start: these are the operator's
            // key nodes regardless of how the degrading graph reshuffles
            // centralities. Only windows/drains are re-derived.
            Some(_) => {
                // `unserved` is the census filtered by `served`, kept current
                // at serve time (see `decide`) so replans skip the filter.
                if cfg.radio == view.radio {
                    // The simulator's live power vector is computed under the
                    // same radio model, so reuse it instead of paying for a
                    // fresh shortest-path build on every replan.
                    TideInstance::for_targets_with_power(
                        view.net,
                        &cfg,
                        &self.unserved,
                        view.power_w,
                    )
                } else {
                    TideInstance::for_targets(view.net, &cfg, &self.unserved)
                }
            }
            None => TideInstance::from_network_excluding(view.net, &cfg, &self.served),
        }
    }

    fn replan(&mut self, view: &WorldView<'_>, rec: &mut dyn Recorder) {
        rec.add(Counter::Replans, 1);
        let instance = self.make_instance(view);
        let schedule = self.planner.plan_obs(&instance, rec);
        self.next_stop = 0;
        self.plan_made_at_s = view.time_s;
        self.plan = Some((instance, schedule));
    }
}

impl CsaAttackPolicy {
    /// A best-effort honest decoy charge that fits before `depart_at`:
    /// serve the nearest ordinary (non-victim) requester for a bounded slice,
    /// keeping an energy reserve for the masquerades. Returns `None` when no
    /// decoy fits.
    fn decoy_action(
        &self,
        view: &WorldView<'_>,
        depart_at: f64,
        next_victim_pos: wrsn_net::Point,
    ) -> Option<ChargerAction> {
        // Reserve a quarter of the budget for the attack itself.
        if view.charger.energy_j() < 0.25 * view.charger.capacity_j() {
            return None;
        }
        // Travel and service times are nonnegative, so when even an
        // instantaneous rescue misses the departure cushion no requester can
        // qualify — skip the scan entirely.
        if view.time_s + 60.0 > depart_at {
            return None;
        }
        let speed = view.charger.speed_mps();
        // Nearest live requester outside census ∪ served (`decoy_excluded`:
        // census members are the campaign's victims even when the degraded
        // graph no longer ranks them as key). First minimum wins on distance
        // ties, matching the former `min_by` scan node for node.
        let cpos = view.charger.position();
        let mut best: Option<(usize, f64)> = None;
        for (k, r) in view.requests.iter().enumerate() {
            if self.decoy_excluded.get(r.node.0).copied().unwrap_or(false) || !view.is_alive(r.node)
            {
                continue;
            }
            let d = view
                .net
                .node(r.node)
                .map(|n| cpos.distance_sq(n.position()))
                .unwrap_or(f64::INFINITY);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((k, d));
            }
        }
        let request = &view.requests[best?.0];
        let pos = view.net.node(request.node).ok()?.position();
        let slice = wrsn_charge::refill_duration_s(view, request.node)
            .unwrap_or(900.0)
            .min(900.0);
        let travel_there = view.charger.position().distance(pos) / speed;
        let travel_back = pos.distance(next_victim_pos) / speed;
        if view.time_s + travel_there + slice + travel_back + 60.0 > depart_at {
            return None;
        }
        Some(ChargerAction::Charge {
            node: request.node,
            duration_s: slice,
            mode: ChargeMode::Honest,
        })
    }

    /// A bounded squat chunk on `node`: the victim's residual life at its
    /// current drain, with a 10 % + 1 min cushion. Re-issued until the world
    /// reports the node dead, so drain drops (cascade deaths lighten traffic)
    /// only extend the squat by the actual extra life, never unboundedly.
    fn squat_chunk(&self, view: &WorldView<'_>, node: NodeId) -> ChargerAction {
        let drain = view.power_w.get(node.0).copied().unwrap_or(0.0);
        let level = view
            .net
            .node(node)
            .map(|n| n.battery().level_j())
            .unwrap_or(0.0);
        let residual = level / drain.max(1e-12);
        ChargerAction::Charge {
            node,
            duration_s: (residual * 1.1 + 60.0).min(view.time_left_s()),
            mode: match self.stealth_fraction {
                Some(fraction) => ChargeMode::Partial { fraction },
                None => ChargeMode::Spoofed,
            },
        }
    }
}

impl CsaAttackPolicy {
    fn decide(&mut self, view: &WorldView<'_>, rec: &mut dyn Recorder) -> ChargerAction {
        // A charger that lets its own battery die is conspicuous; swap at the
        // depot like the real one would — but never abandon a masquerade in
        // progress (the victim must not outlive the visit).
        if self.squatting.is_none() && view.should_recharge(0.15) {
            return ChargerAction::Recharge;
        }
        if self.initial_instance.is_none() {
            let census = self.make_instance(view);
            // `served` is necessarily empty here, so the whole census is
            // unserved and fair game for exclusion from decoy rescues.
            self.unserved = census.victims.iter().map(|v| (v.node, v.weight)).collect();
            self.decoy_excluded = vec![false; view.net.node_count()];
            for v in &census.victims {
                if let Some(slot) = self.decoy_excluded.get_mut(v.node.0) {
                    *slot = true;
                }
            }
            self.initial_instance = Some(census);
        }
        // Finish an in-progress masquerade before anything else: the charger
        // must stay parked until the victim is dead. A *stealth* masquerade
        // is the opposite deal — its partial-power delivery keeps the victim
        // alive by design, so it is a single bounded squat and moves on.
        if let Some(node) = self.squatting {
            if self.stealth_fraction.is_none()
                && view.is_alive(node)
                && !view.charger.is_exhausted()
                && view.time_left_s() > 0.0
            {
                rec.add(Counter::SquatChunks, 1);
                return self.squat_chunk(view, node);
            }
            self.squatting = None;
        }
        if self.plan.is_none()
            || (self.replan_every_stop && view.time_s - self.plan_made_at_s > self.plan_age_limit_s)
        {
            self.replan(view, rec);
        }
        let mut replanned_this_call = false;
        loop {
            let (instance, schedule) = self.plan.as_ref().expect("plan ensured");
            let Some(stop) = schedule.stops().get(self.next_stop).copied() else {
                // Plan exhausted: adaptive mode looks for fresh victims once
                // per decision; static mode is done.
                if self.replan_every_stop && !replanned_this_call {
                    replanned_this_call = true;
                    self.replan(view, rec);
                    let (_, fresh) = self.plan.as_ref().expect("plan ensured");
                    if !fresh.is_empty() {
                        continue;
                    }
                }
                // No (more) attackable victims. Keep up appearances: serve
                // ordinary requesters honestly until the run ends.
                if self.serve_decoys && view.time_left_s() > 0.0 {
                    if let Some(action) =
                        self.decoy_action(view, f64::INFINITY, view.charger.position())
                    {
                        rec.add(Counter::DecoyCharges, 1);
                        return action;
                    }
                    return ChargerAction::Wait(600.0_f64.min(view.time_left_s()));
                }
                return ChargerAction::Finish;
            };
            let Some(victim) = instance.victims.get(stop.victim).copied() else {
                self.next_stop += 1;
                continue;
            };
            if !view.is_alive(victim.node) || self.served.contains(&victim.node) {
                // Cascading deaths got there first; skip.
                self.next_stop += 1;
                continue;
            }
            // Leave just enough lead time to drive over; then the Charge
            // action's built-in travel makes the masquerade begin on schedule.
            let travel =
                view.charger.position().distance(victim.position) / view.charger.speed_mps();
            let depart_at = stop.begin_s - travel;
            if view.time_s + 1e-6 < depart_at {
                // Use the idle time to serve ordinary requesters honestly —
                // the network staying healthy is the attacker's camouflage.
                if self.serve_decoys {
                    if let Some(action) = self.decoy_action(view, depart_at, victim.position) {
                        rec.add(Counter::DecoyCharges, 1);
                        return action;
                    }
                }
                // Bound the wait so the plan is refreshed while idling: drain
                // predictions made hours ago would mistime the masquerade.
                let wait = (depart_at - view.time_s).min(if self.replan_every_stop {
                    self.plan_age_limit_s
                } else {
                    f64::INFINITY
                });
                return ChargerAction::Wait(wait);
            }
            self.served.insert(victim.node);
            self.unserved.retain(|&(n, _)| n != victim.node);
            if let Some(slot) = self.decoy_excluded.get_mut(victim.node.0) {
                *slot = true;
            }
            self.targets.push((victim.node, victim.weight));
            if self.replan_every_stop {
                self.plan = None; // force a replan after this masquerade
            } else {
                self.next_stop += 1;
            }
            // Squat until the victim dies: the masquerade must outlive the
            // victim so it never gets to file another energy report. The
            // world ends every session at the served node's death; squatting
            // is chunked so the cost tracks the victim's *actual* residual
            // life even when cascade deaths change its drain mid-masquerade.
            self.squatting = Some(victim.node);
            rec.add(Counter::SquatChunks, 1);
            return self.squat_chunk(view, victim.node);
        }
    }
}

impl ChargerPolicy for CsaAttackPolicy {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        self.decide(view, &mut NullRecorder)
    }

    fn next_action_observed(
        &mut self,
        view: &WorldView<'_>,
        rec: &mut dyn Recorder,
    ) -> ChargerAction {
        self.decide(view, rec)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Window-oblivious spoofer: answers every charging request immediately with
/// a fake charge, like a malicious NJNP.
#[derive(Debug, Clone)]
pub struct EagerSpoofPolicy {
    poll_s: f64,
    /// Pretend-refill duration per visit, seconds.
    service_s: f64,
    served: std::collections::HashSet<NodeId>,
}

impl EagerSpoofPolicy {
    /// An eager spoofer whose fake sessions last `service_s` seconds.
    pub fn new(service_s: f64) -> Self {
        EagerSpoofPolicy {
            poll_s: 60.0,
            service_s,
            served: std::collections::HashSet::new(),
        }
    }
}

impl ChargerPolicy for EagerSpoofPolicy {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        if view.should_recharge(0.15) {
            return ChargerAction::Recharge;
        }
        if view.charger.is_exhausted() {
            return ChargerAction::Finish;
        }
        let target = view
            .requests
            .iter()
            .find(|r| view.is_alive(r.node) && !self.served.contains(&r.node))
            .map(|r| r.node);
        match target {
            Some(node) => {
                self.served.insert(node);
                ChargerAction::Charge {
                    node,
                    duration_s: self.service_s,
                    mode: ChargeMode::Spoofed,
                }
            }
            None => {
                if view.time_left_s() <= 0.0 {
                    ChargerAction::Finish
                } else {
                    ChargerAction::Wait(self.poll_s.min(view.time_left_s()))
                }
            }
        }
    }

    fn name(&self) -> &str {
        "eager-spoof"
    }
}

/// The no-hardware strawman: *selective neglect*. The malicious charger
/// serves every ordinary request honestly and simply never comes for the key
/// nodes, starving them.
///
/// It needs no cancellation rig and beats the energy-report audit trivially
/// (no session, nothing to contradict) — but its victims die with requests
/// that aged far beyond the population norm, which is exactly what the
/// [`crate::detect::FairnessAudit`] flags. CSA's spoofed visits are what a
/// neglect attacker cannot fake (experiment `fig12`).
#[derive(Debug)]
pub struct SelectiveNeglectPolicy {
    keynode: wrsn_net::keynode::KeyNodeConfig,
    census: Option<std::collections::HashSet<NodeId>>,
    slice_s: f64,
    poll_s: f64,
}

impl SelectiveNeglectPolicy {
    /// A neglect attacker using the default key-node census.
    pub fn new() -> Self {
        SelectiveNeglectPolicy {
            keynode: wrsn_net::keynode::KeyNodeConfig::default(),
            census: None,
            slice_s: 900.0,
            poll_s: 60.0,
        }
    }

    /// The victims (the ignored key nodes), once the first decision was made.
    pub fn census(&self) -> Vec<NodeId> {
        self.census
            .as_ref()
            .map(|c| {
                let mut v: Vec<NodeId> = c.iter().copied().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }
}

impl Default for SelectiveNeglectPolicy {
    fn default() -> Self {
        SelectiveNeglectPolicy::new()
    }
}

impl ChargerPolicy for SelectiveNeglectPolicy {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        if view.should_recharge(0.15) {
            return ChargerAction::Recharge;
        }
        if view.charger.is_exhausted() {
            return ChargerAction::Finish;
        }
        let census = self.census.get_or_insert_with(|| {
            wrsn_net::keynode::identify_with_mask(view.net, &view.net.alive_mask(), &self.keynode)
                .into_iter()
                .map(|k| k.id)
                .collect()
        });
        // Serve the nearest non-victim requester, honestly (an NJNP that
        // pretends its victims' requests never arrive).
        let target = view
            .requests
            .iter()
            .filter(|r| view.is_alive(r.node) && !census.contains(&r.node))
            .min_by(|a, b| {
                let d = |n: NodeId| {
                    view.net
                        .node(n)
                        .map(|x| view.charger.position().distance_sq(x.position()))
                        .unwrap_or(f64::INFINITY)
                };
                d(a.node)
                    .partial_cmp(&d(b.node))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|r| r.node);
        match target {
            Some(node) => {
                let dur = wrsn_charge::refill_duration_s(view, node)
                    .unwrap_or(self.slice_s)
                    .min(self.slice_s);
                ChargerAction::Charge {
                    node,
                    duration_s: dur,
                    mode: ChargeMode::Honest,
                }
            }
            None => {
                if view.time_left_s() <= 0.0 {
                    ChargerAction::Finish
                } else {
                    ChargerAction::Wait(self.poll_s.min(view.time_left_s()))
                }
            }
        }
    }

    fn name(&self) -> &str {
        "selective-neglect"
    }
}

/// Post-run attack accounting against the planned instance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttackOutcome {
    /// Victims the plan targeted.
    pub targeted: usize,
    /// Targeted victims that are dead at the end of the run.
    pub exhausted: usize,
    /// Total weight of exhausted targeted victims.
    pub utility: f64,
    /// `exhausted / targeted` (1.0 when nothing was targeted).
    pub exhausted_ratio: f64,
    /// Fraction of *all* key nodes (initial census) dead at the end —
    /// whether or not the attacker covered their death with a masquerade.
    pub key_node_exhausted_ratio: f64,
    /// The paper's headline: fraction of the key-node census exhausted
    /// *under a masquerade* (targeted and dead).
    pub covered_exhausted_ratio: f64,
}

/// Evaluates an executed attack: which targeted victims actually died, and
/// what fraction of the initial key-node census is gone.
pub fn evaluate_attack(world: &World, policy: &CsaAttackPolicy) -> AttackOutcome {
    let dead = |node: NodeId| {
        world
            .network()
            .node(node)
            .map(|n| !n.is_alive())
            .unwrap_or(false)
    };
    let targets = policy.targets();
    let targeted = targets.len();
    let exhausted = targets.iter().filter(|(n, _)| dead(*n)).count();
    let utility = targets
        .iter()
        .filter(|(n, _)| dead(*n))
        .map(|(_, w)| w)
        .sum();
    let census: &[crate::tide::Victim] = policy
        .initial_instance()
        .map(|i| i.victims.as_slice())
        .unwrap_or(&[]);
    let key_total = census.len();
    let key_dead = census.iter().filter(|v| dead(v.node)).count();
    let covered_dead = census
        .iter()
        .filter(|v| dead(v.node) && targets.iter().any(|(n, _)| *n == v.node))
        .count();
    AttackOutcome {
        targeted,
        exhausted,
        utility,
        exhausted_ratio: if targeted == 0 {
            1.0
        } else {
            exhausted as f64 / targeted as f64
        },
        key_node_exhausted_ratio: if key_total == 0 {
            1.0
        } else {
            key_dead as f64 / key_total as f64
        },
        covered_exhausted_ratio: if key_total == 0 {
            1.0
        } else {
            covered_dead as f64 / key_total as f64
        },
    }
}

/// Convenience: run a full CSA attack campaign on `world` and report both the
/// simulation outcome and the attack accounting.
///
/// # Errors
///
/// Propagates any [`wrsn_sim::SimError`] the engine surfaces (see
/// [`World::run`]).
pub fn run_attack(
    world: &mut World,
    config: TideConfig,
) -> Result<(SimReport, AttackOutcome), wrsn_sim::SimError> {
    let mut policy = CsaAttackPolicy::new(config);
    let report = world.run(&mut policy)?;
    let outcome = evaluate_attack(world, &policy);
    Ok((report, outcome))
}

/// Like [`run_attack`], but calls `progress` with the live trace every
/// `cadence_s` of simulated time (see [`World::run_with_progress`]) — the
/// engine hook behind the service's streaming scenario responses. The hook
/// only reads; the campaign trajectory and outcome are bitwise identical to
/// [`run_attack`].
///
/// # Errors
///
/// As [`run_attack`], plus [`wrsn_sim::SimError::Cancelled`] when the hook
/// returns `false` (client gone mid-stream).
pub fn run_attack_streamed(
    world: &mut World,
    config: TideConfig,
    cadence_s: f64,
    progress: &mut dyn FnMut(f64, &wrsn_sim::trace::Trace) -> bool,
) -> Result<(SimReport, AttackOutcome), wrsn_sim::SimError> {
    let mut policy = CsaAttackPolicy::new(config);
    let report = world.run_with_progress(
        &mut policy,
        &mut wrsn_sim::obs::NullRecorder,
        cadence_s,
        progress,
    )?;
    let outcome = evaluate_attack(world, &policy);
    Ok((report, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_net::energy::Battery;
    use wrsn_net::node::SensorNode;
    use wrsn_net::{deploy, Network, Point};
    use wrsn_sim::{MobileCharger, WorldConfig};

    /// A corridor world, pre-drained so requests/windows are near-term, with
    /// small batteries so full runs stay fast. Levels are staggered so the
    /// victims' depletion deadlines — and hence their stealth windows — are
    /// spread out, as in a network that has been running for a while.
    fn attack_world(horizon: f64) -> World {
        let (_, nodes) = deploy::corridor(10, 4, 3);
        let nodes: Vec<SensorNode> = nodes
            .into_iter()
            .map(|n| SensorNode::with_battery(n.position(), Battery::new(400.0, 80.0)))
            .collect();
        let net = Network::build(nodes, Point::new(10.0, 50.0), 30.0);
        let charger = MobileCharger::standard(Point::new(10.0, 50.0));
        let mut world = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: horizon,
                ..WorldConfig::default()
            },
        );
        let n = world.network().node_count();
        for i in 0..n {
            let level = 120.0 + 10.0 * ((i * 7) % n) as f64;
            world.set_battery_level(NodeId(i), level).unwrap();
        }
        world
    }

    #[test]
    fn csa_attack_survives_losing_a_victim_to_fault_injection() {
        use wrsn_sim::fault::{FaultEvent, FaultKind, FaultPlan};

        // Baseline campaign, to learn who gets attacked.
        let mut world = attack_world(400_000.0);
        let (_, baseline) = run_attack(&mut world, TideConfig::default()).expect("attack run");
        let victim = world
            .trace()
            .sessions()
            .first()
            .expect("baseline campaign charges someone")
            .node;

        // Same campaign, but the first-served victim hard-fails early: the
        // policy must keep executing against the degraded network instead of
        // erroring out, and the dead victim can no longer be exhausted by the
        // charger.
        let mut faulted =
            attack_world(400_000.0).with_fault_plan(FaultPlan::from_events(vec![FaultEvent {
                at_s: 1.0,
                kind: FaultKind::NodeFailure { node: victim },
            }]));
        let (_, outcome) = run_attack(&mut faulted, TideConfig::default()).expect("attack run");
        assert!(faulted.network().node(victim).unwrap().has_failed());
        assert!(outcome.targeted > 0, "campaign still targets the others");
        assert!(
            outcome.exhausted <= baseline.exhausted,
            "a crashed victim cannot add exhaustions: {} vs {}",
            outcome.exhausted,
            baseline.exhausted
        );
    }

    #[test]
    fn csa_attack_exhausts_most_key_nodes() {
        let mut world = attack_world(400_000.0);
        let (report, outcome) = run_attack(&mut world, TideConfig::default()).expect("attack run");
        assert!(outcome.targeted > 0, "attack must target someone");
        assert!(
            outcome.exhausted_ratio >= 0.8,
            "paper headline: ≥80% exhausted, got {:?} ({report:?})",
            outcome
        );
    }

    #[test]
    fn spoofed_victims_receive_essentially_nothing() {
        let mut world = attack_world(400_000.0);
        let (_, outcome) = run_attack(&mut world, TideConfig::default()).expect("attack run");
        assert!(outcome.targeted > 0);
        let mut spoofed = 0;
        for s in world.trace().sessions() {
            match s.mode {
                ChargeMode::Spoofed => {
                    spoofed += 1;
                    assert!(
                        s.delivered_j < 0.02 * s.radiated_j,
                        "session delivered {} of {} radiated",
                        s.delivered_j,
                        s.radiated_j
                    );
                }
                ChargeMode::Honest => {
                    // Decoy service delivers real energy.
                    assert!(s.delivered_j > 0.0 || s.duration_s < 1.0);
                }
                ChargeMode::Partial { .. } => {
                    panic!("naive CSA never issues partial-power sessions");
                }
            }
        }
        assert!(spoofed > 0, "attack must have spoofed sessions");
    }

    #[test]
    fn attack_policy_reports_plan() {
        let world = attack_world(1000.0);
        let mut policy = CsaAttackPolicy::new(TideConfig::default());
        assert!(policy.plan().is_none());
        // Trigger one decision.
        let tree = world.tree().clone();
        let view = WorldView {
            time_s: 0.0,
            net: world.network(),
            tree: &tree,
            power_w: world.power_w(),
            charger: world.charger(),
            requests: &[],
            horizon_s: 1000.0,
            depot: None,
            radio: wrsn_net::energy::RadioEnergyModel::classical(),
        };
        let _ = policy.next_action(&view);
        let (instance, schedule) = policy.plan().unwrap();
        instance.validate(schedule).unwrap();
    }

    #[test]
    fn eager_spoof_also_kills_but_serves_requests_immediately() {
        let mut world = attack_world(400_000.0);
        let report = world.run(&mut EagerSpoofPolicy::new(3_000.0)).expect("run");
        assert_eq!(report.policy_name, "eager-spoof");
        assert!(report.sessions > 0);
        // Spoofed sessions delivered nothing, so served nodes still died.
        assert!(report.dead_nodes > 0);
    }

    #[test]
    fn evaluate_attack_with_no_targets() {
        let world = attack_world(10.0);
        let policy = CsaAttackPolicy::new(TideConfig::default());
        let outcome = evaluate_attack(&world, &policy);
        assert_eq!(outcome.targeted, 0);
        assert_eq!(outcome.exhausted_ratio, 1.0);
        assert_eq!(outcome.key_node_exhausted_ratio, 1.0);
    }

    #[test]
    fn static_plan_ablation_still_runs() {
        let mut world = attack_world(400_000.0);
        let mut policy = CsaAttackPolicy::new(TideConfig::default()).with_static_plan();
        world.run(&mut policy).expect("run");
        let outcome = evaluate_attack(&world, &policy);
        // The static plan targets someone; adaptivity is about stealth and
        // yield, not about basic operation.
        assert!(outcome.targeted > 0);
    }
}
