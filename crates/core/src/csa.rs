//! The CSA approximation algorithm for the TIDE problem.
//!
//! CSA builds the victim route by **greedy cheapest insertion with
//! marginal-utility-per-cost ordering**: at each step it inserts the
//! (victim, position) pair maximising `weight / marginal energy cost` among
//! all insertions that keep the timed route feasible (travel, windows,
//! budget). The final schedule takes the best of the greedy route, the best
//! single-victim schedule, and two route-first fallbacks (travel-optimal and
//! weight-first orders), so CSA dominates the deterministic baselines by
//! construction. The greedy + best-singleton pair carries the classical
//! `(1 − 1/e)/2 ≈ 0.316` guarantee for budgeted monotone-modular coverage
//! (Khuller–Moss–Naor); the time-window constraint makes the bound heuristic
//! in general, and [`crate::exact`] measures the *empirical* ratio
//! (experiment `fig10`). Two post-passes sharpen it:
//!
//! * a feasibility-preserving **2-opt route repair** that shortens travel, and
//! * the **latest-start shift** ([`crate::schedule::latest_start_shift`]),
//!   which is pure stealth: starting each masquerade as late as its window
//!   allows means the victim dies as soon after the fake charge as possible,
//!   before it can file another energy report.
//!
//! Each component can be disabled through [`CsaOptions`] for the ablation
//! experiment (`tab3`).
//!
//! # Incremental insertion
//!
//! A naive greedy evaluates each candidate `(victim, position)` by rebuilding
//! the whole timed route — O(n) distance computations per candidate, O(n⁴)
//! overall. [`plan_with`] instead keeps an [`IncrementalRoute`] in the style
//! of Solomon's insertion heuristics: forward prefixes (departure time and
//! energy after the first `k` stops) plus backward latest-begin slacks make
//! each candidate check O(1), with an O(n) refresh per *accepted* insertion.
//! All geometry comes from one [`DistanceMatrix`]. The results are
//! **bit-identical** to the naive greedy — the prefixes are exactly the left
//! folds the naive code evaluates, so every comparison sees the very same
//! floats. The only approximate ingredient, the backward slack, is used
//! strictly outside a ±[`SLACK_GUARD_S`] guard band; inside the band the
//! suffix is re-simulated forward, which is the naive check verbatim
//! (`crates/core/tests/csa_bit_identity.rs` pins this equivalence down).

use wrsn_sim::obs::{Counter, NullRecorder, Recorder};

use crate::matrix::DistanceMatrix;
use crate::schedule::{self, AttackSchedule};
use crate::tide::TideInstance;

/// Half-width of the trust band around the backward latest-begin slack,
/// seconds.
///
/// The slack is a real-arithmetic bound; float evaluation puts it within
/// rounding error (≪ 1 ms for the second-to-megasecond horizons TIDE
/// instances use) of the true feasibility threshold, and forward feasibility
/// is monotone in the start time. A candidate whose suffix start clears the
/// slack by more than this margin is therefore decided immediately; anything
/// inside the band falls back to the exact forward re-simulation.
const SLACK_GUARD_S: f64 = 1e-3;

/// Knobs for the CSA planner (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsaOptions {
    /// Rank insertions by utility *per marginal cost* (true) or by raw
    /// utility (false).
    pub ratio_ordering: bool,
    /// Run the 2-opt route repair after greedy construction.
    pub route_improvement: bool,
    /// Shift begins to the latest feasible instant (stealth).
    pub latest_start: bool,
}

impl Default for CsaOptions {
    fn default() -> Self {
        CsaOptions {
            ratio_ordering: true,
            route_improvement: true,
            latest_start: true,
        }
    }
}

/// Plans an attack schedule with the full CSA pipeline.
///
/// # Example
///
/// ```
/// use wrsn_core::prelude::*;
/// use wrsn_net::prelude::*;
///
/// let (_, nodes) = deploy::corridor(8, 3, 1);
/// let mut net = Network::build(nodes, Point::new(10.0, 50.0), 30.0);
/// for i in 0..net.node_count() {
///     let cap = net.capacities_j()[i];
///     net.energy_mut().set_level(i, cap * 0.3);
/// }
/// let inst = TideInstance::from_network(&net, &TideConfig::default());
/// let plan = csa::plan(&inst);
/// inst.validate(&plan).unwrap();
/// ```
pub fn plan(instance: &TideInstance) -> AttackSchedule {
    plan_with(instance, &CsaOptions::default())
}

/// Plans with explicit options (ablation entry point).
pub fn plan_with(instance: &TideInstance, opts: &CsaOptions) -> AttackSchedule {
    plan_with_obs(instance, opts, &mut NullRecorder)
}

/// Plans with explicit options, counting planner work into `rec`: candidate
/// probes, exact slack-band fallbacks, accepted insertions and 2-opt moves —
/// the counters that explain the incremental planner's speedup. A
/// [`NullRecorder`] makes this exactly [`plan_with`]; the recorder never
/// influences the plan.
pub fn plan_with_obs(
    instance: &TideInstance,
    opts: &CsaOptions,
    rec: &mut dyn Recorder,
) -> AttackSchedule {
    rec.add(Counter::PlannerRuns, 1);
    rec.span_enter("csa_plan");
    if instance.victims.is_empty() {
        // Degenerate instance: every candidate construction below yields an
        // empty schedule (and none of them touches a planner counter before
        // bailing on empty input), so skip the machinery. The adaptive
        // attack keeps replanning on idle decisions long after its victim
        // list has emptied, making this the planner's most-executed path.
        rec.span_exit("csa_plan");
        return AttackSchedule::empty();
    }
    let matrix = DistanceMatrix::new(instance);
    let n = instance.victims.len();
    let mut route = IncrementalRoute::new(instance, &matrix);
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut current_cost = 0.0f64;

    loop {
        let mut best: Option<(f64, f64, usize, usize)> = None; // (score, mcost, vi, pos)
        for &vi in &remaining {
            let weight = instance.victims[vi].weight;
            for pos in 0..=route.len() {
                let Some(cost) = route.candidate_cost(vi, pos, rec) else {
                    continue;
                };
                if cost > instance.budget_j {
                    continue;
                }
                let mcost = (cost - current_cost).max(0.0);
                let score = if opts.ratio_ordering {
                    weight / (mcost + 1.0)
                } else {
                    weight
                };
                let better = match best {
                    None => true,
                    Some((bs, bc, _, _)) => {
                        score > bs + 1e-12 || (score > bs - 1e-12 && mcost < bc)
                    }
                };
                if better {
                    best = Some((score, mcost, vi, pos));
                }
            }
        }
        match best {
            Some((_, mcost, vi, pos)) => {
                rec.add(Counter::Insertions, 1);
                route.insert(vi, pos);
                remaining.retain(|&x| x != vi);
                current_cost += mcost;
            }
            None => break,
        }
    }
    let mut order = route.into_order();

    if opts.route_improvement {
        improve_route(instance, &matrix, &mut order, rec);
    }

    let greedy = schedule::earliest_times(instance, &order).unwrap_or_else(AttackSchedule::empty);

    // Candidate pool: the greedy route, the guarantee leg (best feasible
    // singleton — the Khuller–Moss–Naor construction), and two route-first
    // fallbacks (travel-optimal and weight-first orders with skip-infeasible
    // semantics). Taking the best makes CSA dominate the deterministic
    // baselines by construction on every instance, not just on average.
    let mut candidates = vec![greedy, best_singleton(instance)];
    let points: Vec<wrsn_net::Point> = instance.victims.iter().map(|v| v.position).collect();
    let (tsp_order, _) = wrsn_charge::tour::plan_tour_with(instance.start, &points, rec);
    candidates.push(schedule::from_order_skipping(instance, &tsp_order));
    let mut weight_order: Vec<usize> = (0..n).collect();
    weight_order.sort_by(|&a, &b| {
        instance.victims[b]
            .weight
            .partial_cmp(&instance.victims[a].weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    candidates.push(schedule::from_order_skipping(instance, &weight_order));

    let mut chosen = AttackSchedule::empty();
    let mut best_key = (f64::NEG_INFINITY, f64::INFINITY);
    for c in candidates {
        let key = (instance.utility(&c), instance.energy_cost(&c));
        if key.0 > best_key.0 + 1e-12 || (key.0 > best_key.0 - 1e-12 && key.1 < best_key.1) {
            best_key = key;
            chosen = c;
        }
    }

    if opts.latest_start {
        chosen = schedule::latest_start_shift(instance, &chosen);
    }
    rec.span_exit("csa_plan");
    chosen
}

/// The best feasible single-victim schedule (empty if none is feasible).
pub fn best_singleton(instance: &TideInstance) -> AttackSchedule {
    let mut best = AttackSchedule::empty();
    let mut best_w = 0.0;
    for vi in 0..instance.victims.len() {
        if let Some(s) = schedule::earliest_times(instance, &[vi]) {
            if instance.energy_cost(&s) <= instance.budget_j && instance.victims[vi].weight > best_w
            {
                best_w = instance.victims[vi].weight;
                best = s;
            }
        }
    }
    best
}

/// Feasibility + exact energy cost of a fixed visit order in one pass.
///
/// Bit-identical to [`schedule::earliest_times`] followed by
/// [`TideInstance::energy_cost`]: the time and energy accumulators are
/// independent left folds, so interleaving them (and reading the per-leg
/// terms from the matrix) changes no rounding — it only removes the stop
/// allocation and the duplicate geometry.
fn route_cost(instance: &TideInstance, matrix: &DistanceMatrix, order: &[usize]) -> Option<f64> {
    let mut time = instance.now_s;
    let mut node = DistanceMatrix::START;
    let mut cost = 0.0f64;
    for &vi in order {
        let v = instance.victims.get(vi)?;
        let here = DistanceMatrix::vid(vi);
        let arrive = time + matrix.travel_s(node, here);
        let begin = arrive.max(v.window.open_s);
        if begin > v.window.close_s + 1e-9 {
            return None;
        }
        cost += matrix.leg_cost_j(node, here);
        cost += matrix.svc_cost_j(vi);
        time = begin + v.service_s;
        node = here;
    }
    (cost <= instance.budget_j).then_some(cost)
}

/// Feasibility-preserving 2-opt: reverse segments when that keeps the timed
/// route feasible and strictly reduces energy cost.
fn improve_route(
    instance: &TideInstance,
    matrix: &DistanceMatrix,
    order: &mut [usize],
    rec: &mut dyn Recorder,
) {
    let n = order.len();
    if n < 3 {
        return;
    }
    let Some(mut best_cost) = route_cost(instance, matrix, order) else {
        return;
    };
    for _ in 0..16 {
        rec.add(Counter::TwoOptPasses, 1);
        let mut improved = false;
        for i in 0..n - 1 {
            for j in i + 1..n {
                order[i..=j].reverse();
                match route_cost(instance, matrix, order) {
                    Some(c) if c + 1e-9 < best_cost => {
                        best_cost = c;
                        rec.add(Counter::TwoOptMoves, 1);
                        improved = true;
                    }
                    _ => order[i..=j].reverse(), // undo
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// The greedy's working route with the Solomon-style incremental state.
///
/// Prefix arrays after the first `k` stops: `node[k]` (matrix node the
/// charger occupies), `time_after[k]` (departure time) and `cost_after[k]`
/// (energy left fold, two adds per stop exactly as
/// [`TideInstance::energy_cost`]). `latest_begin[k]` is the backward slack:
/// the latest begin time of stop `k` for which the rest of the route stays
/// feasible, up to float rounding — see [`SLACK_GUARD_S`].
struct IncrementalRoute<'a> {
    instance: &'a TideInstance,
    matrix: &'a DistanceMatrix,
    order: Vec<usize>,
    node: Vec<usize>,
    time_after: Vec<f64>,
    cost_after: Vec<f64>,
    latest_begin: Vec<f64>,
}

impl<'a> IncrementalRoute<'a> {
    fn new(instance: &'a TideInstance, matrix: &'a DistanceMatrix) -> Self {
        IncrementalRoute {
            instance,
            matrix,
            order: Vec::new(),
            node: vec![DistanceMatrix::START],
            time_after: vec![instance.now_s],
            cost_after: vec![0.0],
            latest_begin: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn into_order(self) -> Vec<usize> {
        self.order
    }

    /// Evaluates inserting victim `vi` at position `pos`: `Some(cost)` with
    /// the exact energy cost of the candidate route when it is time-feasible,
    /// `None` otherwise. O(1) except for the energy refold over the suffix
    /// (pure adds) and the rare in-band exact fallback.
    fn candidate_cost(&self, vi: usize, pos: usize, rec: &mut dyn Recorder) -> Option<f64> {
        rec.add(Counter::CandidateProbes, 1);
        let v = &self.instance.victims[vi];
        let here = DistanceMatrix::vid(vi);
        let arrive = self.time_after[pos] + self.matrix.travel_s(self.node[pos], here);
        let begin = arrive.max(v.window.open_s);
        if begin > v.window.close_s + 1e-9 {
            return None;
        }
        if pos < self.order.len() {
            // The suffix keeps its sequence; only its start time moves. Its
            // first begin against the backward slack decides feasibility
            // outside the guard band, the exact re-simulation inside it.
            let succ = self.order[pos];
            let w = &self.instance.victims[succ];
            let depart = begin + v.service_s;
            let arrive2 = depart + self.matrix.travel_s(here, DistanceMatrix::vid(succ));
            let begin2 = arrive2.max(w.window.open_s);
            let slack = self.latest_begin[pos];
            if begin2 > slack + SLACK_GUARD_S {
                return None;
            }
            if begin2 > slack - SLACK_GUARD_S {
                rec.add(Counter::ExactFallbacks, 1);
                if !self.suffix_feasible(depart, here, pos) {
                    return None;
                }
            }
        }
        // Exact energy: resume the left fold from the prefix through the new
        // stop and the (position-shifted, otherwise unchanged) suffix.
        let mut cost = self.cost_after[pos];
        cost += self.matrix.leg_cost_j(self.node[pos], here);
        cost += self.matrix.svc_cost_j(vi);
        let mut prev = here;
        for &w in &self.order[pos..] {
            let wn = DistanceMatrix::vid(w);
            cost += self.matrix.leg_cost_j(prev, wn);
            cost += self.matrix.svc_cost_j(w);
            prev = wn;
        }
        Some(cost)
    }

    /// Exact forward window check of `order[pos..]` departing `from` at
    /// `time` — verbatim the naive recursion over the suffix.
    fn suffix_feasible(&self, mut time: f64, mut from: usize, pos: usize) -> bool {
        for &w in &self.order[pos..] {
            let v = &self.instance.victims[w];
            let here = DistanceMatrix::vid(w);
            let arrive = time + self.matrix.travel_s(from, here);
            let begin = arrive.max(v.window.open_s);
            if begin > v.window.close_s + 1e-9 {
                return false;
            }
            time = begin + v.service_s;
            from = here;
        }
        true
    }

    /// Accepts an insertion: O(n) prefix refresh from `pos` plus a full
    /// backward slack pass.
    fn insert(&mut self, vi: usize, pos: usize) {
        self.order.insert(pos, vi);
        let m = self.order.len();
        self.node.truncate(pos + 1);
        self.time_after.truncate(pos + 1);
        self.cost_after.truncate(pos + 1);
        for k in pos..m {
            let w = self.order[k];
            let v = &self.instance.victims[w];
            let prev = self.node[k];
            let here = DistanceMatrix::vid(w);
            let arrive = self.time_after[k] + self.matrix.travel_s(prev, here);
            let begin = arrive.max(v.window.open_s);
            let mut cost = self.cost_after[k];
            cost += self.matrix.leg_cost_j(prev, here);
            cost += self.matrix.svc_cost_j(w);
            self.node.push(here);
            self.time_after.push(begin + v.service_s);
            self.cost_after.push(cost);
        }
        self.latest_begin.resize(m, 0.0);
        for k in (0..m).rev() {
            let w = self.order[k];
            let v = &self.instance.victims[w];
            let mut latest = v.window.close_s;
            if k + 1 < m {
                let next = DistanceMatrix::vid(self.order[k + 1]);
                let chain = self.latest_begin[k + 1]
                    - self.matrix.travel_s(DistanceMatrix::vid(w), next)
                    - v.service_s;
                latest = latest.min(chain);
            }
            self.latest_begin[k] = latest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tide::{TideConfig, TideInstance, TimeWindow, Victim};
    use wrsn_net::{deploy, Network, NodeId, Point};

    fn drained_corridor_instance() -> TideInstance {
        let (_, nodes) = deploy::corridor(10, 4, 3);
        let mut net = Network::build(nodes, Point::new(10.0, 50.0), 30.0);
        for i in 0..net.node_count() {
            let cap = net.capacities_j()[i];
            net.energy_mut().set_level(i, cap * 0.3);
        }
        TideInstance::from_network(&net, &TideConfig::default())
    }

    fn synthetic(n: usize, window_len: f64, budget: f64) -> TideInstance {
        let victims = (0..n)
            .map(|i| {
                let open = 100.0 * i as f64;
                Victim {
                    node: NodeId(i),
                    position: Point::new(50.0 * (i as f64).cos(), 50.0 * (i as f64).sin()),
                    weight: 1.0 + (i % 3) as f64,
                    window: TimeWindow {
                        open_s: open,
                        close_s: open + window_len,
                    },
                    service_s: 30.0,
                    death_s: open + window_len + 30.0,
                }
            })
            .collect();
        TideInstance {
            victims,
            start: Point::ORIGIN,
            speed_mps: 5.0,
            budget_j: budget,
            move_cost_j_per_m: 1.0,
            radiated_power_w: 1.0,
            now_s: 0.0,
        }
    }

    #[test]
    fn plan_is_feasible_on_real_instance() {
        let inst = drained_corridor_instance();
        let plan = plan(&inst);
        inst.validate(&plan).unwrap();
        assert!(!plan.is_empty(), "CSA should attack something");
    }

    #[test]
    fn plan_serves_all_victims_when_resources_are_loose() {
        let inst = synthetic(6, 1.0e6, 1.0e9);
        let p = plan(&inst);
        inst.validate(&p).unwrap();
        assert_eq!(p.len(), 6, "loose instance must be fully served");
        assert!((inst.utility(&p) - inst.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn plan_respects_tight_budget() {
        let inst = synthetic(6, 1.0e6, 150.0);
        let p = plan(&inst);
        inst.validate(&p).unwrap();
        assert!(inst.energy_cost(&p) <= 150.0 + 1e-6);
        assert!(p.len() < 6);
        assert!(!p.is_empty(), "something must fit in 150 J");
    }

    #[test]
    fn plan_never_worse_than_best_singleton() {
        for &(wl, budget) in &[(50.0, 200.0), (10.0, 100.0), (1000.0, 400.0)] {
            let inst = synthetic(8, wl, budget);
            let p = plan(&inst);
            let single = best_singleton(&inst);
            assert!(
                inst.utility(&p) >= inst.utility(&single) - 1e-9,
                "wl={wl} budget={budget}"
            );
        }
    }

    #[test]
    fn ratio_ordering_helps_under_tight_budget() {
        // One heavy, far victim vs several light, near ones: with a tight
        // budget the ratio rule packs more total weight.
        let mut inst = synthetic(8, 1.0e6, 1.0e9);
        for (i, v) in inst.victims.iter_mut().enumerate() {
            v.window = TimeWindow {
                open_s: 0.0,
                close_s: 1.0e6,
            };
            v.position = Point::new(5.0 * i as f64, 0.0);
            v.weight = 1.0;
        }
        inst.victims[7].position = Point::new(2_000.0, 0.0);
        inst.victims[7].weight = 1.6;
        inst.budget_j = 600.0; // far victim alone: 2000 travel — unaffordable
        let with_ratio = plan_with(&inst, &CsaOptions::default());
        let without = plan_with(
            &inst,
            &CsaOptions {
                ratio_ordering: false,
                ..CsaOptions::default()
            },
        );
        inst.validate(&with_ratio).unwrap();
        inst.validate(&without).unwrap();
        assert!(inst.utility(&with_ratio) >= inst.utility(&without));
        assert!(
            inst.utility(&with_ratio) >= 7.0,
            "ratio rule should take the 7 near victims"
        );
    }

    #[test]
    fn latest_start_option_delays_begins() {
        let inst = synthetic(4, 10_000.0, 1.0e9);
        let early = plan_with(
            &inst,
            &CsaOptions {
                latest_start: false,
                ..CsaOptions::default()
            },
        );
        let late = plan_with(&inst, &CsaOptions::default());
        inst.validate(&late).unwrap();
        assert_eq!(early.order(), late.order());
        let sum_early: f64 = early.stops().iter().map(|s| s.begin_s).sum();
        let sum_late: f64 = late.stops().iter().map(|s| s.begin_s).sum();
        assert!(sum_late > sum_early, "{sum_late} !> {sum_early}");
    }

    #[test]
    fn planning_is_deterministic() {
        let inst = drained_corridor_instance();
        assert_eq!(plan(&inst), plan(&inst));
    }

    #[test]
    fn empty_instance_plans_empty_schedule() {
        let inst = TideInstance {
            victims: Vec::new(),
            start: Point::ORIGIN,
            speed_mps: 1.0,
            budget_j: 100.0,
            move_cost_j_per_m: 1.0,
            radiated_power_w: 1.0,
            now_s: 0.0,
        };
        assert!(plan(&inst).is_empty());
    }

    #[test]
    fn unreachable_windows_are_left_out() {
        let mut inst = synthetic(3, 1.0e6, 1.0e9);
        // Victim 1's window closes before anyone can get there.
        inst.victims[1].window = TimeWindow {
            open_s: 0.0,
            close_s: 0.001,
        };
        let p = plan(&inst);
        inst.validate(&p).unwrap();
        assert!(!p.order().contains(&1));
        assert_eq!(p.len(), 2);
    }
}
