//! Exact TIDE solver for small instances.
//!
//! Dynamic program over `(visited-set, last-victim)` states keeping a Pareto
//! front of `(finish time, travel distance)` labels — time governs window
//! feasibility, distance governs the energy budget, and neither dominates the
//! other. Exponential in the victim count (practical to ~14 victims); used to
//! measure CSA's empirical approximation ratio (experiment `fig10`).

use crate::matrix::DistanceMatrix;
use crate::schedule::{self, AttackSchedule};
use crate::tide::TideInstance;

/// `out[set] = Σ terms[v] over v ∈ set`, folded in ascending victim order.
///
/// Built by peeling the *highest* set bit: `out[set] = out[set \ {h}] +
/// terms[h]` appends the largest element to the ascending left fold, so every
/// entry carries exactly the bits of
/// `(0..n).filter(|v| set has v).map(|v| terms[v]).sum::<f64>()` — the
/// expression the naive solver evaluated per state — at O(1) per set instead
/// of O(n).
fn subset_sums(terms: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0f64; 1 << terms.len()];
    for set in 1usize..out.len() {
        let high = usize::BITS - 1 - set.leading_zeros();
        out[set] = out[set & !(1 << high)] + terms[high as usize];
    }
    out
}

/// Maximum victim count the exact solver accepts.
pub const MAX_VICTIMS: usize = 20;

#[derive(Debug, Clone, Copy)]
struct Label {
    finish_s: f64,
    dist_m: f64,
    /// Predecessor state: (last victim, label index); `usize::MAX` = route
    /// start.
    prev_last: usize,
    prev_label: usize,
}

/// Solves the instance exactly, returning a maximum-utility feasible schedule
/// (empty when nothing is feasible). Ties are broken toward lower energy.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_VICTIMS`] victims.
///
/// # Example
///
/// ```
/// use wrsn_core::prelude::*;
/// use wrsn_net::{NodeId, Point};
/// use wrsn_core::tide::{TimeWindow, Victim};
///
/// let inst = TideInstance {
///     victims: vec![Victim {
///         node: NodeId(0),
///         position: Point::new(10.0, 0.0),
///         weight: 2.0,
///         window: TimeWindow { open_s: 0.0, close_s: 100.0 },
///         service_s: 5.0,
///         death_s: 105.0,
///     }],
///     start: Point::ORIGIN,
///     speed_mps: 5.0,
///     budget_j: 1_000.0,
///     move_cost_j_per_m: 1.0,
///     radiated_power_w: 1.0,
///     now_s: 0.0,
/// };
/// let best = exact::solve(&inst);
/// assert_eq!(inst.utility(&best), 2.0);
/// ```
pub fn solve(instance: &TideInstance) -> AttackSchedule {
    let n = instance.victims.len();
    assert!(
        n <= MAX_VICTIMS,
        "exact solver accepts at most {MAX_VICTIMS} victims, got {n}"
    );
    if n == 0 {
        return AttackSchedule::empty();
    }

    let matrix = DistanceMatrix::new(instance);
    // radiation[set] = Σ service_s · radiated_power over victims in `set`.
    let service_energy: Vec<f64> = (0..n).map(|v| matrix.svc_cost_j(v)).collect();
    let set_service = subset_sums(&service_energy);
    let weights: Vec<f64> = instance.victims.iter().map(|v| v.weight).collect();
    let set_utility = subset_sums(&weights);

    // states[set * n + last] = Pareto labels.
    let mut states: Vec<Vec<Label>> = vec![Vec::new(); (1usize << n) * n];

    // Seed: start → each victim alone.
    for v in 0..n {
        let vic = &instance.victims[v];
        let arrive =
            instance.now_s + matrix.travel_s(DistanceMatrix::START, DistanceMatrix::vid(v));
        let begin = arrive.max(vic.window.open_s);
        if begin > vic.window.close_s + 1e-9 {
            continue;
        }
        let dist = matrix.dist_m(DistanceMatrix::START, DistanceMatrix::vid(v));
        if dist * instance.move_cost_j_per_m + service_energy[v] > instance.budget_j + 1e-9 {
            continue;
        }
        states[(1 << v) * n + v].push(Label {
            finish_s: begin + vic.service_s,
            dist_m: dist,
            prev_last: usize::MAX,
            prev_label: usize::MAX,
        });
    }

    // Expand sets in increasing popcount order (natural integer order works:
    // every subset of `set` is numerically smaller).
    for set in 1usize..(1 << n) {
        for last in 0..n {
            if set & (1 << last) == 0 {
                continue;
            }
            let from = DistanceMatrix::vid(last);
            for li in 0..states[set * n + last].len() {
                let label = states[set * n + last][li];
                for v in 0..n {
                    if set & (1 << v) != 0 {
                        continue;
                    }
                    let vic = &instance.victims[v];
                    let here = DistanceMatrix::vid(v);
                    let arrive = label.finish_s + matrix.travel_s(from, here);
                    let begin = arrive.max(vic.window.open_s);
                    if begin > vic.window.close_s + 1e-9 {
                        continue;
                    }
                    let dist = label.dist_m + matrix.dist_m(from, here);
                    let energy =
                        dist * instance.move_cost_j_per_m + set_service[set] + service_energy[v];
                    if energy > instance.budget_j + 1e-9 {
                        continue;
                    }
                    let new = Label {
                        finish_s: begin + vic.service_s,
                        dist_m: dist,
                        prev_last: last,
                        prev_label: li,
                    };
                    push_pareto(&mut states[(set | (1 << v)) * n + v], new);
                }
            }
        }
    }

    // Pick the best reachable set.
    let mut best: Option<(f64, f64, usize, usize, usize)> = None; // (utility, energy, set, last, label)
    for set in 1usize..(1 << n) {
        let utility = set_utility[set];
        for last in 0..n {
            for (li, label) in states[set * n + last].iter().enumerate() {
                let energy = label.dist_m * instance.move_cost_j_per_m + set_service[set];
                let better = match best {
                    None => true,
                    Some((bu, be, _, _, _)) => {
                        utility > bu + 1e-12 || (utility > bu - 1e-12 && energy < be)
                    }
                };
                if better {
                    best = Some((utility, energy, set, last, li));
                }
            }
        }
    }

    let Some((_, _, mut set, mut last, mut li)) = best else {
        return AttackSchedule::empty();
    };

    // Reconstruct the visit order by walking predecessors.
    let mut order_rev = Vec::new();
    loop {
        order_rev.push(last);
        let label = states[set * n + last][li];
        if label.prev_last == usize::MAX {
            break;
        }
        set &= !(1 << last);
        last = label.prev_last;
        li = label.prev_label;
    }
    order_rev.reverse();
    schedule::earliest_times(instance, &order_rev).unwrap_or_else(AttackSchedule::empty)
}

/// Inserts `label` keeping the list Pareto-minimal in `(finish_s, dist_m)`.
fn push_pareto(labels: &mut Vec<Label>, label: Label) {
    for l in labels.iter() {
        if l.finish_s <= label.finish_s + 1e-12 && l.dist_m <= label.dist_m + 1e-12 {
            return; // dominated
        }
    }
    labels.retain(|l| !(label.finish_s <= l.finish_s + 1e-12 && label.dist_m <= l.dist_m + 1e-12));
    labels.push(label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csa;
    use crate::tide::{TideInstance, TimeWindow, Victim};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wrsn_net::{NodeId, Point};

    fn random_instance(n: usize, seed: u64, budget: f64) -> TideInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let victims = (0..n)
            .map(|i| {
                let open = rng.gen_range(0.0..500.0);
                Victim {
                    node: NodeId(i),
                    position: Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)),
                    weight: rng.gen_range(1.0..5.0),
                    window: TimeWindow {
                        open_s: open,
                        close_s: open + rng.gen_range(50.0..800.0),
                    },
                    service_s: rng.gen_range(10.0..60.0),
                    death_s: open + 1_000.0,
                }
            })
            .collect();
        TideInstance {
            victims,
            start: Point::new(100.0, 100.0),
            speed_mps: 5.0,
            budget_j: budget,
            move_cost_j_per_m: 1.0,
            radiated_power_w: 1.0,
            now_s: 0.0,
        }
    }

    /// Brute-force optimum by trying every permutation of every subset.
    fn brute_force(inst: &TideInstance) -> f64 {
        let n = inst.victims.len();
        let mut best = 0.0f64;
        let idx: Vec<usize> = (0..n).collect();
        fn perms(rest: &[usize], acc: &mut Vec<usize>, inst: &TideInstance, best: &mut f64) {
            // Window misses and budget overruns are both monotone in appended
            // stops, so an infeasible prefix prunes its whole subtree.
            let Some(s) = crate::schedule::earliest_times(inst, acc) else {
                return;
            };
            if inst.energy_cost(&s) > inst.budget_j + 1e-9 {
                return;
            }
            *best = best.max(inst.utility(&s));
            for (k, &v) in rest.iter().enumerate() {
                let mut r = rest.to_vec();
                r.remove(k);
                acc.push(v);
                perms(&r, acc, inst, best);
                acc.pop();
            }
        }
        perms(&idx, &mut Vec::new(), inst, &mut best);
        best
    }

    #[test]
    fn exact_matches_brute_force_on_small_instances() {
        for seed in 0..8 {
            let inst = random_instance(6, seed, 2_000.0);
            let dp = solve(&inst);
            inst.validate(&dp).unwrap();
            let bf = brute_force(&inst);
            assert!(
                (inst.utility(&dp) - bf).abs() < 1e-6,
                "seed {seed}: dp {} vs brute {}",
                inst.utility(&dp),
                bf
            );
        }
    }

    #[test]
    fn exact_is_never_beaten_by_csa() {
        for seed in 0..12 {
            let inst = random_instance(8, seed, 1_200.0);
            let opt = inst.utility(&solve(&inst));
            let approx = inst.utility(&csa::plan(&inst));
            assert!(
                approx <= opt + 1e-6,
                "seed {seed}: csa {approx} beats exact {opt}"
            );
        }
    }

    #[test]
    fn exact_serves_everything_when_loose() {
        let inst = random_instance(7, 99, 1.0e9);
        let mut loose = inst.clone();
        for v in &mut loose.victims {
            v.window = TimeWindow {
                open_s: 0.0,
                close_s: 1.0e9,
            };
        }
        let s = solve(&loose);
        assert_eq!(s.len(), 7);
        assert!((loose.utility(&s) - loose.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn exact_handles_empty_and_infeasible() {
        let mut inst = random_instance(0, 0, 100.0);
        assert!(solve(&inst).is_empty());
        inst = random_instance(4, 3, 100.0);
        for v in &mut inst.victims {
            v.window = TimeWindow {
                open_s: 0.0,
                close_s: 0.0, // unreachable
            };
        }
        assert!(solve(&inst).is_empty());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_victims_panics() {
        let inst = random_instance(MAX_VICTIMS + 1, 0, 100.0);
        let _ = solve(&inst);
    }
}
