//! # wrsn-core — the Charging Spoofing Attack (CSA)
//!
//! Reproduction of the primary contribution of *"Are You Really Charging
//! Me?"* (ICDCS 2022): a mobile charger that *appears* to charge key sensor
//! nodes — it answers their requests, drives to them, parks and radiates —
//! while the nonlinear superposition of its two transmit antennas cancels the
//! field at the victim, which harvests nothing and is exhausted in vain.
//!
//! The crate is organised around the paper's pipeline:
//!
//! 1. [`tide`] — the **TIDE** problem (charging uTility optImization with key
//!    noDe timE window constraints): victims, windows, budgets, and schedule
//!    feasibility;
//! 2. [`csa`] — the **CSA** approximation algorithm: greedy
//!    marginal-utility-per-cost insertion with latest-start shifting, carrying
//!    the classical bounded guarantee for submodular orienteering objectives
//!    (see [`theory`]);
//! 3. [`baseline`] — the comparison attacks (random order, utility-greedy,
//!    TSP-ordered);
//! 4. [`exact`] — a branch-and-bound solver for small instances, used to
//!    measure CSA's empirical approximation ratio;
//! 5. [`attack`] — execution: a [`wrsn_sim::ChargerPolicy`] that carries a
//!    schedule out in the simulated world using spoofed charging sessions;
//! 6. [`detect`] — the defender's side: trajectory, RF and energy-report
//!    auditors, and the stealth analysis showing why CSA's time windows keep
//!    it under the radar.
//!
//! # Example
//!
//! ```
//! use wrsn_core::prelude::*;
//! use wrsn_net::prelude::*;
//!
//! // A corridor network with obvious key nodes, partially drained.
//! let (_, nodes) = deploy::corridor(10, 4, 3);
//! let mut net = Network::build(nodes, Point::new(10.0, 50.0), 30.0);
//! for id in 0..net.node_count() {
//!     let cap = net.capacities_j()[id];
//!     net.energy_mut().set_level(id, cap * 0.3);
//! }
//! let instance = TideInstance::from_network(&net, &TideConfig::default());
//! let schedule = csa::plan(&instance);
//! assert!(instance.validate(&schedule).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod baseline;
pub mod csa;
pub mod detect;
pub mod error;
pub mod exact;
pub mod matrix;
pub mod schedule;
pub mod theory;
pub mod tide;

pub use attack::{CsaAttackPolicy, EagerSpoofPolicy, SelectiveNeglectPolicy};
pub use error::CoreError;
pub use schedule::{AttackSchedule, Stop};
pub use tide::{TideConfig, TideInstance, Victim};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::attack::{
        AttackOutcome, CsaAttackPolicy, EagerSpoofPolicy, SelectiveNeglectPolicy,
    };
    pub use crate::baseline::{self, Planner};
    pub use crate::csa;
    pub use crate::detect::{self, DetectionReport, Detector};
    pub use crate::exact;
    pub use crate::matrix::DistanceMatrix;
    pub use crate::schedule::{AttackSchedule, Stop};
    pub use crate::theory;
    pub use crate::tide::{TideConfig, TideInstance, Victim};
}
