//! Baseline attack planners the evaluation compares CSA against.
//!
//! * [`RandomPlanner`] — visit victims in a seeded random order, serving
//!   whatever happens to be feasible;
//! * [`GreedyUtilityPlanner`] — visit in descending weight order (utility
//!   greed without route/window awareness);
//! * [`TspPlanner`] — travel-optimal order (nearest-neighbour + 2-opt over
//!   victim positions) without window awareness.
//!
//! All share the skip-if-infeasible execution semantics of
//! [`crate::schedule::from_order_skipping`], so every baseline emits a valid
//! schedule — they just pick worse orders than CSA.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wrsn_net::Point;
use wrsn_sim::obs::Recorder;

use crate::csa;
use crate::schedule::{from_order_skipping, AttackSchedule};
use crate::tide::TideInstance;

/// A TIDE planner: turns an instance into a feasible schedule.
pub trait Planner {
    /// Plans a feasible attack schedule.
    fn plan(&self, instance: &TideInstance) -> AttackSchedule;

    /// Like [`Planner::plan`], but with a [`Recorder`] for planner counters
    /// (probes, fallbacks, 2-opt moves). The default ignores the recorder;
    /// instrumented planners override it.
    fn plan_obs(&self, instance: &TideInstance, rec: &mut dyn Recorder) -> AttackSchedule {
        let _ = rec;
        self.plan(instance)
    }

    /// Short name used in experiment tables.
    fn name(&self) -> &str;
}

/// The CSA algorithm as a [`Planner`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CsaPlanner;

impl Planner for CsaPlanner {
    fn plan(&self, instance: &TideInstance) -> AttackSchedule {
        csa::plan(instance)
    }

    fn plan_obs(&self, instance: &TideInstance, rec: &mut dyn Recorder) -> AttackSchedule {
        csa::plan_with_obs(instance, &csa::CsaOptions::default(), rec)
    }

    fn name(&self) -> &str {
        "csa"
    }
}

/// Random-order baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandomPlanner {
    /// RNG seed (schedules are deterministic per seed).
    pub seed: u64,
}

impl Planner for RandomPlanner {
    fn plan(&self, instance: &TideInstance) -> AttackSchedule {
        let mut order: Vec<usize> = (0..instance.victims.len()).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(self.seed));
        from_order_skipping(instance, &order)
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Descending-weight baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyUtilityPlanner;

impl Planner for GreedyUtilityPlanner {
    fn plan(&self, instance: &TideInstance) -> AttackSchedule {
        let mut order: Vec<usize> = (0..instance.victims.len()).collect();
        order.sort_by(|&a, &b| {
            instance.victims[b]
                .weight
                .partial_cmp(&instance.victims[a].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        from_order_skipping(instance, &order)
    }

    fn name(&self) -> &str {
        "greedy-utility"
    }
}

/// Travel-optimal (window-oblivious) baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct TspPlanner;

impl Planner for TspPlanner {
    fn plan(&self, instance: &TideInstance) -> AttackSchedule {
        let points: Vec<Point> = instance.victims.iter().map(|v| v.position).collect();
        let (order, _) = wrsn_charge::tour::plan_tour(instance.start, &points);
        from_order_skipping(instance, &order)
    }

    fn plan_obs(&self, instance: &TideInstance, rec: &mut dyn Recorder) -> AttackSchedule {
        let points: Vec<Point> = instance.victims.iter().map(|v| v.position).collect();
        let (order, _) = wrsn_charge::tour::plan_tour_with(instance.start, &points, rec);
        from_order_skipping(instance, &order)
    }

    fn name(&self) -> &str {
        "tsp"
    }
}

/// All standard planners (CSA first), for sweep experiments.
pub fn standard_planners(seed: u64) -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(CsaPlanner),
        Box::new(GreedyUtilityPlanner),
        Box::new(TspPlanner),
        Box::new(RandomPlanner { seed }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tide::{TimeWindow, Victim};
    use wrsn_net::NodeId;

    fn instance(n: usize, budget: f64) -> TideInstance {
        let victims = (0..n)
            .map(|i| Victim {
                node: NodeId(i),
                position: Point::new(20.0 * i as f64, 10.0 * ((i % 2) as f64)),
                weight: 1.0 + (n - i) as f64,
                window: TimeWindow {
                    open_s: 50.0 * i as f64,
                    close_s: 50.0 * i as f64 + 400.0,
                },
                service_s: 20.0,
                death_s: 50.0 * i as f64 + 500.0,
            })
            .collect();
        TideInstance {
            victims,
            start: Point::ORIGIN,
            speed_mps: 5.0,
            budget_j: budget,
            move_cost_j_per_m: 1.0,
            radiated_power_w: 1.0,
            now_s: 0.0,
        }
    }

    #[test]
    fn every_planner_emits_valid_schedules() {
        let inst = instance(8, 800.0);
        for planner in standard_planners(7) {
            let s = planner.plan(&inst);
            inst.validate(&s)
                .unwrap_or_else(|e| panic!("{}: {e}", planner.name()));
        }
    }

    #[test]
    fn csa_matches_or_beats_every_baseline() {
        for &budget in &[200.0, 500.0, 2_000.0] {
            let inst = instance(8, budget);
            let csa_u = inst.utility(&CsaPlanner.plan(&inst));
            for planner in standard_planners(3).into_iter().skip(1) {
                let u = inst.utility(&planner.plan(&inst));
                assert!(
                    csa_u + 1e-9 >= u,
                    "budget {budget}: {} got {u}, csa {csa_u}",
                    planner.name()
                );
            }
        }
    }

    #[test]
    fn random_planner_is_seed_deterministic() {
        let inst = instance(8, 800.0);
        let a = RandomPlanner { seed: 5 }.plan(&inst);
        let b = RandomPlanner { seed: 5 }.plan(&inst);
        let c = RandomPlanner { seed: 6 }.plan(&inst);
        assert_eq!(a, b);
        // Different seeds usually give different orders (not guaranteed, but
        // true for this instance).
        assert_ne!(a.order(), c.order());
    }

    #[test]
    fn greedy_utility_prefers_heavy_victims() {
        let inst = instance(5, 1.0e9);
        let s = GreedyUtilityPlanner.plan(&inst);
        // Victim 0 has the highest weight and is served.
        assert!(s.order().contains(&0));
    }

    #[test]
    fn planner_names_are_distinct() {
        let names: std::collections::HashSet<String> = standard_planners(0)
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        assert_eq!(names.len(), 4);
    }
}
