//! The defender's detector suite and why CSA slips past it.
//!
//! Three auditors a WRSN base station can realistically run:
//!
//! * [`TrajectoryAudit`] — did the charger actually respond to every charging
//!   request in time? (Catches an *absent* charger / pure DoS. CSA responds
//!   to requests like a model citizen.)
//! * [`RadiatedPowerAudit`] — did neighbours measure RF power during each
//!   session? (Catches a *mute* visitor. CSA radiates at least as much as an
//!   honest charger — the cancellation happens in the air, not at the
//!   antenna.)
//! * [`EnergyReportAudit`] — nodes periodically report residual energy; a
//!   node that was "charged" but reports no gain is flagged. This is the only
//!   auditor that can see spoofing — *if the victim survives to its next
//!   report*. CSA's time windows schedule each masquerade so late that the
//!   victim dies first; the window-oblivious
//!   [`crate::attack::EagerSpoofPolicy`] gets caught here (experiment `fig8`).

use serde::{Deserialize, Serialize};

use wrsn_net::NodeId;
use wrsn_sim::{SimEvent, World};

/// One detector alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// The node the alarm concerns.
    pub node: NodeId,
    /// When the alarm fires, seconds.
    pub time_s: f64,
    /// Human-readable cause.
    pub detail: String,
}

/// All alarms one detector raised over a run.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    /// The detector's name.
    pub detector: String,
    /// Alarms in time order.
    pub alarms: Vec<Alarm>,
    /// Flagged-node index, built lazily on first membership query so ratio
    /// loops over large victim lists stay O(alarms + nodes) instead of
    /// O(alarms × nodes). Never serialized, never compared.
    by_node: std::sync::OnceLock<std::collections::HashSet<NodeId>>,
}

impl PartialEq for DetectionReport {
    fn eq(&self, other: &Self) -> bool {
        self.detector == other.detector && self.alarms == other.alarms
    }
}

// The lazy index never enters the wire shape: a report serializes exactly as
// the plain `{detector, alarms}` record it always was.
impl Serialize for DetectionReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("detector".to_string(), self.detector.to_value()),
            ("alarms".to_string(), self.alarms.to_value()),
        ])
    }
}

impl Deserialize for DetectionReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "DetectionReport"))?;
        Ok(DetectionReport::new(
            String::from_value(serde::map_get(entries, "detector")?)?,
            Vec::from_value(serde::map_get(entries, "alarms")?)?,
        ))
    }
}

impl DetectionReport {
    /// A report over `alarms` from the named detector.
    pub fn new(detector: impl Into<String>, alarms: Vec<Alarm>) -> Self {
        DetectionReport {
            detector: detector.into(),
            alarms,
            by_node: std::sync::OnceLock::new(),
        }
    }

    /// Number of alarms.
    pub fn alarm_count(&self) -> usize {
        self.alarms.len()
    }

    /// The set of nodes with at least one alarm (indexed once per report).
    pub fn flagged_nodes(&self) -> &std::collections::HashSet<NodeId> {
        self.by_node
            .get_or_init(|| self.alarms.iter().map(|a| a.node).collect())
    }

    /// Whether `node` was flagged at all.
    pub fn flagged(&self, node: NodeId) -> bool {
        self.flagged_nodes().contains(&node)
    }

    /// Fraction of `nodes` that were flagged, or `None` for an empty list —
    /// there is no meaningful ratio over zero victims, and the old `1.0`
    /// convention silently inflated aggregate detection stats in sweep cells
    /// that produced no victims.
    pub fn detection_ratio(&self, nodes: &[NodeId]) -> Option<f64> {
        if nodes.is_empty() {
            return None;
        }
        let flagged = self.flagged_nodes();
        Some(nodes.iter().filter(|n| flagged.contains(n)).count() as f64 / nodes.len() as f64)
    }
}

/// A base-station-side auditor over a finished run.
pub trait Detector {
    /// The detector's name.
    fn name(&self) -> &str;

    /// Analyses the run and returns all alarms.
    fn analyze(&self, world: &World) -> DetectionReport;
}

/// Flags charging requests that no session answered in time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryAudit {
    /// Maximum tolerated delay between a request and the session serving it,
    /// seconds.
    pub max_response_s: f64,
}

impl Default for TrajectoryAudit {
    fn default() -> Self {
        TrajectoryAudit {
            // A week. The deadline must be calibrated to *honest* service
            // latency, and a single saturated charger routinely takes days to
            // reach a queued requester — any deadline tight enough to catch
            // "suspiciously late" visits also floods the operator with false
            // positives on honest rounds (experiment `fig8` sweeps this).
            max_response_s: 604_800.0,
        }
    }
}

impl Detector for TrajectoryAudit {
    fn name(&self) -> &str {
        "trajectory-audit"
    }

    fn analyze(&self, world: &World) -> DetectionReport {
        let trace = world.trace();
        let mut alarms = Vec::new();
        for &(t, ref event) in trace.events() {
            let SimEvent::RequestIssued { node } = *event else {
                continue;
            };
            let deadline = t + self.max_response_s;
            if deadline > world.time_s() {
                continue; // run ended before the verdict is due
            }
            let served = trace
                .sessions_for(node)
                .any(|s| s.start_s >= t - 1e-9 && s.start_s <= deadline);
            if served {
                continue;
            }
            // If the node died before the deadline, the unanswered request is
            // itself damning — the charger let a requester die.
            alarms.push(Alarm {
                node,
                time_s: trace.death_time_of(node).unwrap_or(deadline).min(deadline),
                detail: format!("request at {t:.0} s never served"),
            });
        }
        DetectionReport::new(self.name(), alarms)
    }
}

/// Flags sessions whose measured RF power is implausibly low for a charger
/// that claims to be charging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiatedPowerAudit {
    /// Minimum plausible radiated power during a session, watts.
    pub min_radiated_w: f64,
}

impl Default for RadiatedPowerAudit {
    fn default() -> Self {
        RadiatedPowerAudit {
            min_radiated_w: 0.5 * wrsn_em::constants::DEFAULT_TX_POWER_W,
        }
    }
}

impl Detector for RadiatedPowerAudit {
    fn name(&self) -> &str {
        "radiated-power-audit"
    }

    fn analyze(&self, world: &World) -> DetectionReport {
        let mut alarms = Vec::new();
        for s in world.trace().sessions() {
            if s.duration_s <= 0.0 {
                continue;
            }
            let radiated_w = s.radiated_j / s.duration_s;
            if radiated_w < self.min_radiated_w {
                alarms.push(Alarm {
                    node: s.node,
                    time_s: s.start_s + s.duration_s,
                    detail: format!("session radiated only {radiated_w:.3} W"),
                });
            }
        }
        DetectionReport::new(self.name(), alarms)
    }
}

/// Flags nodes whose periodic energy report contradicts a recent "charge".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReportAudit {
    /// Period of node energy reports, seconds.
    pub report_interval_s: f64,
    /// DC power the base station believes a session delivers, watts.
    pub rated_power_w: f64,
    /// Minimum delivered/expected ratio a session must show at the next
    /// report, below which the node is flagged.
    pub efficiency_threshold: f64,
}

impl Default for EnergyReportAudit {
    fn default() -> Self {
        EnergyReportAudit {
            report_interval_s: 1_800.0, // half-hourly reports
            rated_power_w: wrsn_em::ChargeModel::powercast()
                .power_at(wrsn_sim::charger::DEFAULT_SERVICE_DISTANCE_M),
            efficiency_threshold: 0.5,
        }
    }
}

impl EnergyReportAudit {
    /// The first report instant strictly after `t`.
    fn next_report_after(&self, t: f64) -> f64 {
        (t / self.report_interval_s).floor() * self.report_interval_s + self.report_interval_s
    }
}

impl Detector for EnergyReportAudit {
    fn name(&self) -> &str {
        "energy-report-audit"
    }

    fn analyze(&self, world: &World) -> DetectionReport {
        let trace = world.trace();
        let mut alarms = Vec::new();
        for s in trace.sessions() {
            if s.duration_s <= 0.0 {
                continue;
            }
            let expected = self.rated_power_w * s.duration_s;
            if expected <= 0.0 || s.delivered_j / expected >= self.efficiency_threshold {
                continue;
            }
            // The discrepancy only surfaces at the victim's next report — if
            // it lives that long.
            let report_at = self.next_report_after(s.start_s + s.duration_s);
            if report_at > world.time_s() {
                continue; // run ended before the report
            }
            let died_before_report = trace
                .death_time_of(s.node)
                .map(|d| d <= report_at)
                .unwrap_or(false);
            if died_before_report {
                continue; // dead nodes file no reports — CSA's escape hatch
            }
            alarms.push(Alarm {
                node: s.node,
                time_s: report_at,
                detail: format!(
                    "charged {:.0} s but gained {:.1} J (expected {:.1} J)",
                    s.duration_s, s.delivered_j, expected
                ),
            });
        }
        DetectionReport::new(self.name(), alarms)
    }
}

/// Post-mortem forensics: flag nodes that died *shortly after being
/// "charged"* — the countermeasure CSA cannot dodge.
///
/// CSA's whole stealth strategy is that its victims die before contradicting
/// the fake charge. That leaves a tombstone pattern no live-report audit
/// sees: a node was served, then died within hours. An operator replaying
/// logs after losing connectivity *will* see it — but only **after** the key
/// nodes are gone (the attack has already succeeded for those victims), and
/// only at a false-positive cost: under a saturated honest charger, nodes
/// legitimately die soon after a partial top-up too. Experiment `fig11`
/// quantifies both sides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PostMortemAudit {
    /// A death within this long after the end of the node's last session is
    /// flagged, seconds.
    pub grace_period_s: f64,
}

impl Default for PostMortemAudit {
    fn default() -> Self {
        PostMortemAudit {
            grace_period_s: 6.0 * 3600.0,
        }
    }
}

impl Detector for PostMortemAudit {
    fn name(&self) -> &str {
        "post-mortem-audit"
    }

    fn analyze(&self, world: &World) -> DetectionReport {
        let trace = world.trace();
        let mut alarms = Vec::new();
        for &(node, death_s) in trace.death_times() {
            let last_session_end = trace
                .sessions_for(node)
                .map(|s| s.start_s + s.duration_s)
                .fold(f64::NEG_INFINITY, f64::max);
            if !last_session_end.is_finite() {
                continue; // never served; starvation, not spoofing
            }
            if death_s - last_session_end <= self.grace_period_s {
                alarms.push(Alarm {
                    node,
                    time_s: death_s,
                    detail: format!(
                        "died {:.0} s after its last charge ended",
                        death_s - last_session_end
                    ),
                });
            }
        }
        DetectionReport::new(self.name(), alarms)
    }
}

/// Service-fairness audit: flag nodes that died waiting for service far
/// longer than the population norm.
///
/// This is what catches the *selective neglect* attacker
/// ([`crate::attack::SelectiveNeglectPolicy`]) — a charger that simply never
/// comes for its victims leaves a targeted-starvation pattern: the victim's
/// request aged many times longer than the median served request before it
/// died. CSA slips through precisely because it *does* serve its victims
/// (with cancelled waves); that is the point of building spoofing hardware
/// at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessAudit {
    /// Flag a node that died with a request older than this multiple of the
    /// median served-request latency.
    pub latency_factor: f64,
}

impl Default for FairnessAudit {
    fn default() -> Self {
        FairnessAudit {
            latency_factor: 5.0,
        }
    }
}

impl Detector for FairnessAudit {
    fn name(&self) -> &str {
        "fairness-audit"
    }

    fn analyze(&self, world: &World) -> DetectionReport {
        let trace = world.trace();
        // Latency of every served request.
        let mut served_latencies = Vec::new();
        let mut pending: Vec<(NodeId, f64)> = Vec::new(); // (node, request time)
        for &(t, ref event) in trace.events() {
            let SimEvent::RequestIssued { node } = *event else {
                continue;
            };
            match trace
                .sessions_for(node)
                .filter(|s| s.start_s >= t - 1e-9)
                .map(|s| s.start_s - t)
                .fold(None::<f64>, |acc, l| Some(acc.map_or(l, |a| a.min(l))))
            {
                Some(latency) => served_latencies.push(latency),
                None => pending.push((node, t)),
            }
        }
        if served_latencies.is_empty() {
            // No service at all → absence, not *selective* neglect; the
            // trajectory audit owns that case.
            return DetectionReport::new(self.name(), Vec::new());
        }
        served_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = served_latencies[served_latencies.len() / 2];
        let mut alarms = Vec::new();
        for (node, t) in pending {
            let Some(death) = trace.death_time_of(node) else {
                continue; // still waiting, not yet damning
            };
            if death - t > self.latency_factor * median.max(1.0) {
                alarms.push(Alarm {
                    node,
                    time_s: death,
                    detail: format!(
                        "died after waiting {:.0} s for service (median latency {:.0} s)",
                        death - t,
                        median
                    ),
                });
            }
        }
        DetectionReport::new(self.name(), alarms)
    }
}

/// Adapter that lifts the **online** base-station audit
/// ([`wrsn_sim::audit`]) into the post-hoc [`Detector`] suite: its alarms
/// are the convictions the world's attached digital twin already issued
/// *during* the run — challenge-response probes of just-served nodes, scored
/// against the honest charge model, convicted by a k-of-m failure rule.
///
/// Unlike the trace detectors above, this one performs no analysis of its
/// own: the evidence was gathered live (and probe cost paid live). A world
/// without an attached audit ([`wrsn_sim::World::with_audit`]) yields an
/// empty report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TwinAudit;

impl Detector for TwinAudit {
    fn name(&self) -> &str {
        "twin-audit"
    }

    fn analyze(&self, world: &World) -> DetectionReport {
        let alarms = world
            .audit()
            .map(|audit| {
                audit
                    .convictions()
                    .iter()
                    .map(|c| Alarm {
                        node: c.node,
                        time_s: c.time_s,
                        detail: c.detail.clone(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        DetectionReport::new(self.name(), alarms)
    }
}

/// The full standard suite with default thresholds. The post-mortem audit is
/// *not* part of it: it is the forensic countermeasure evaluated separately
/// (`fig11`) because its alarms arrive only after the victim is gone.
pub fn standard_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(TrajectoryAudit::default()),
        Box::new(RadiatedPowerAudit::default()),
        Box::new(EnergyReportAudit::default()),
    ]
}

/// Runs the whole suite and returns, per detector, whether *any* of `victims`
/// was flagged before its own death (an alarm after the victim is already
/// exhausted comes too late to save it, but still reveals the attack — both
/// views are reported).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteVerdict {
    /// Per-detector reports.
    pub reports: Vec<DetectionReport>,
}

impl SuiteVerdict {
    /// Fraction of `victims` flagged by any detector, or `None` for an empty
    /// victim list (same convention as [`DetectionReport::detection_ratio`]).
    pub fn overall_detection_ratio(&self, victims: &[NodeId]) -> Option<f64> {
        if victims.is_empty() {
            return None;
        }
        Some(
            victims
                .iter()
                .filter(|&&v| self.reports.iter().any(|r| r.flagged(v)))
                .count() as f64
                / victims.len() as f64,
        )
    }

    /// Total alarms across the suite.
    pub fn total_alarms(&self) -> usize {
        self.reports.iter().map(DetectionReport::alarm_count).sum()
    }
}

/// Analyses `world` with [`standard_detectors`].
pub fn run_suite(world: &World) -> SuiteVerdict {
    SuiteVerdict {
        reports: standard_detectors()
            .iter()
            .map(|d| d.analyze(world))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{run_attack, EagerSpoofPolicy};
    use crate::tide::TideConfig;
    use wrsn_net::energy::Battery;
    use wrsn_net::node::SensorNode;
    use wrsn_net::{deploy, Network, Point};
    use wrsn_sim::{IdlePolicy, MobileCharger, World, WorldConfig};

    fn attack_world(horizon: f64) -> World {
        let (_, nodes) = deploy::corridor(10, 4, 3);
        let nodes: Vec<SensorNode> = nodes
            .into_iter()
            .map(|n| SensorNode::with_battery(n.position(), Battery::new(400.0, 80.0)))
            .collect();
        let net = Network::build(nodes, Point::new(10.0, 50.0), 30.0);
        let charger = MobileCharger::standard(Point::new(10.0, 50.0));
        let mut world = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: horizon,
                ..WorldConfig::default()
            },
        );
        // Staggered levels: depletion deadlines (and stealth windows) spread
        // out, as in a long-running network.
        let n = world.network().node_count();
        for i in 0..n {
            let level = 120.0 + 10.0 * ((i * 7) % n) as f64;
            world.set_battery_level(NodeId(i), level).unwrap();
        }
        world
    }

    #[test]
    fn absent_charger_trips_trajectory_audit() {
        let mut world = attack_world(400_000.0);
        world.run(&mut IdlePolicy).expect("run");
        // Use a deadline short enough to be judged within this horizon.
        let report = TrajectoryAudit {
            max_response_s: 100_000.0,
        }
        .analyze(&world);
        assert!(report.alarm_count() > 0, "DoS by absence must be visible");
    }

    #[test]
    fn csa_passes_trajectory_and_rf_audits() {
        let mut world = attack_world(400_000.0);
        let (_, outcome) = run_attack(&mut world, TideConfig::default()).expect("attack run");
        assert!(outcome.exhausted > 0);
        let victims: Vec<NodeId> = world.trace().sessions().iter().map(|s| s.node).collect();
        let rf = RadiatedPowerAudit::default().analyze(&world);
        assert_eq!(rf.detection_ratio(&victims), Some(0.0), "{rf:?}");
        // CSA answers requests of the nodes it targets within the audit's
        // (necessarily lax — benign chargers queue too) response deadline;
        // it must not flag any *served* victim.
        let traj = TrajectoryAudit::default().analyze(&world);
        for v in &victims {
            assert!(!traj.flagged(*v), "served victim {v} flagged: {traj:?}");
        }
    }

    #[test]
    fn csa_evades_energy_report_audit_but_eager_spoof_does_not() {
        // CSA: spoofs inside the window → victims die before reporting.
        let mut csa_world = attack_world(400_000.0);
        let (_, outcome) = run_attack(&mut csa_world, TideConfig::default()).expect("attack run");
        assert!(outcome.exhausted > 0);
        let csa_victims: Vec<NodeId> = csa_world
            .trace()
            .sessions()
            .iter()
            .map(|s| s.node)
            .collect();
        let audit = EnergyReportAudit::default();
        let csa_ratio = audit
            .analyze(&csa_world)
            .detection_ratio(&csa_victims)
            .expect("victims nonempty");

        // Eager spoof: fakes the charge immediately at the warning threshold;
        // the victim has ~20% battery left and survives many report periods.
        let mut eager_world = attack_world(400_000.0);
        eager_world
            .run(&mut EagerSpoofPolicy::new(3_000.0))
            .expect("run");
        let eager_victims: Vec<NodeId> = eager_world
            .trace()
            .sessions()
            .iter()
            .map(|s| s.node)
            .collect();
        assert!(!eager_victims.is_empty());
        let eager_ratio = audit
            .analyze(&eager_world)
            .detection_ratio(&eager_victims)
            .expect("victims nonempty");

        assert!(
            csa_ratio < 0.2,
            "CSA should evade the energy audit, ratio {csa_ratio}"
        );
        assert!(
            eager_ratio > 0.6,
            "eager spoofing should be caught, ratio {eager_ratio}"
        );
    }

    #[test]
    fn honest_charging_raises_no_energy_alarms() {
        let mut world = attack_world(400_000.0);
        world.run(&mut wrsn_charge::Njnp::new()).expect("run");
        let served: Vec<NodeId> = world.trace().sessions().iter().map(|s| s.node).collect();
        assert!(!served.is_empty(), "premise: NJNP served someone");
        let audit = EnergyReportAudit::default().analyze(&world);
        assert_eq!(
            audit.detection_ratio(&served),
            Some(0.0),
            "false positives on honest charging: {audit:?}"
        );
    }

    #[test]
    fn twin_audit_convicts_naive_csa_online() {
        let mut world = attack_world(400_000.0).with_audit(wrsn_sim::AuditConfig::default());
        let (_, outcome) = run_attack(&mut world, TideConfig::default()).expect("attack run");
        assert!(outcome.exhausted > 0);
        let report = TwinAudit.analyze(&world);
        assert!(
            report.alarm_count() > 0,
            "probed spoof sessions must convict: {:?}",
            world.audit().map(|a| a.probes())
        );
        // Convictions fired during the run, not at the horizon.
        let first = world.audit().unwrap().first_conviction_s().unwrap();
        assert!(first < world.time_s());
    }

    #[test]
    fn twin_audit_raises_nothing_on_honest_charging() {
        let mut world = attack_world(400_000.0).with_audit(wrsn_sim::AuditConfig::default());
        world.run(&mut wrsn_charge::Njnp::new()).expect("run");
        assert!(
            !world.audit().unwrap().probes().is_empty(),
            "premise: honest sessions were probed"
        );
        let report = TwinAudit.analyze(&world);
        assert_eq!(report.alarm_count(), 0, "false positives: {report:?}");
    }

    #[test]
    fn stealth_csa_evades_the_twin_at_real_energy_cost() {
        use crate::attack::{evaluate_attack, CsaAttackPolicy};
        // Stealth fraction above the default tolerance (0.25): every probed
        // partial-power session passes.
        let mut world = attack_world(400_000.0).with_audit(wrsn_sim::AuditConfig::default());
        let mut policy = CsaAttackPolicy::new(TideConfig::default()).with_stealth(0.35);
        world.run(&mut policy).expect("run");
        let outcome = evaluate_attack(&world, &policy);
        assert!(
            !policy.targets().is_empty(),
            "premise: masquerades happened"
        );
        let report = TwinAudit.analyze(&world);
        assert_eq!(report.alarm_count(), 0, "stealth convicted: {report:?}");
        // The price of stealth: partial-power masquerades deliver real
        // energy to their victims.
        let delivered: f64 = world
            .trace()
            .sessions()
            .iter()
            .filter(|s| s.mode.is_attack())
            .map(|s| s.delivered_j)
            .sum();
        assert!(delivered > 0.0, "stealth spoofs must leak real energy");
        let _ = outcome;
    }

    #[test]
    fn twin_audit_is_empty_without_an_attached_audit() {
        let mut world = attack_world(300_000.0);
        world.run(&mut IdlePolicy).expect("run");
        assert_eq!(TwinAudit.analyze(&world).alarm_count(), 0);
    }

    #[test]
    fn suite_verdict_aggregates() {
        let mut world = attack_world(300_000.0);
        world.run(&mut IdlePolicy).expect("run");
        let verdict = SuiteVerdict {
            reports: vec![
                TrajectoryAudit {
                    max_response_s: 100_000.0,
                }
                .analyze(&world),
                RadiatedPowerAudit::default().analyze(&world),
                EnergyReportAudit::default().analyze(&world),
            ],
        };
        assert_eq!(verdict.reports.len(), 3);
        assert!(verdict.total_alarms() > 0);
        let all: Vec<NodeId> = world.network().ids().collect();
        assert!(
            verdict
                .overall_detection_ratio(&all)
                .expect("nodes nonempty")
                > 0.0
        );
        // The standard suite exists and runs, too.
        assert_eq!(run_suite(&world).reports.len(), 3);
    }

    #[test]
    fn post_mortem_audit_catches_csa_after_the_fact() {
        let mut world = attack_world(400_000.0);
        let (_, outcome) = run_attack(&mut world, TideConfig::default()).expect("attack run");
        assert!(outcome.exhausted > 0);
        let victims: Vec<NodeId> = world
            .trace()
            .sessions()
            .iter()
            .filter(|s| s.mode == wrsn_sim::ChargeMode::Spoofed)
            .map(|s| s.node)
            .collect();
        let report = PostMortemAudit::default().analyze(&world);
        // The forensic audit sees (nearly) every spoofed victim — each died
        // during or right after its "charge".
        let ratio = report.detection_ratio(&victims).expect("victims nonempty");
        assert!(ratio > 0.9, "post-mortem ratio {ratio} ({report:?})");
        // ... but every alarm fires at the victim's death — too late for it.
        for alarm in &report.alarms {
            let death = world.trace().death_time_of(alarm.node).unwrap();
            assert!((alarm.time_s - death).abs() < 1e-6);
        }
    }

    #[test]
    fn post_mortem_audit_ignores_pure_starvation() {
        let mut world = attack_world(400_000.0);
        world.run(&mut IdlePolicy).expect("run");
        // Nodes died, but none was ever "charged": zero alarms.
        assert!(!world.trace().death_times().is_empty());
        let report = PostMortemAudit::default().analyze(&world);
        assert_eq!(report.alarm_count(), 0, "{report:?}");
    }

    #[test]
    fn fairness_audit_catches_selective_neglect_but_not_csa() {
        use crate::attack::SelectiveNeglectPolicy;

        let mut neglect_world = attack_world(400_000.0);
        let mut neglect = SelectiveNeglectPolicy::new();
        neglect_world.run(&mut neglect).expect("run");
        let neglect_victims = neglect.census();
        assert!(!neglect_victims.is_empty());
        let neglect_ratio = FairnessAudit::default()
            .analyze(&neglect_world)
            .detection_ratio(&neglect_victims)
            .expect("victims nonempty");

        let mut csa_world = attack_world(400_000.0);
        let (_, outcome) = run_attack(&mut csa_world, TideConfig::default()).expect("attack run");
        assert!(outcome.exhausted > 0);
        let csa_victims: Vec<NodeId> = csa_world
            .trace()
            .sessions()
            .iter()
            .filter(|s| s.mode == wrsn_sim::ChargeMode::Spoofed)
            .map(|s| s.node)
            .collect();
        let csa_ratio = FairnessAudit::default()
            .analyze(&csa_world)
            .detection_ratio(&csa_victims)
            .expect("victims nonempty");

        assert!(
            neglect_ratio > 0.6,
            "neglect should be caught: {neglect_ratio}"
        );
        assert!(csa_ratio < 0.1, "CSA should pass fairness: {csa_ratio}");
    }

    #[test]
    fn selective_neglect_starves_its_census() {
        use crate::attack::SelectiveNeglectPolicy;
        let mut world = attack_world(400_000.0);
        let mut policy = SelectiveNeglectPolicy::new();
        world.run(&mut policy).expect("run");
        let census = policy.census();
        assert!(!census.is_empty());
        let dead = census
            .iter()
            .filter(|n| !world.network().alive(n.0))
            .count();
        assert!(
            dead as f64 >= 0.8 * census.len() as f64,
            "neglect killed only {dead}/{}",
            census.len()
        );
        // And it never served them.
        for v in &census {
            assert_eq!(world.trace().sessions_for(*v).count(), 0);
        }
    }

    #[test]
    fn fairness_audit_is_silent_without_any_service() {
        let mut world = attack_world(300_000.0);
        world.run(&mut IdlePolicy).expect("run");
        let report = FairnessAudit::default().analyze(&world);
        assert_eq!(
            report.alarm_count(),
            0,
            "absence is the trajectory audit's case"
        );
    }

    #[test]
    fn report_interval_math() {
        let a = EnergyReportAudit {
            report_interval_s: 100.0,
            ..EnergyReportAudit::default()
        };
        assert_eq!(a.next_report_after(0.0), 100.0);
        assert_eq!(a.next_report_after(99.0), 100.0);
        assert_eq!(a.next_report_after(100.0), 200.0);
    }
}
