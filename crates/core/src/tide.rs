//! The TIDE problem: charging uTility optImization with key noDe timE window
//! constraints.
//!
//! Given the network's key nodes, their battery states and drain rates, the
//! attacker derives for each potential victim a **time window** in which a
//! spoofed charging visit is both *plausible* (the node has requested
//! charging, so a visit looks legitimate) and *lethal* (the full-length
//! masquerade completes before the node would die — a node dying mid-"charge"
//! is an instant giveaway). TIDE asks for the visit schedule that maximises
//! total victim weight subject to these windows, the charger's travel speed
//! and its energy budget. It generalises orienteering with time windows and is
//! NP-hard; [`crate::csa`] approximates it, [`crate::exact`] solves small
//! instances.

use serde::{Deserialize, Serialize};

use wrsn_net::energy::RadioEnergyModel;
use wrsn_net::keynode::{self, KeyNodeConfig};
use wrsn_net::{Network, NodeId, Point};
use wrsn_sim::World;

use crate::error::CoreError;
use crate::schedule::AttackSchedule;

/// The interval of admissible *begin* times for a victim's spoofed visit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Earliest admissible begin (the node's charging request), seconds.
    pub open_s: f64,
    /// Latest admissible begin (so the masquerade finishes before the node
    /// dies), seconds.
    pub close_s: f64,
}

impl TimeWindow {
    /// Whether `t` lies inside the window.
    pub fn contains(&self, t: f64) -> bool {
        (self.open_s..=self.close_s).contains(&t)
    }

    /// Window length, seconds.
    pub fn length_s(&self) -> f64 {
        self.close_s - self.open_s
    }
}

/// One attackable key node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Victim {
    /// The key node's id in the network.
    pub node: NodeId,
    /// Its position.
    pub position: Point,
    /// Attack utility of exhausting it (the key-node criticality weight).
    pub weight: f64,
    /// Admissible begin-time window.
    pub window: TimeWindow,
    /// Duration a legitimate refill would take — the masquerade must run this
    /// long to look real, seconds.
    pub service_s: f64,
    /// Predicted depletion time if the node receives no energy, seconds.
    pub death_s: f64,
}

/// Parameters for deriving a [`TideInstance`] from a network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TideConfig {
    /// Key-node identification settings.
    pub keynode: KeyNodeConfig,
    /// Radio model used to predict node drain.
    pub radio: RadioEnergyModel,
    /// DC power a legitimate charger would deliver at service distance, watts
    /// (used to size the masquerade duration).
    pub charge_power_w: f64,
    /// RF power the attacker radiates during a spoofed session, watts.
    pub radiated_power_w: f64,
    /// Current time (all windows are absolute), seconds.
    pub now_s: f64,
    /// Period of the nodes' residual-energy reports, seconds. With
    /// `stealth_windows` on, each victim's window opens late enough that the
    /// masquerade ends after the victim's *last report before death* — so the
    /// spoof is never contradicted by a report.
    pub report_interval_s: f64,
    /// Tighten windows for stealth (ablation switch; see
    /// `report_interval_s`).
    pub stealth_windows: bool,
    /// Minimum plausible masquerade length, seconds. Since the attacker
    /// squats until the victim dies anyway, a *visit* only needs to look like
    /// a legitimate partial top-up (on-demand chargers slice their service);
    /// shorter masquerades mean narrower occupancy per victim and far more
    /// victims per campaign. Capped at the full-refill duration.
    pub min_masquerade_s: f64,
    /// Charger start position.
    pub start: Point,
    /// Charger speed, m/s.
    pub speed_mps: f64,
    /// Charger energy budget, joules.
    pub budget_j: f64,
    /// Locomotion cost, J/m.
    pub move_cost_j_per_m: f64,
}

impl Default for TideConfig {
    fn default() -> Self {
        let model = wrsn_em::ChargeModel::powercast();
        TideConfig {
            keynode: KeyNodeConfig::default(),
            radio: RadioEnergyModel::classical(),
            charge_power_w: model.power_at(wrsn_sim::charger::DEFAULT_SERVICE_DISTANCE_M),
            // Primary plus matched helper antenna.
            radiated_power_w: 2.0 * wrsn_em::constants::DEFAULT_TX_POWER_W,
            now_s: 0.0,
            start: Point::ORIGIN,
            speed_mps: wrsn_sim::charger::DEFAULT_MC_SPEED_MPS,
            budget_j: wrsn_sim::charger::DEFAULT_MC_ENERGY_J,
            move_cost_j_per_m: wrsn_sim::charger::DEFAULT_MOVE_COST_J_PER_M,
            report_interval_s: 1_800.0,
            stealth_windows: true,
            min_masquerade_s: 900.0,
        }
    }
}

/// A concrete TIDE instance: victims plus charger resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TideInstance {
    /// The attackable victims, sorted by descending weight.
    pub victims: Vec<Victim>,
    /// Charger start position.
    pub start: Point,
    /// Charger speed, m/s.
    pub speed_mps: f64,
    /// Charger energy budget, joules.
    pub budget_j: f64,
    /// Locomotion cost, J/m.
    pub move_cost_j_per_m: f64,
    /// RF power radiated while spoofing, watts.
    pub radiated_power_w: f64,
    /// The instance's reference time, seconds.
    pub now_s: f64,
}

impl TideInstance {
    /// Derives the instance from a network snapshot.
    ///
    /// Key nodes are identified with `config.keynode`; for each, the drain
    /// rate predicts the request time (window open), the depletion time, and
    /// the legitimate-refill duration (masquerade length). Victims whose
    /// masquerade cannot complete before death, or that are not draining, are
    /// excluded.
    pub fn from_network(net: &Network, config: &TideConfig) -> Self {
        TideInstance::from_network_excluding(net, config, &std::collections::HashSet::new())
    }

    /// [`TideInstance::from_network`] with some nodes excluded from the victim
    /// set (used by the adaptive attack to avoid re-targeting nodes it
    /// already spoofed).
    pub fn from_network_excluding(
        net: &Network,
        config: &TideConfig,
        excluded: &std::collections::HashSet<NodeId>,
    ) -> Self {
        let mask = net.alive_mask();
        let keys: Vec<(NodeId, f64)> = keynode::identify_with_mask(net, &mask, &config.keynode)
            .into_iter()
            .filter(|k| !excluded.contains(&k.id))
            .map(|k| (k.id, k.weight))
            .collect();
        TideInstance::for_targets(net, config, &keys)
    }

    /// Derives an instance for an *explicit* victim list with the given
    /// weights, computing fresh windows from the network's current state.
    ///
    /// This is what the adaptive attack replans with: the key-node census is
    /// fixed at campaign start (killing a cut vertex demotes its neighbours
    /// in the degraded graph, but they are still the *operator's* key nodes),
    /// while drains, request times and depletion deadlines are re-predicted
    /// from live battery state. Dead or drainless targets are skipped.
    pub fn for_targets(net: &Network, config: &TideConfig, targets: &[(NodeId, f64)]) -> Self {
        let mask = net.alive_mask();
        // Must match the simulator's drain model (including the
        // disconnected-drain floor), or stranded key nodes look drainless and
        // vanish from the victim set.
        let power = keynode::effective_power_draw(net, &mask, &config.radio);
        TideInstance::for_targets_with_power(net, config, targets, &power)
    }

    /// [`TideInstance::for_targets`] with the per-node power draw supplied by
    /// the caller instead of recomputed. The vector must come from the same
    /// drain model the simulator uses (`keynode::effective_power_draw` under
    /// `config.radio`); a live [`crate::WorldView`] whose radio matches
    /// `config.radio` provides exactly that, saving a full shortest-path
    /// rebuild per replan.
    pub fn for_targets_with_power(
        net: &Network,
        config: &TideConfig,
        targets: &[(NodeId, f64)],
        power: &[f64],
    ) -> Self {
        let mut victims = Vec::new();
        for &(id, weight) in targets {
            let Ok(node) = net.node(id) else {
                continue;
            };
            let i = id.0;
            let p = power[i];
            if p <= 0.0 || !node.is_alive() {
                continue;
            }
            let level = node.battery().level_j();
            let warning = node.battery().warning_j();
            let t_request = config.now_s + ((level - warning).max(0.0)) / p;
            let t_death = config.now_s + level / p;
            // A real charger refills from the warning level to capacity while
            // the node keeps draining. For a node already below its warning
            // threshold, refill its actual deficit.
            let net_in = (config.charge_power_w - p).max(config.charge_power_w * 0.1);
            let full_refill_s = (node.battery().capacity_j() - warning.min(level)) / net_in;
            let service_s = full_refill_s.min(config.min_masquerade_s.max(60.0));
            let close = t_death - service_s;
            let mut open = t_request;
            if config.stealth_windows && config.report_interval_s > 0.0 {
                // The masquerade must end at or after the victim's last
                // energy report strictly before its death, so no report ever
                // contradicts the "charge".
                let r = config.report_interval_s;
                let last_report = (((t_death / r).ceil() - 1.0) * r).max(0.0);
                open = open.max(last_report - service_s);
            }
            if close < open {
                continue; // no stealthy, completable visit exists
            }
            victims.push(Victim {
                node: id,
                position: node.position(),
                weight,
                window: TimeWindow {
                    open_s: open,
                    close_s: close,
                },
                service_s,
                death_s: t_death,
            });
        }
        victims.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.node.cmp(&b.node))
        });
        TideInstance {
            victims,
            start: config.start,
            speed_mps: config.speed_mps,
            budget_j: config.budget_j,
            move_cost_j_per_m: config.move_cost_j_per_m,
            radiated_power_w: config.radiated_power_w,
            now_s: config.now_s,
        }
    }

    /// Derives the instance from a live simulation, taking the charger's
    /// actual position, speed and remaining budget.
    pub fn from_world(world: &World, config: &TideConfig) -> Self {
        let mut cfg = *config;
        cfg.start = world.charger().position();
        cfg.speed_mps = world.charger().speed_mps();
        cfg.budget_j = world.charger().energy_j();
        cfg.move_cost_j_per_m = world.charger().move_cost_j_per_m();
        cfg.now_s = world.time_s();
        TideInstance::from_network(world.network(), &cfg)
    }

    /// Number of victims.
    pub fn victim_count(&self) -> usize {
        self.victims.len()
    }

    /// Sum of all victim weights — the utility upper bound.
    pub fn total_weight(&self) -> f64 {
        self.victims.iter().map(|v| v.weight).sum()
    }

    /// Travel time between two points at charger speed, seconds.
    pub fn travel_time(&self, from: Point, to: Point) -> f64 {
        from.distance(to) / self.speed_mps
    }

    /// Energy cost of a schedule: locomotion along the route plus RF radiated
    /// during every masquerade, joules.
    pub fn energy_cost(&self, schedule: &AttackSchedule) -> f64 {
        let mut pos = self.start;
        let mut cost = 0.0;
        for stop in schedule.stops() {
            if let Some(v) = self.victims.get(stop.victim) {
                cost += pos.distance(v.position) * self.move_cost_j_per_m;
                cost += v.service_s * self.radiated_power_w;
                pos = v.position;
            }
        }
        cost
    }

    /// Total utility (weight of served victims).
    pub fn utility(&self, schedule: &AttackSchedule) -> f64 {
        schedule
            .stops()
            .iter()
            .filter_map(|s| self.victims.get(s.victim))
            .map(|v| v.weight)
            .sum()
    }

    /// Checks that `schedule` is executable: victims exist and are unique,
    /// every begin time respects travel from the previous stop, every begin
    /// lies in its victim's window, and the energy budget holds.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`CoreError`].
    pub fn validate(&self, schedule: &AttackSchedule) -> Result<(), CoreError> {
        let mut seen = vec![false; self.victims.len()];
        let mut time = self.now_s;
        let mut pos = self.start;
        for (k, stop) in schedule.stops().iter().enumerate() {
            let Some(v) = self.victims.get(stop.victim) else {
                return Err(CoreError::UnknownVictim { index: stop.victim });
            };
            if seen[stop.victim] {
                return Err(CoreError::DuplicateVictim { index: stop.victim });
            }
            seen[stop.victim] = true;
            if !stop.begin_s.is_finite() || stop.begin_s < 0.0 {
                return Err(CoreError::InvalidTime { stop: k });
            }
            let earliest = time + self.travel_time(pos, v.position);
            if stop.begin_s + 1e-6 < earliest {
                return Err(CoreError::ArrivesLate {
                    stop: k,
                    earliest_s: earliest,
                    begin_s: stop.begin_s,
                });
            }
            let in_window_with_tolerance =
                stop.begin_s >= v.window.open_s - 1e-6 && stop.begin_s <= v.window.close_s + 1e-6;
            if !in_window_with_tolerance {
                return Err(CoreError::WindowViolated { stop: k });
            }
            time = stop.begin_s + v.service_s;
            pos = v.position;
        }
        let needed = self.energy_cost(schedule);
        if needed > self.budget_j + 1e-6 {
            return Err(CoreError::BudgetExceeded {
                needed_j: needed,
                budget_j: self.budget_j,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Stop;
    use wrsn_net::deploy;

    pub(crate) fn drained_corridor() -> Network {
        let (_, nodes) = deploy::corridor(10, 4, 3);
        let mut net = Network::build(nodes, Point::new(10.0, 50.0), 30.0);
        for i in 0..net.node_count() {
            let cap = net.capacities_j()[i];
            net.energy_mut().set_level(i, cap * 0.3);
        }
        net
    }

    #[test]
    fn instance_has_victims_with_sane_windows() {
        let net = drained_corridor();
        let inst = TideInstance::from_network(&net, &TideConfig::default());
        assert!(!inst.victims.is_empty());
        for v in &inst.victims {
            assert!(v.window.open_s >= 0.0);
            assert!(v.window.close_s >= v.window.open_s);
            assert!(v.service_s > 0.0);
            assert!(v.death_s > v.window.close_s - 1e-9);
            assert!(v.weight >= 1.0);
        }
        // Victims sorted by descending weight.
        for w in inst.victims.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }

    #[test]
    fn empty_network_gives_empty_instance() {
        let net = Network::build(Vec::new(), Point::ORIGIN, 10.0);
        let inst = TideInstance::from_network(&net, &TideConfig::default());
        assert_eq!(inst.victim_count(), 0);
        assert_eq!(inst.total_weight(), 0.0);
    }

    #[test]
    fn validate_accepts_a_feasible_single_stop() {
        let net = drained_corridor();
        let inst = TideInstance::from_network(&net, &TideConfig::default());
        let v = &inst.victims[0];
        let arrive = inst.now_s + inst.travel_time(inst.start, v.position);
        let begin = arrive.max(v.window.open_s);
        assert!(begin <= v.window.close_s, "test premise: window reachable");
        let s = AttackSchedule::new(vec![Stop {
            victim: 0,
            begin_s: begin,
        }]);
        inst.validate(&s).unwrap();
        assert_eq!(inst.utility(&s), v.weight);
        assert!(inst.energy_cost(&s) > 0.0);
    }

    #[test]
    fn validate_rejects_early_arrival_violation() {
        let net = drained_corridor();
        let inst = TideInstance::from_network(&net, &TideConfig::default());
        let s = AttackSchedule::new(vec![Stop {
            victim: 0,
            begin_s: 0.0, // cannot possibly have arrived at t=0
        }]);
        let err = inst.validate(&s).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::ArrivesLate { .. } | CoreError::WindowViolated { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn validate_rejects_duplicates_and_unknown() {
        let net = drained_corridor();
        let inst = TideInstance::from_network(&net, &TideConfig::default());
        let v = &inst.victims[0];
        let begin = (inst.now_s + inst.travel_time(inst.start, v.position)).max(v.window.open_s);
        let dup = AttackSchedule::new(vec![
            Stop {
                victim: 0,
                begin_s: begin,
            },
            Stop {
                victim: 0,
                begin_s: begin + v.service_s + 10.0,
            },
        ]);
        assert!(matches!(
            inst.validate(&dup),
            Err(CoreError::DuplicateVictim { index: 0 })
        ));
        let unknown = AttackSchedule::new(vec![Stop {
            victim: 999,
            begin_s: 1.0,
        }]);
        assert!(matches!(
            inst.validate(&unknown),
            Err(CoreError::UnknownVictim { index: 999 })
        ));
    }

    #[test]
    fn validate_rejects_budget_violation() {
        let net = drained_corridor();
        let cfg = TideConfig {
            budget_j: 1.0, // absurdly small
            ..TideConfig::default()
        };
        let inst = TideInstance::from_network(&net, &cfg);
        let v = &inst.victims[0];
        let begin = (inst.now_s + inst.travel_time(inst.start, v.position)).max(v.window.open_s);
        let s = AttackSchedule::new(vec![Stop {
            victim: 0,
            begin_s: begin,
        }]);
        assert!(matches!(
            inst.validate(&s),
            Err(CoreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn fully_charged_network_yields_far_future_windows() {
        let (_, nodes) = deploy::corridor(10, 4, 3);
        let net = Network::build(nodes, Point::new(10.0, 50.0), 30.0);
        let inst = TideInstance::from_network(&net, &TideConfig::default());
        for v in &inst.victims {
            // Full batteries: requests are far in the future.
            assert!(v.window.open_s > 1000.0);
        }
    }

    #[test]
    fn window_contains_and_length() {
        let w = TimeWindow {
            open_s: 10.0,
            close_s: 20.0,
        };
        assert!(w.contains(10.0) && w.contains(20.0) && w.contains(15.0));
        assert!(!w.contains(9.9) && !w.contains(20.1));
        assert_eq!(w.length_s(), 10.0);
    }
}
