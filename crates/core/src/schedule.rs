//! Attack schedules: ordered, timed victim visits.

use serde::{Deserialize, Serialize};

use crate::tide::TideInstance;

/// One scheduled spoofed visit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stop {
    /// Index into [`TideInstance::victims`].
    pub victim: usize,
    /// Absolute begin time of the masquerade, seconds.
    pub begin_s: f64,
}

/// An ordered sequence of timed stops.
///
/// # Example
///
/// ```
/// use wrsn_core::{AttackSchedule, Stop};
///
/// let s = AttackSchedule::new(vec![Stop { victim: 0, begin_s: 100.0 }]);
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AttackSchedule {
    stops: Vec<Stop>,
}

impl AttackSchedule {
    /// Creates a schedule from stops (assumed ordered by begin time).
    pub fn new(stops: Vec<Stop>) -> Self {
        AttackSchedule { stops }
    }

    /// An empty schedule.
    pub fn empty() -> Self {
        AttackSchedule::default()
    }

    /// The stops in visit order.
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Number of stops.
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Whether there are no stops.
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    /// The victim indices in visit order.
    pub fn order(&self) -> Vec<usize> {
        self.stops.iter().map(|s| s.victim).collect()
    }

    /// End time of the whole schedule (last begin + its service), or `now` for
    /// an empty schedule.
    pub fn end_s(&self, instance: &TideInstance) -> f64 {
        self.stops
            .last()
            .and_then(|s| {
                instance
                    .victims
                    .get(s.victim)
                    .map(|v| s.begin_s + v.service_s)
            })
            .unwrap_or(instance.now_s)
    }
}

/// Builds a schedule by following `order`, keeping each victim only if it can
/// be served feasibly (travel + window + budget), skipping it otherwise.
/// Begin times are as early as possible. This is the common backbone of the
/// baseline attacks.
pub fn from_order_skipping(instance: &TideInstance, order: &[usize]) -> AttackSchedule {
    let mut stops = Vec::new();
    let mut time = instance.now_s;
    let mut pos = instance.start;
    let mut energy = 0.0;
    for &vi in order {
        let Some(v) = instance.victims.get(vi) else {
            continue;
        };
        let arrive = time + instance.travel_time(pos, v.position);
        let begin = arrive.max(v.window.open_s);
        if begin > v.window.close_s {
            continue;
        }
        let e = pos.distance(v.position) * instance.move_cost_j_per_m
            + v.service_s * instance.radiated_power_w;
        if energy + e > instance.budget_j {
            continue;
        }
        energy += e;
        stops.push(Stop {
            victim: vi,
            begin_s: begin,
        });
        time = begin + v.service_s;
        pos = v.position;
    }
    AttackSchedule::new(stops)
}

/// Recomputes earliest-feasible begin times for a fixed visit `order`;
/// returns `None` if any window would be missed (no skipping). Used by
/// insertion planners to test candidate orders.
pub fn earliest_times(instance: &TideInstance, order: &[usize]) -> Option<AttackSchedule> {
    let mut stops = Vec::with_capacity(order.len());
    let mut time = instance.now_s;
    let mut pos = instance.start;
    for &vi in order {
        let v = instance.victims.get(vi)?;
        let arrive = time + instance.travel_time(pos, v.position);
        let begin = arrive.max(v.window.open_s);
        if begin > v.window.close_s + 1e-9 {
            return None;
        }
        stops.push(Stop {
            victim: vi,
            begin_s: begin,
        });
        time = begin + v.service_s;
        pos = v.position;
    }
    Some(AttackSchedule::new(stops))
}

/// Shifts every begin time as *late* as the windows and successor arrivals
/// allow, without changing the visit order. Starting each masquerade at the
/// last feasible moment minimises the victim's residual life after the fake
/// charge — the stealth lever that keeps victims from surviving to their next
/// energy report (see `wrsn-core::detect`).
pub fn latest_start_shift(instance: &TideInstance, schedule: &AttackSchedule) -> AttackSchedule {
    let stops = schedule.stops();
    let n = stops.len();
    let mut shifted = stops.to_vec();
    // Backward pass: the last stop is capped only by its window; each earlier
    // stop must still reach its successor in time.
    for k in (0..n).rev() {
        let v = match instance.victims.get(stops[k].victim) {
            Some(v) => v,
            None => continue,
        };
        let mut latest = v.window.close_s;
        if k + 1 < n {
            if let Some(next_v) = instance.victims.get(shifted[k + 1].victim) {
                let travel = instance.travel_time(v.position, next_v.position);
                latest = latest.min(shifted[k + 1].begin_s - travel - v.service_s);
            }
        }
        // `latest` cannot be earlier than the original begin when the input
        // schedule was feasible; the `max` only guards float round-off.
        shifted[k].begin_s = latest.max(stops[k].begin_s);
    }
    AttackSchedule::new(shifted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tide::{TideInstance, TimeWindow, Victim};
    use wrsn_net::{NodeId, Point};

    /// A hand-built instance with three victims on a line.
    pub(crate) fn line_instance() -> TideInstance {
        let mk = |i: usize, x: f64, open: f64, close: f64, service: f64| Victim {
            node: NodeId(i),
            position: Point::new(x, 0.0),
            weight: 1.0 + i as f64,
            window: TimeWindow {
                open_s: open,
                close_s: close,
            },
            service_s: service,
            death_s: close + service,
        };
        TideInstance {
            victims: vec![
                mk(0, 10.0, 0.0, 1_000.0, 50.0),
                mk(1, 20.0, 0.0, 1_000.0, 50.0),
                mk(2, 30.0, 200.0, 2_000.0, 50.0),
            ],
            start: Point::ORIGIN,
            speed_mps: 1.0,
            budget_j: 1.0e9,
            move_cost_j_per_m: 1.0,
            radiated_power_w: 1.0,
            now_s: 0.0,
        }
    }

    #[test]
    fn from_order_serves_everything_when_feasible() {
        let inst = line_instance();
        let s = from_order_skipping(&inst, &[0, 1, 2]);
        assert_eq!(s.len(), 3);
        inst.validate(&s).unwrap();
        // Begin times: arrive at 10 s, serve 50 s; arrive 70; serve; arrive
        // 130 → wait to window open 200.
        let b: Vec<f64> = s.stops().iter().map(|st| st.begin_s).collect();
        assert!((b[0] - 10.0).abs() < 1e-9);
        assert!((b[1] - 70.0).abs() < 1e-9);
        assert!((b[2] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn from_order_skips_missed_windows() {
        let mut inst = line_instance();
        inst.victims[1].window.close_s = 30.0; // reachable at 70 only → skipped
        let s = from_order_skipping(&inst, &[0, 1, 2]);
        assert_eq!(s.order(), vec![0, 2]);
        inst.validate(&s).unwrap();
    }

    #[test]
    fn from_order_respects_budget() {
        let mut inst = line_instance();
        // Each stop costs ~10 J travel + 50 J radiation; two fit, three don't.
        inst.budget_j = 130.0;
        let s = from_order_skipping(&inst, &[0, 1, 2]);
        assert_eq!(s.len(), 2);
        inst.validate(&s).unwrap();
    }

    #[test]
    fn earliest_times_fails_on_missed_window() {
        let mut inst = line_instance();
        inst.victims[0].window.close_s = 5.0; // travel alone takes 10 s
        assert!(earliest_times(&inst, &[0, 1]).is_none());
        assert!(earliest_times(&inst, &[1]).is_some());
    }

    #[test]
    fn latest_shift_pushes_last_stop_to_window_close() {
        let inst = line_instance();
        let s = earliest_times(&inst, &[0, 1, 2]).unwrap();
        let shifted = latest_start_shift(&inst, &s);
        inst.validate(&shifted).unwrap();
        // Last stop can start as late as its window close.
        assert!((shifted.stops()[2].begin_s - 2_000.0).abs() < 1e-9);
        // Earlier stops may shift too, but never before their original times.
        for (orig, new) in s.stops().iter().zip(shifted.stops()) {
            assert!(new.begin_s + 1e-9 >= orig.begin_s);
        }
    }

    #[test]
    fn latest_shift_preserves_feasibility_under_tight_chaining() {
        let mut inst = line_instance();
        // Make windows tight so successors constrain predecessors.
        inst.victims[2].window.close_s = 300.0;
        let s = earliest_times(&inst, &[0, 1, 2]).unwrap();
        let shifted = latest_start_shift(&inst, &s);
        inst.validate(&shifted).unwrap();
    }

    #[test]
    fn end_time_accounts_for_service() {
        let inst = line_instance();
        let s = earliest_times(&inst, &[0]).unwrap();
        assert!((s.end_s(&inst) - 60.0).abs() < 1e-9);
        assert_eq!(AttackSchedule::empty().end_s(&inst), 0.0);
    }
}
