//! Cached pairwise geometry for the planners.
//!
//! Every TIDE planner walks routes over the same `{start} ∪ victims` point
//! set, and the seed implementations recomputed `Point::distance` (a `hypot`
//! call) in their innermost loops. [`DistanceMatrix`] computes each pairwise
//! distance once, together with the derived per-leg quantities the planners
//! actually consume: travel *time* (distance / speed) and locomotion *energy*
//! (distance × move cost), plus each victim's radiation energy
//! (service × radiated power).
//!
//! Bit-compatibility: every cached entry is produced by exactly the float
//! expression the uncached code paths used (`Point::distance` is symmetric —
//! `hypot` of negated components — so one entry serves both directions, and
//! `d / speed` / `d * cost` are single rounded operations on identical
//! inputs). Planners that switch to matrix lookups therefore produce
//! bit-identical schedules; `wrsn-core`'s golden and equivalence tests pin
//! this down for [`crate::csa`].

use wrsn_net::Point;

use crate::tide::TideInstance;

/// Pairwise distances, travel times and leg energies over `{start} ∪ victims`.
///
/// Matrix indices: [`DistanceMatrix::START`] (0) is the charger start;
/// victim `i` is [`DistanceMatrix::vid`]`(i)` = `i + 1`.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    stride: usize,
    /// Pairwise Euclidean distance, metres (row-major, `stride × stride`).
    dist_m: Vec<f64>,
    /// Pairwise travel time at charger speed, seconds.
    travel_s: Vec<f64>,
    /// Pairwise locomotion energy, joules.
    leg_cost_j: Vec<f64>,
    /// Per-victim radiation energy of one full masquerade, joules.
    svc_cost_j: Vec<f64>,
}

impl DistanceMatrix {
    /// Matrix index of the charger start position.
    pub const START: usize = 0;

    /// Matrix index of victim `vi`.
    #[inline(always)]
    pub fn vid(vi: usize) -> usize {
        vi + 1
    }

    /// Builds the matrix for an instance. O(n²) time and space.
    pub fn new(instance: &TideInstance) -> Self {
        let stride = instance.victims.len() + 1;
        let point = |a: usize| -> Point {
            if a == Self::START {
                instance.start
            } else {
                instance.victims[a - 1].position
            }
        };
        let mut dist_m = vec![0.0f64; stride * stride];
        let mut travel_s = vec![0.0f64; stride * stride];
        let mut leg_cost_j = vec![0.0f64; stride * stride];
        for a in 0..stride {
            for b in (a + 1)..stride {
                let d = point(a).distance(point(b));
                let t = d / instance.speed_mps;
                let e = d * instance.move_cost_j_per_m;
                dist_m[a * stride + b] = d;
                dist_m[b * stride + a] = d;
                travel_s[a * stride + b] = t;
                travel_s[b * stride + a] = t;
                leg_cost_j[a * stride + b] = e;
                leg_cost_j[b * stride + a] = e;
            }
        }
        let svc_cost_j = instance
            .victims
            .iter()
            .map(|v| v.service_s * instance.radiated_power_w)
            .collect();
        DistanceMatrix {
            stride,
            dist_m,
            travel_s,
            leg_cost_j,
            svc_cost_j,
        }
    }

    /// Number of victims covered.
    #[inline(always)]
    pub fn victim_count(&self) -> usize {
        self.stride - 1
    }

    /// Distance between matrix nodes `a` and `b`, metres.
    #[inline(always)]
    pub fn dist_m(&self, a: usize, b: usize) -> f64 {
        self.dist_m[a * self.stride + b]
    }

    /// Travel time between matrix nodes `a` and `b`, seconds.
    #[inline(always)]
    pub fn travel_s(&self, a: usize, b: usize) -> f64 {
        self.travel_s[a * self.stride + b]
    }

    /// Locomotion energy of the leg between `a` and `b`, joules.
    #[inline(always)]
    pub fn leg_cost_j(&self, a: usize, b: usize) -> f64 {
        self.leg_cost_j[a * self.stride + b]
    }

    /// Radiation energy of victim `vi`'s masquerade, joules.
    #[inline(always)]
    pub fn svc_cost_j(&self, vi: usize) -> f64 {
        self.svc_cost_j[vi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tide::{TimeWindow, Victim};
    use wrsn_net::NodeId;

    fn instance(n: usize) -> TideInstance {
        let victims = (0..n)
            .map(|i| Victim {
                node: NodeId(i),
                position: Point::new(13.7 * i as f64, 7.1 * (i as f64).sin()),
                weight: 1.0,
                window: TimeWindow {
                    open_s: 0.0,
                    close_s: 1e6,
                },
                service_s: 10.0 + i as f64,
                death_s: 2e6,
            })
            .collect();
        TideInstance {
            victims,
            start: Point::new(-3.0, 4.0),
            speed_mps: 5.0,
            budget_j: 1e9,
            move_cost_j_per_m: 1.3,
            radiated_power_w: 2.7,
            now_s: 0.0,
        }
    }

    #[test]
    fn entries_match_the_uncached_expressions_bitwise() {
        let inst = instance(7);
        let m = DistanceMatrix::new(&inst);
        for i in 0..7 {
            let vi = DistanceMatrix::vid(i);
            let d = inst.start.distance(inst.victims[i].position);
            assert_eq!(m.dist_m(DistanceMatrix::START, vi).to_bits(), d.to_bits());
            assert_eq!(
                m.travel_s(vi, DistanceMatrix::START).to_bits(),
                inst.travel_time(inst.victims[i].position, inst.start)
                    .to_bits()
            );
            assert_eq!(
                m.leg_cost_j(DistanceMatrix::START, vi).to_bits(),
                (d * inst.move_cost_j_per_m).to_bits()
            );
            assert_eq!(
                m.svc_cost_j(i).to_bits(),
                (inst.victims[i].service_s * inst.radiated_power_w).to_bits()
            );
            for j in 0..7 {
                let dd = inst.victims[i].position.distance(inst.victims[j].position);
                assert_eq!(m.dist_m(vi, DistanceMatrix::vid(j)).to_bits(), dd.to_bits());
            }
        }
    }

    #[test]
    fn empty_instance_has_only_the_start() {
        let inst = instance(0);
        let m = DistanceMatrix::new(&inst);
        assert_eq!(m.victim_count(), 0);
        assert_eq!(m.dist_m(0, 0), 0.0);
    }
}
