//! Periodic TSP charging: tour every node on a 2-opt-improved cycle, topping
//! each battery up, then return to the depot and wait out the rest of the
//! period. The deterministic, observable rhythm of this scheme is exactly the
//! behaviour a spoofing attacker can imitate.

use wrsn_net::{NodeId, Point};
use wrsn_sim::obs::{Counter, NullRecorder, Recorder};
use wrsn_sim::{ChargeMode, ChargerAction, ChargerPolicy, WorldView};

use crate::refill_duration_s;
use crate::tour::plan_tour_with;

/// State of the periodic tour.
#[derive(Debug, Clone)]
enum Phase {
    /// Waiting at the depot for the next round to start.
    AtDepot { next_round_at_s: f64 },
    /// Serving the tour; `queue` holds the remaining node visits.
    Touring { queue: Vec<NodeId> },
    /// Driving home after a round.
    Returning,
}

/// The periodic-TSP charging policy.
///
/// # Example
///
/// ```
/// use wrsn_net::Point;
/// use wrsn_charge::PeriodicTsp;
///
/// let policy = PeriodicTsp::new(Point::new(0.0, 0.0), 7200.0);
/// assert_eq!(policy.period_s(), 7200.0);
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicTsp {
    depot: Point,
    period_s: f64,
    phase: Phase,
    /// Only top up nodes whose level is below this fraction of capacity.
    topup_threshold: f64,
}

impl PeriodicTsp {
    /// A periodic tour from `depot` every `period_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not finite and positive.
    pub fn new(depot: Point, period_s: f64) -> Self {
        assert!(
            period_s.is_finite() && period_s > 0.0,
            "period must be positive"
        );
        PeriodicTsp {
            depot,
            period_s,
            phase: Phase::AtDepot {
                next_round_at_s: 0.0,
            },
            topup_threshold: 0.95,
        }
    }

    /// The configured period, seconds.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    fn plan_round(&self, view: &WorldView<'_>, rec: &mut dyn Recorder) -> Vec<NodeId> {
        rec.add(Counter::TourRebuilds, 1);
        let levels = view.net.levels_j();
        let caps = view.net.capacities_j();
        let candidates: Vec<NodeId> = view
            .net
            .ids()
            .filter(|&id| view.is_alive(id) && levels[id.0] / caps[id.0] < self.topup_threshold)
            .collect();
        let points: Vec<Point> = candidates
            .iter()
            .map(|id| view.net.positions()[id.0])
            .collect();
        let (order, _) = plan_tour_with(view.charger.position(), &points, rec);
        order.into_iter().map(|i| candidates[i]).collect()
    }

    fn decide(&mut self, view: &WorldView<'_>, rec: &mut dyn Recorder) -> ChargerAction {
        if view.should_recharge(0.15) {
            return ChargerAction::Recharge;
        }
        if view.charger.is_exhausted() {
            return ChargerAction::Finish;
        }
        loop {
            match &mut self.phase {
                Phase::AtDepot { next_round_at_s } => {
                    if view.time_s < *next_round_at_s {
                        let wait = (*next_round_at_s - view.time_s).min(view.time_left_s());
                        if wait <= 0.0 {
                            return ChargerAction::Finish;
                        }
                        return ChargerAction::Wait(wait);
                    }
                    let queue = self.plan_round(view, rec);
                    self.phase = Phase::Touring { queue };
                }
                Phase::Touring { queue } => {
                    // Skip nodes that died or refilled since planning.
                    while let Some(&next) = queue.first() {
                        if view.is_alive(next) {
                            break;
                        }
                        queue.remove(0);
                    }
                    match queue.first().copied() {
                        Some(node) => {
                            queue.remove(0);
                            let dur = refill_duration_s(view, node).unwrap_or(0.0);
                            if dur <= 0.0 {
                                continue;
                            }
                            return ChargerAction::Charge {
                                node,
                                duration_s: dur,
                                mode: ChargeMode::Honest,
                            };
                        }
                        None => {
                            self.phase = Phase::Returning;
                        }
                    }
                }
                Phase::Returning => {
                    let next_round =
                        view.time_s + view.charger.travel_time_to(self.depot).max(0.0) + 1.0;
                    // Schedule the next round one full period after this
                    // round's start would have ended, approximated from now.
                    let next_round_at_s = next_round.max(view.time_s + self.period_s * 0.1);
                    self.phase = Phase::AtDepot {
                        next_round_at_s: next_round_at_s
                            .max(round_start_after(view.time_s, self.period_s)),
                    };
                    return ChargerAction::MoveTo(self.depot);
                }
            }
        }
    }
}

impl ChargerPolicy for PeriodicTsp {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        self.decide(view, &mut NullRecorder)
    }

    fn next_action_observed(
        &mut self,
        view: &WorldView<'_>,
        rec: &mut dyn Recorder,
    ) -> ChargerAction {
        self.decide(view, rec)
    }

    fn name(&self) -> &str {
        "periodic-tsp"
    }
}

/// The next multiple of `period` strictly after `now`.
fn round_start_after(now: f64, period: f64) -> f64 {
    (now / period).floor() * period + period
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_net::prelude::*;
    use wrsn_sim::prelude::*;

    #[test]
    fn round_start_math() {
        assert_eq!(round_start_after(0.0, 100.0), 100.0);
        assert_eq!(round_start_after(250.0, 100.0), 300.0);
        assert_eq!(round_start_after(299.999, 100.0), 300.0);
    }

    #[test]
    fn periodic_tour_tops_up_drained_nodes() {
        // Small 200 J batteries so a ~0.11 W charger refills each in ~15 min.
        let nodes: Vec<SensorNode> = deploy::grid(&Region::square(40.0), 2, 2, 0.0, 0)
            .into_iter()
            .map(|n| SensorNode::with_battery(n.position(), Battery::new(200.0, 40.0)))
            .collect();
        let net = Network::build(nodes, Point::new(20.0, 20.0), 30.0);
        let mut w = World::new(
            net,
            MobileCharger::standard(Point::new(20.0, 20.0)),
            WorldConfig {
                horizon_s: 20_000.0,
                ..WorldConfig::default()
            },
        );
        for i in 0..4 {
            w.set_battery_level(NodeId(i), 100.0).unwrap();
        }
        let report = w
            .run(&mut PeriodicTsp::new(Point::new(20.0, 20.0), 10_000.0))
            .expect("run");
        assert!(report.sessions >= 4, "sessions = {}", report.sessions);
        for i in 0..4 {
            assert!(
                w.network().levels_j()[i] / w.network().capacities_j()[i] > 0.5,
                "node {i} not topped up"
            );
        }
    }

    #[test]
    fn periodic_policy_is_deterministic() {
        let build = || {
            let nodes = deploy::uniform(&Region::square(50.0), 8, 4);
            let net = Network::build(nodes, Point::new(25.0, 25.0), 25.0);
            let mut w = World::new(
                net,
                MobileCharger::standard(Point::new(25.0, 25.0)),
                WorldConfig {
                    horizon_s: 30_000.0,
                    ..WorldConfig::default()
                },
            );
            let cap = w.network().capacities_j()[0];
            for i in 0..8 {
                w.set_battery_level(NodeId(i), cap * 0.4).unwrap();
            }
            w
        };
        let mut w1 = build();
        let mut w2 = build();
        let r1 = w1
            .run(&mut PeriodicTsp::new(Point::new(25.0, 25.0), 8_000.0))
            .expect("run");
        let r2 = w2
            .run(&mut PeriodicTsp::new(Point::new(25.0, 25.0), 8_000.0))
            .expect("run");
        assert_eq!(r1.sessions, r2.sessions);
        assert_eq!(r1.total_delivered_j, r2.total_delivered_j);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = PeriodicTsp::new(Point::ORIGIN, 0.0);
    }
}
