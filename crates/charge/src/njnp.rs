//! Nearest Job Next (with Preemption) — the classic on-demand charging
//! discipline: among outstanding requests, always serve the one closest to
//! the charger's current position.
//!
//! Preemption is realised by re-deciding at every action boundary: sessions
//! are issued in bounded slices, so a request that arrives from a nearer node
//! takes over at the next slice boundary.

use wrsn_net::NodeId;
use wrsn_sim::obs::{Counter, NullRecorder, Recorder};
use wrsn_sim::{ChargeMode, ChargerAction, ChargerPolicy, WorldView};

use crate::refill_duration_s;

/// The NJNP policy.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct Njnp {
    /// Maximum single charging slice, seconds; shorter slices preempt faster
    /// but spend more decision overhead.
    slice_s: f64,
    /// Idle poll interval while no requests are outstanding, seconds.
    poll_s: f64,
}

impl Njnp {
    /// NJNP with a 120 s preemption slice and 60 s idle poll.
    pub fn new() -> Self {
        Njnp {
            slice_s: 120.0,
            poll_s: 60.0,
        }
    }

    /// Sets the preemption slice length, returning the policy.
    ///
    /// # Panics
    ///
    /// Panics if `slice_s` is not finite and positive.
    pub fn with_slice(mut self, slice_s: f64) -> Self {
        assert!(
            slice_s.is_finite() && slice_s > 0.0,
            "slice must be positive"
        );
        self.slice_s = slice_s;
        self
    }

    fn decide(&mut self, view: &WorldView<'_>, rec: &mut dyn Recorder) -> ChargerAction {
        if view.should_recharge(0.15) {
            return ChargerAction::Recharge;
        }
        if view.charger.is_exhausted() {
            return ChargerAction::Finish;
        }
        rec.add(Counter::RequestScans, view.requests.len() as u64);
        match self.nearest_request(view) {
            Some(node) => {
                let full = refill_duration_s(view, node).unwrap_or(self.slice_s);
                if full > self.slice_s {
                    rec.add(Counter::PolicySlices, 1);
                }
                ChargerAction::Charge {
                    node,
                    duration_s: full.min(self.slice_s),
                    mode: ChargeMode::Honest,
                }
            }
            None => {
                if view.time_left_s() <= 0.0 {
                    ChargerAction::Finish
                } else {
                    ChargerAction::Wait(self.poll_s.min(view.time_left_s()))
                }
            }
        }
    }

    fn nearest_request(&self, view: &WorldView<'_>) -> Option<NodeId> {
        view.requests
            .iter()
            .filter(|r| view.is_alive(r.node))
            .min_by(|a, b| {
                let da = view
                    .net
                    .node(a.node)
                    .map(|n| view.charger.position().distance_sq(n.position()))
                    .unwrap_or(f64::INFINITY);
                let db = view
                    .net
                    .node(b.node)
                    .map(|n| view.charger.position().distance_sq(n.position()))
                    .unwrap_or(f64::INFINITY);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|r| r.node)
    }
}

impl Default for Njnp {
    fn default() -> Self {
        Njnp::new()
    }
}

impl ChargerPolicy for Njnp {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        self.decide(view, &mut NullRecorder)
    }

    fn next_action_observed(
        &mut self,
        view: &WorldView<'_>,
        rec: &mut dyn Recorder,
    ) -> ChargerAction {
        self.decide(view, rec)
    }

    fn name(&self) -> &str {
        "njnp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_net::prelude::*;
    use wrsn_sim::prelude::*;

    fn drained_world(horizon: f64) -> World {
        let nodes = deploy::grid(&Region::square(60.0), 3, 3, 0.0, 0);
        let net = Network::build(nodes, Point::new(30.0, 30.0), 25.0);
        let charger = MobileCharger::standard(Point::new(30.0, 30.0));
        let mut w = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: horizon,
                ..WorldConfig::default()
            },
        );
        // Put two nodes below their warning threshold so requests exist.
        let cap = w.network().capacities_j()[0];
        w.set_battery_level(NodeId(0), cap * 0.1).unwrap();
        w.set_battery_level(NodeId(8), cap * 0.05).unwrap();
        w
    }

    #[test]
    fn njnp_serves_outstanding_requests() {
        let mut w = drained_world(40_000.0);
        let report = w.run(&mut Njnp::new()).expect("run");
        assert!(report.sessions >= 2, "sessions = {}", report.sessions);
        let served: std::collections::HashSet<NodeId> =
            w.trace().sessions().iter().map(|s| s.node).collect();
        assert!(served.contains(&NodeId(0)));
        assert!(served.contains(&NodeId(8)));
        // Requests were satisfied: both nodes alive and above warning.
        assert!(w.network().levels_j()[0] > w.network().warnings_j()[0]);
    }

    #[test]
    fn njnp_keeps_network_alive_longer_than_idle() {
        // Small batteries so the horizon sees deaths under idle.
        let build = || {
            let nodes: Vec<SensorNode> = deploy::grid(&Region::square(60.0), 3, 3, 0.0, 0)
                .into_iter()
                .map(|n| {
                    let pos = n.position();
                    SensorNode::with_battery(pos, Battery::new(50.0, 15.0))
                })
                .collect();
            let net = Network::build(nodes, Point::new(30.0, 30.0), 25.0);
            World::new(
                net,
                MobileCharger::standard(Point::new(30.0, 30.0)),
                WorldConfig {
                    horizon_s: 100_000.0,
                    ..WorldConfig::default()
                },
            )
        };
        let idle_dead = build().run(&mut IdlePolicy).expect("run").dead_nodes;
        let njnp_dead = build().run(&mut Njnp::new()).expect("run").dead_nodes;
        assert!(
            njnp_dead < idle_dead,
            "njnp {njnp_dead} vs idle {idle_dead}"
        );
    }

    #[test]
    fn njnp_recharges_at_depot_instead_of_dying() {
        let nodes = deploy::grid(&Region::square(60.0), 3, 3, 0.0, 0);
        let net = Network::build(nodes, Point::new(30.0, 30.0), 25.0);
        // Tiny budget: without a depot NJNP would stall almost immediately.
        let charger = MobileCharger::standard(Point::new(30.0, 30.0)).with_energy(60_000.0);
        let mut w = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: 300_000.0,
                depot: Some(Point::new(30.0, 30.0)),
                ..WorldConfig::default()
            },
        );
        let cap = w.network().capacities_j()[0];
        for i in 0..9 {
            w.set_battery_level(NodeId(i), cap * 0.15).unwrap();
        }
        let report = w.run(&mut Njnp::new()).expect("run");
        assert!(report.depot_visits > 0, "NJNP never swapped batteries");
        assert!(
            report.charger_energy_used_j > 60_000.0,
            "depot swaps should let spending exceed one battery: {}",
            report.charger_energy_used_j
        );
    }

    #[test]
    fn njnp_waits_when_no_requests() {
        let nodes = deploy::grid(&Region::square(60.0), 2, 2, 0.0, 0);
        let net = Network::build(nodes, Point::new(30.0, 30.0), 40.0);
        let charger = MobileCharger::standard(Point::new(30.0, 30.0));
        let tree = wrsn_net::routing::RoutingTree::shortest_path(&net, &net.alive_mask());
        let view = WorldView {
            time_s: 0.0,
            net: &net,
            tree: &tree,
            power_w: &[0.0; 4],
            charger: &charger,
            requests: &[],
            horizon_s: 1000.0,
            depot: None,
            radio: wrsn_net::energy::RadioEnergyModel::classical(),
        };
        assert!(matches!(
            Njnp::new().next_action(&view),
            ChargerAction::Wait(_)
        ));
    }
}
