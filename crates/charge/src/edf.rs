//! Earliest-Deadline-First charging: among outstanding requests, serve the
//! node that will deplete soonest (residual energy over power draw). The
//! strongest benign baseline for lifetime under load.

use wrsn_net::NodeId;
use wrsn_sim::obs::{Counter, NullRecorder, Recorder};
use wrsn_sim::{ChargeMode, ChargerAction, ChargerPolicy, WorldView};

use crate::refill_duration_s;

/// The EDF policy.
///
/// # Example
///
/// ```
/// use wrsn_charge::EarliestDeadlineFirst;
/// use wrsn_sim::ChargerPolicy;
///
/// assert_eq!(EarliestDeadlineFirst::new().name(), "edf");
/// ```
#[derive(Debug, Clone)]
pub struct EarliestDeadlineFirst {
    poll_s: f64,
}

impl EarliestDeadlineFirst {
    /// EDF with a 60 s idle poll.
    pub fn new() -> Self {
        EarliestDeadlineFirst { poll_s: 60.0 }
    }

    /// Time until `node` depletes at current draw, seconds.
    fn deadline_s(view: &WorldView<'_>, node: NodeId) -> f64 {
        let Ok(n) = view.net.node(node) else {
            return f64::INFINITY;
        };
        let draw = view.power_w.get(node.0).copied().unwrap_or(0.0);
        if draw <= 0.0 {
            f64::INFINITY
        } else {
            n.battery().level_j() / draw
        }
    }
}

impl Default for EarliestDeadlineFirst {
    fn default() -> Self {
        EarliestDeadlineFirst::new()
    }
}

impl EarliestDeadlineFirst {
    fn decide(&mut self, view: &WorldView<'_>, rec: &mut dyn Recorder) -> ChargerAction {
        if view.should_recharge(0.15) {
            return ChargerAction::Recharge;
        }
        if view.charger.is_exhausted() {
            return ChargerAction::Finish;
        }
        rec.add(Counter::RequestScans, view.requests.len() as u64);
        let urgent = view
            .requests
            .iter()
            .filter(|r| view.is_alive(r.node))
            .min_by(|a, b| {
                Self::deadline_s(view, a.node)
                    .partial_cmp(&Self::deadline_s(view, b.node))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|r| r.node);
        match urgent {
            Some(node) => {
                let dur = refill_duration_s(view, node).unwrap_or(0.0);
                if dur <= 0.0 {
                    return ChargerAction::Wait(self.poll_s.min(view.time_left_s().max(1.0)));
                }
                ChargerAction::Charge {
                    node,
                    duration_s: dur,
                    mode: ChargeMode::Honest,
                }
            }
            None => {
                if view.time_left_s() <= 0.0 {
                    ChargerAction::Finish
                } else {
                    ChargerAction::Wait(self.poll_s.min(view.time_left_s()))
                }
            }
        }
    }
}

impl ChargerPolicy for EarliestDeadlineFirst {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        self.decide(view, &mut NullRecorder)
    }

    fn next_action_observed(
        &mut self,
        view: &WorldView<'_>,
        rec: &mut dyn Recorder,
    ) -> ChargerAction {
        self.decide(view, rec)
    }

    fn name(&self) -> &str {
        "edf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_net::prelude::*;
    use wrsn_sim::prelude::*;

    #[test]
    fn edf_picks_the_most_urgent_node() {
        // Two requesters; node 1 is much closer to death.
        let nodes = deploy::grid(&Region::square(40.0), 2, 1, 0.0, 0);
        let net = Network::build(nodes, Point::new(20.0, 20.0), 40.0);
        let mut w = World::new(
            net,
            MobileCharger::standard(Point::new(20.0, 20.0)),
            WorldConfig {
                horizon_s: 60_000.0,
                ..WorldConfig::default()
            },
        );
        let cap = w.network().capacities_j()[0];
        w.set_battery_level(NodeId(0), cap * 0.15).unwrap();
        w.set_battery_level(NodeId(1), cap * 0.02).unwrap();
        w.run(&mut EarliestDeadlineFirst::new()).expect("run");
        let sessions = w.trace().sessions();
        assert!(!sessions.is_empty());
        assert_eq!(sessions[0].node, NodeId(1), "most urgent first");
    }

    #[test]
    fn edf_saves_nodes_that_idle_loses() {
        let build = || {
            let nodes: Vec<SensorNode> = deploy::grid(&Region::square(50.0), 3, 3, 0.0, 0)
                .into_iter()
                .map(|n| SensorNode::with_battery(n.position(), Battery::new(60.0, 20.0)))
                .collect();
            let net = Network::build(nodes, Point::new(25.0, 25.0), 25.0);
            World::new(
                net,
                MobileCharger::standard(Point::new(25.0, 25.0)),
                WorldConfig {
                    horizon_s: 80_000.0,
                    ..WorldConfig::default()
                },
            )
        };
        let idle = build().run(&mut IdlePolicy).expect("run");
        let edf = build().run(&mut EarliestDeadlineFirst::new()).expect("run");
        assert!(
            edf.dead_nodes < idle.dead_nodes,
            "edf {} vs idle {}",
            edf.dead_nodes,
            idle.dead_nodes
        );
    }
}
