//! # wrsn-charge — benign mobile-charger scheduling
//!
//! The legitimate charging policies a WRSN operator runs, all implementing
//! [`wrsn_sim::ChargerPolicy`]:
//!
//! * [`njnp::Njnp`] — *Nearest Job Next (with Preemption)*: always serve the
//!   spatially closest outstanding request,
//! * [`periodic::PeriodicTsp`] — tour all nodes on a (2-opt improved) TSP
//!   cycle and top every battery up,
//! * [`edf::EarliestDeadlineFirst`] — serve the node that will die soonest.
//!
//! These policies matter to the attack twice over: they are the *victims'
//! expectation* of charger behaviour (the disguise CSA wears), and they are
//! the baselines the evaluation compares network lifetime against.
//!
//! The [`tour`] module's nearest-neighbour + 2-opt TSP heuristics are shared
//! with the attack planner in `wrsn-core`.
//!
//! # Example
//!
//! ```
//! use wrsn_net::prelude::*;
//! use wrsn_sim::prelude::*;
//! use wrsn_charge::njnp::Njnp;
//!
//! let nodes = deploy::uniform(&Region::square(60.0), 15, 2);
//! let net = Network::build(nodes, Point::new(30.0, 30.0), 25.0);
//! let mut world = World::new(net, MobileCharger::standard(Point::new(30.0, 30.0)),
//!                            WorldConfig { horizon_s: 3600.0, ..WorldConfig::default() });
//! let report = world.run(&mut Njnp::new()).expect("run");
//! assert_eq!(report.policy_name, "njnp");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edf;
pub mod njnp;
pub mod periodic;
pub mod tour;

pub use edf::EarliestDeadlineFirst;
pub use njnp::Njnp;
pub use periodic::PeriodicTsp;

use wrsn_net::NodeId;
use wrsn_sim::WorldView;

/// Seconds of service needed to refill `node` from the charger's standard
/// service distance, given its current deficit; `None` if the node is dead,
/// unknown, or out of charging range.
pub fn refill_duration_s(view: &WorldView<'_>, node: NodeId) -> Option<f64> {
    let n = view.net.node(node).ok()?;
    if !n.is_alive() {
        return None;
    }
    let model = view.charger.rig().primary().model();
    let p = model.power_at(view.charger.service_distance_m());
    if p <= 0.0 {
        return None;
    }
    // While charging, the node keeps draining; budget for that too.
    let drain = view.power_w.get(node.0).copied().unwrap_or(0.0);
    let net_in = (p - drain).max(p * 0.1);
    Some(n.battery().deficit_j() / net_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_net::prelude::*;
    use wrsn_sim::prelude::*;

    #[test]
    fn refill_duration_scales_with_deficit() {
        let nodes = deploy::uniform(&Region::square(40.0), 5, 3);
        let net = Network::build(nodes, Point::new(20.0, 20.0), 20.0);
        let charger = MobileCharger::standard(Point::new(20.0, 20.0));
        let mut world = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: 10.0,
                ..WorldConfig::default()
            },
        );
        world.set_battery_level(NodeId(0), 100.0).unwrap();
        let tree = world.tree().clone();
        let view = WorldView {
            time_s: 0.0,
            net: world.network(),
            tree: &tree,
            power_w: world.power_w(),
            charger: world.charger(),
            requests: &[],
            horizon_s: 10.0,
            depot: None,
            radio: wrsn_net::energy::RadioEnergyModel::classical(),
        };
        let d_low = refill_duration_s(&view, NodeId(0)).unwrap();
        let d_full = refill_duration_s(&view, NodeId(1)).unwrap();
        assert!(
            d_low > d_full,
            "drained node needs longer: {d_low} vs {d_full}"
        );
        assert!(refill_duration_s(&view, NodeId(99)).is_none());
    }
}
