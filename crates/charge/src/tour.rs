//! TSP tour heuristics: nearest-neighbour construction and 2-opt improvement.
//!
//! Used by [`crate::periodic::PeriodicTsp`] for benign rounds and by the
//! attack planner in `wrsn-core` to order victim visits.

use wrsn_net::geom::{path_length, Point};
use wrsn_sim::obs::{Counter, NullRecorder, Recorder};

/// Builds a visiting order over `points` starting from `start` by repeatedly
/// hopping to the nearest unvisited point. Returns indices into `points`.
pub fn nearest_neighbor_order(start: Point, points: &[Point]) -> Vec<usize> {
    let n = points.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut current = start;
    for _ in 0..n {
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, p) in points.iter().enumerate() {
            if visited[i] {
                continue;
            }
            let d = current.distance_sq(*p);
            if d < best_d {
                best_d = d;
                best = Some(i);
            }
        }
        let i = best.expect("unvisited point exists");
        visited[i] = true;
        order.push(i);
        current = points[i];
    }
    order
}

/// Total length of the open tour `start → points[order[0]] → … →
/// points[order[n-1]]`, metres.
pub fn tour_length(start: Point, points: &[Point], order: &[usize]) -> f64 {
    let mut path = Vec::with_capacity(order.len() + 1);
    path.push(start);
    path.extend(order.iter().map(|&i| points[i]));
    path_length(&path)
}

/// Improves `order` in place with 2-opt moves (segment reversal) until no
/// improving move exists or `max_rounds` passes complete. Returns the final
/// tour length.
pub fn two_opt(start: Point, points: &[Point], order: &mut [usize], max_rounds: usize) -> f64 {
    two_opt_with(start, points, order, max_rounds, &mut NullRecorder)
}

/// Like [`two_opt`], but counts accepted reversals
/// ([`Counter::TourTwoOptMoves`]) into `rec`.
pub fn two_opt_with(
    start: Point,
    points: &[Point],
    order: &mut [usize],
    max_rounds: usize,
    rec: &mut dyn Recorder,
) -> f64 {
    let n = order.len();
    if n < 3 {
        return tour_length(start, points, order);
    }
    let pos = |order: &[usize], k: isize| -> Point {
        if k < 0 {
            start
        } else {
            points[order[k as usize]]
        }
    };
    for _ in 0..max_rounds {
        let mut improved = false;
        for i in 0..n - 1 {
            for j in i + 1..n {
                // Reversing order[i..=j] replaces edges (i-1, i) and (j, j+1)
                // with (i-1, j) and (i, j+1).
                let a = pos(order, i as isize - 1);
                let b = pos(order, i as isize);
                let c = pos(order, j as isize);
                let before = a.distance(b)
                    + if j + 1 < n {
                        c.distance(pos(order, j as isize + 1))
                    } else {
                        0.0
                    };
                let after = a.distance(c)
                    + if j + 1 < n {
                        b.distance(pos(order, j as isize + 1))
                    } else {
                        0.0
                    };
                if after + 1e-12 < before {
                    order[i..=j].reverse();
                    rec.add(Counter::TourTwoOptMoves, 1);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    tour_length(start, points, order)
}

/// Convenience: nearest-neighbour + 2-opt tour over `points` from `start`.
/// Returns `(order, length_m)`.
///
/// # Example
///
/// ```
/// use wrsn_net::Point;
/// use wrsn_charge::tour::plan_tour;
///
/// let pts = vec![Point::new(0.0, 10.0), Point::new(0.0, 20.0), Point::new(0.0, 5.0)];
/// let (order, len) = plan_tour(Point::ORIGIN, &pts);
/// assert_eq!(order, vec![2, 0, 1]);
/// assert!((len - 20.0).abs() < 1e-9);
/// ```
pub fn plan_tour(start: Point, points: &[Point]) -> (Vec<usize>, f64) {
    plan_tour_with(start, points, &mut NullRecorder)
}

/// Like [`plan_tour`], but counts accepted 2-opt reversals into `rec`.
pub fn plan_tour_with(start: Point, points: &[Point], rec: &mut dyn Recorder) -> (Vec<usize>, f64) {
    let mut order = nearest_neighbor_order(start, points);
    let len = two_opt_with(start, points, &mut order, 64, rec);
    (order, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn nearest_neighbor_visits_everything_once() {
        let pts = random_points(20, 1);
        let order = nearest_neighbor_order(Point::ORIGIN, &pts);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn two_opt_never_worsens() {
        for seed in 0..8 {
            let pts = random_points(15, seed);
            let mut order = nearest_neighbor_order(Point::ORIGIN, &pts);
            let before = tour_length(Point::ORIGIN, &pts, &order);
            let after = two_opt(Point::ORIGIN, &pts, &mut order, 64);
            assert!(after <= before + 1e-9, "seed {seed}: {after} > {before}");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..15).collect::<Vec<_>>());
        }
    }

    #[test]
    fn two_opt_improves_a_crossing_order() {
        // 2-opt is a local search: it must strictly improve this tangled
        // order, though it may stop at a local optimum.
        let pts = vec![
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 20.0),
        ];
        let mut order = vec![0, 2, 1, 3];
        let before = tour_length(Point::ORIGIN, &pts, &order);
        let after = two_opt(Point::ORIGIN, &pts, &mut order, 64);
        assert!(after < before - 1e-9, "{after} !< {before}");
    }

    #[test]
    fn empty_and_single_point_tours() {
        let (order, len) = plan_tour(Point::ORIGIN, &[]);
        assert!(order.is_empty());
        assert_eq!(len, 0.0);
        let (order, len) = plan_tour(Point::ORIGIN, &[Point::new(3.0, 4.0)]);
        assert_eq!(order, vec![0]);
        assert!((len - 5.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_points_are_visited_in_order() {
        let pts: Vec<Point> = (1..=5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let (order, len) = plan_tour(Point::ORIGIN, &pts);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!((len - 50.0).abs() < 1e-9);
    }
}
