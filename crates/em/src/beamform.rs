//! Multi-antenna, multi-victim nulling — simultaneous spoofing.
//!
//! [`crate::cancel::CancelController`] nulls the field at *one* point with
//! two antennas. The general statement: `n` coherent antennas can place
//! `n − 1` independent nulls. Given antenna and victim positions, the
//! channel from antenna `i` to victim `j` is a complex gain `h_{ij}` (the
//! per-unit-drive arrival phasor); transmit weights `w` produce received
//! field `H·w`, so nulling every victim means solving `H·w = 0` for a
//! non-trivial `w` — a null-space computation done here with Gaussian
//! elimination over [`Phasor`] arithmetic.
//!
//! This is the physics behind the "can the attacker spoof several nodes at
//! once?" extension (experiment `fig13`): one parked multi-antenna rig can
//! masquerade-kill a whole cluster in a single visit.

use crate::antenna::Transmitter;
use crate::phasor::Phasor;
use crate::superposition;
use crate::wave::Wave;

/// The per-unit-drive channel matrix `H` (`victims × antennas`): entry
/// `(j, i)` is the arrival phasor at victim `j` when antenna `i` transmits
/// with unit power factor and zero phase.
pub fn channel_matrix(antennas: &[Transmitter], victims: &[(f64, f64)]) -> Vec<Vec<Phasor>> {
    victims
        .iter()
        .map(|&v| {
            antennas
                .iter()
                .map(|a| a.with_power_factor(1.0).with_phase(0.0).wave_at(v).phasor())
                .collect()
        })
        .collect()
}

/// Complex transmit weights that null the field at every victim, or `None`
/// if no non-trivial solution exists (needs `antennas > victims` in general
/// position).
///
/// The returned weights are scaled so the largest has unit magnitude (no
/// antenna is asked to exceed its rated power).
///
/// # Example
///
/// ```
/// use wrsn_em::antenna::Transmitter;
/// use wrsn_em::beamform;
///
/// let antennas: Vec<Transmitter> = (0..3)
///     .map(|i| Transmitter::powercast().at(0.3 * i as f64, 0.0))
///     .collect();
/// let victims = [(2.0, 0.5), (2.0, -0.5)];
/// let w = beamform::null_weights(&antennas, &victims).unwrap();
/// for &v in &victims {
///     assert!(beamform::received_power_with_weights(&antennas, &w, v) < 1e-20);
/// }
/// ```
#[allow(clippy::needless_range_loop)] // index form mirrors the matrix math
pub fn null_weights(antennas: &[Transmitter], victims: &[(f64, f64)]) -> Option<Vec<Phasor>> {
    let n = antennas.len();
    let m = victims.len();
    if n == 0 || m >= n {
        return None;
    }
    let mut h = channel_matrix(antennas, victims);

    // Gaussian elimination with partial pivoting over the m×n complex system.
    let mut pivot_cols = Vec::new();
    let mut row = 0usize;
    for col in 0..n {
        // Find the largest pivot in this column at or below `row`.
        let mut best = row;
        for r in row..m {
            if h[r][col].magnitude() > h[best][col].magnitude() {
                best = r;
            }
        }
        if row >= m || h[best][col].magnitude() < 1e-12 {
            continue;
        }
        h.swap(row, best);
        // Normalise the pivot row.
        let pivot = h[row][col];
        let inv = pivot.conj().scale(1.0 / pivot.power());
        for c in 0..n {
            h[row][c] = h[row][c] * inv;
        }
        // Eliminate the column elsewhere.
        for r in 0..m {
            if r != row {
                let factor = h[r][col];
                for c in 0..n {
                    let delta = factor * h[row][c];
                    h[r][c] = h[r][c] - delta;
                }
            }
        }
        pivot_cols.push(col);
        row += 1;
        if row == m {
            break;
        }
    }

    // A free column exists because n > rank; set it to 1 and back-substitute.
    let free_col = (0..n).find(|c| !pivot_cols.contains(c))?;
    let mut w = vec![Phasor::ZERO; n];
    w[free_col] = Phasor::new(1.0, 0.0);
    for (r, &pc) in pivot_cols.iter().enumerate() {
        // Row r reads: w[pc] + Σ_{free} h[r][c]·w[c] = 0.
        w[pc] = -(h[r][free_col]);
    }

    // Scale so max |w| = 1 (power-factor feasible).
    let max_mag = w.iter().map(Phasor::magnitude).fold(0.0f64, f64::max);
    if max_mag <= 0.0 {
        return None;
    }
    Some(w.iter().map(|p| p.scale(1.0 / max_mag)).collect())
}

/// The waves the weighted antenna array produces at `point`; weight `w_i`
/// sets antenna `i`'s power factor to `|w_i|²` and transmit phase to
/// `arg(w_i)`.
pub fn waves_with_weights(
    antennas: &[Transmitter],
    weights: &[Phasor],
    point: (f64, f64),
) -> Vec<Wave> {
    antennas
        .iter()
        .zip(weights)
        .map(|(a, w)| {
            a.with_power_factor((w.magnitude().min(1.0)).powi(2))
                .with_phase(w.phase())
                .wave_at(point)
        })
        .collect()
}

/// Received power at `point` under the weighted array, watts.
pub fn received_power_with_weights(
    antennas: &[Transmitter],
    weights: &[Phasor],
    point: (f64, f64),
) -> f64 {
    superposition::received_power(&waves_with_weights(antennas, weights, point))
}

/// Convenience: a linear array of `n` Powercast antennas spaced `spacing_m`
/// apart along x, starting at `(x0, y0)`.
pub fn linear_array(n: usize, x0: f64, y0: f64, spacing_m: f64) -> Vec<Transmitter> {
    (0..n)
        .map(|i| Transmitter::powercast().at(x0 + spacing_m * i as f64, y0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_antennas_null_one_victim() {
        let antennas = linear_array(2, 0.0, 0.0, 0.3);
        let victims = [(1.5, 0.2)];
        let w = null_weights(&antennas, &victims).unwrap();
        let p = received_power_with_weights(&antennas, &w, victims[0]);
        assert!(p < 1e-20, "residual {p}");
    }

    #[test]
    fn three_antennas_null_two_victims() {
        let antennas = linear_array(3, 0.0, 0.0, 0.3);
        let victims = [(2.0, 0.5), (1.8, -0.7)];
        let w = null_weights(&antennas, &victims).unwrap();
        for &v in &victims {
            assert!(received_power_with_weights(&antennas, &w, v) < 1e-18);
        }
    }

    #[test]
    fn five_antennas_null_four_victims() {
        let antennas = linear_array(5, 0.0, 0.0, 0.25);
        let victims = [(2.0, 0.5), (1.8, -0.7), (2.5, 0.0), (1.5, 1.0)];
        let w = null_weights(&antennas, &victims).unwrap();
        for &v in &victims {
            assert!(
                received_power_with_weights(&antennas, &w, v) < 1e-15,
                "victim {v:?}"
            );
        }
    }

    #[test]
    fn weights_respect_unit_power_factor() {
        let antennas = linear_array(4, 0.0, 0.0, 0.3);
        let victims = [(2.0, 0.5), (1.8, -0.7), (2.5, 0.0)];
        let w = null_weights(&antennas, &victims).unwrap();
        for p in &w {
            assert!(p.magnitude() <= 1.0 + 1e-12);
        }
        assert!(w.iter().any(|p| (p.magnitude() - 1.0).abs() < 1e-9));
    }

    #[test]
    fn too_few_antennas_yield_none() {
        let antennas = linear_array(2, 0.0, 0.0, 0.3);
        assert!(null_weights(&antennas, &[(1.0, 0.0), (1.0, 1.0)]).is_none());
        assert!(null_weights(&[], &[(1.0, 0.0)]).is_none());
    }

    #[test]
    fn nulled_array_still_radiates_elsewhere() {
        // The point of the attack: victims get nothing, but the field is live
        // (an RF auditor standing next to the rig measures plenty).
        let antennas = linear_array(3, 0.0, 0.0, 0.3);
        let victims = [(2.0, 0.5), (1.8, -0.7)];
        let w = null_weights(&antennas, &victims).unwrap();
        let elsewhere = received_power_with_weights(&antennas, &w, (1.0, 2.0));
        assert!(elsewhere > 1e-6, "field dead everywhere: {elsewhere}");
    }

    #[test]
    fn channel_matrix_dimensions() {
        let antennas = linear_array(3, 0.0, 0.0, 0.3);
        let h = channel_matrix(&antennas, &[(1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].len(), 3);
    }
}
