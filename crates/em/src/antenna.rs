//! Transmit antennas and their field at a receiver location.
//!
//! A [`Transmitter`] combines the empirical power envelope
//! ([`crate::ChargeModel`]) with carrier-phase propagation: the wave arriving
//! at a receiver `d` metres away has amplitude `√P(d)` and phase
//! `ψ − 2πd/λ`, where `ψ` is the controllable transmit phase.

use serde::{Deserialize, Serialize};

use crate::charging::ChargeModel;
use crate::constants;
use crate::wave::Wave;

/// A phase- and power-controllable WPT transmit antenna at a fixed position.
///
/// # Example
///
/// ```
/// use wrsn_em::Transmitter;
///
/// let tx = Transmitter::powercast().at(0.0, 0.0);
/// let w = tx.wave_at((1.0, 0.0));
/// assert!(w.solo_power() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transmitter {
    model: ChargeModel,
    wavelength_m: f64,
    position: (f64, f64),
    /// Controllable transmit phase ψ, radians.
    tx_phase: f64,
    /// Power scaling in `[0, 1]` (1 = full rated power).
    power_factor: f64,
}

impl Transmitter {
    /// Creates a transmitter with the given power envelope and carrier
    /// frequency, placed at the origin.
    pub fn new(model: ChargeModel, freq_hz: f64) -> Self {
        Transmitter {
            model,
            wavelength_m: constants::wavelength(freq_hz),
            position: (0.0, 0.0),
            tx_phase: 0.0,
            power_factor: 1.0,
        }
    }

    /// A Powercast-class transmitter on the 915 MHz ISM band.
    pub fn powercast() -> Self {
        Transmitter::new(ChargeModel::powercast(), constants::ISM_915MHZ)
    }

    /// Returns this transmitter moved to `(x, y)` metres.
    pub fn at(mut self, x: f64, y: f64) -> Self {
        self.position = (x, y);
        self
    }

    /// Returns this transmitter with transmit phase `psi` radians.
    pub fn with_phase(mut self, psi: f64) -> Self {
        self.tx_phase = psi;
        self
    }

    /// Returns this transmitter with power factor `k ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `[0, 1]` or non-finite.
    pub fn with_power_factor(mut self, k: f64) -> Self {
        assert!(
            k.is_finite() && (0.0..=1.0).contains(&k),
            "power factor must be in [0, 1], got {k}"
        );
        self.power_factor = k;
        self
    }

    /// The transmitter's position in metres.
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// The controllable transmit phase, radians.
    pub fn tx_phase(&self) -> f64 {
        self.tx_phase
    }

    /// The current power factor in `[0, 1]`.
    pub fn power_factor(&self) -> f64 {
        self.power_factor
    }

    /// The power envelope model.
    pub fn model(&self) -> &ChargeModel {
        &self.model
    }

    /// Carrier wavelength, metres.
    pub fn wavelength(&self) -> f64 {
        self.wavelength_m
    }

    /// Euclidean distance from this transmitter to `(x, y)`, metres.
    pub fn distance_to(&self, point: (f64, f64)) -> f64 {
        let dx = self.position.0 - point.0;
        let dy = self.position.1 - point.1;
        dx.hypot(dy)
    }

    /// Propagation phase delay `2πd/λ` to `point`, radians.
    pub fn propagation_phase(&self, point: (f64, f64)) -> f64 {
        2.0 * std::f64::consts::PI * self.distance_to(point) / self.wavelength_m
    }

    /// The coherent wave this transmitter produces at `point`.
    ///
    /// Amplitude is `√(k·P(d))` (so a lone full-power transmitter delivers the
    /// empirical model's power); phase is `ψ − 2πd/λ`.
    pub fn wave_at(&self, point: (f64, f64)) -> Wave {
        let d = self.distance_to(point);
        let amp = (self.power_factor * self.model.power_at(d)).sqrt();
        Wave::new(amp, self.tx_phase - self.propagation_phase(point))
    }

    /// Power delivered at `point` if this transmitter acted alone, in watts.
    pub fn solo_power_at(&self, point: (f64, f64)) -> f64 {
        self.wave_at(point).solo_power()
    }
}

impl Default for Transmitter {
    fn default() -> Self {
        Transmitter::powercast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superposition::received_power;

    #[test]
    fn solo_power_matches_charge_model() {
        let tx = Transmitter::powercast().at(0.0, 0.0);
        let p = tx.solo_power_at((1.2, 0.0));
        assert!((p - tx.model().power_at(1.2)).abs() < 1e-12);
    }

    #[test]
    fn power_factor_scales_power_linearly() {
        let tx = Transmitter::powercast();
        let half = tx.with_power_factor(0.5);
        let ratio = half.solo_power_at((1.0, 0.0)) / tx.solo_power_at((1.0, 0.0));
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase_advances_with_distance() {
        let tx = Transmitter::powercast();
        let near = tx.propagation_phase((0.5, 0.0));
        let far = tx.propagation_phase((1.5, 0.0));
        assert!(far > near);
    }

    #[test]
    fn tx_phase_shifts_arrival_phase() {
        let base = Transmitter::powercast();
        let shifted = base.with_phase(0.7);
        let p = (1.0, 1.0);
        let dphi = shifted.wave_at(p).phase() - base.wave_at(p).phase();
        assert!((dphi - 0.7).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_receiver_gets_nothing() {
        let tx = Transmitter::powercast();
        assert_eq!(tx.solo_power_at((100.0, 0.0)), 0.0);
    }

    #[test]
    fn half_wavelength_offset_creates_null() {
        // Two identical in-phase transmitters whose path lengths differ by λ/2
        // produce a null at the receiver — a "natural" spoofing configuration.
        let tx1 = Transmitter::powercast().at(0.0, 0.0);
        let lambda = tx1.wavelength();
        let tx2 = Transmitter::powercast().at(-lambda / 2.0, 0.0);
        let victim = (1.0, 0.0);
        let w1 = tx1.wave_at(victim);
        let w2 = tx2.wave_at(victim);
        // Amplitudes differ slightly (different distances), so the null is deep
        // but not perfect.
        let residual = received_power(&[w1, w2]);
        let solo = w1.solo_power();
        assert!(residual < 0.02 * solo, "residual {residual} vs solo {solo}");
    }

    #[test]
    #[should_panic(expected = "power factor")]
    fn power_factor_above_one_panics() {
        let _ = Transmitter::powercast().with_power_factor(1.5);
    }
}
