//! Coherent waves arriving at a receiver.
//!
//! A [`Wave`] is the contribution of one transmit antenna to the field at a
//! specific receiver location: an amplitude (in `√W`, so that `amplitude²` is
//! the power that wave would deliver alone) and an arrival phase.

use serde::{Deserialize, Serialize};

use crate::phasor::Phasor;

/// One coherent wave incident on a receiver.
///
/// The amplitude convention is chosen so that a single wave in isolation
/// delivers `amplitude²` watts: [`Wave::solo_power`].
///
/// # Example
///
/// ```
/// use wrsn_em::Wave;
///
/// let w = Wave::new(2.0, 0.0);
/// assert_eq!(w.solo_power(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wave {
    amplitude: f64,
    phase: f64,
}

impl Wave {
    /// Creates a wave with the given amplitude (`√W`, must be ≥ 0 and finite)
    /// and arrival phase (radians).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or either argument is not finite.
    pub fn new(amplitude: f64, phase: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "wave amplitude must be finite and non-negative, got {amplitude}"
        );
        assert!(phase.is_finite(), "wave phase must be finite, got {phase}");
        Wave { amplitude, phase }
    }

    /// Creates a wave directly from a field phasor.
    pub fn from_phasor(p: Phasor) -> Self {
        Wave::new(p.magnitude(), p.phase())
    }

    /// Amplitude in `√W`.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Arrival phase in radians.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Power this wave would deliver if it were the only incident wave, in W.
    pub fn solo_power(&self) -> f64 {
        self.amplitude * self.amplitude
    }

    /// The wave's field phasor `a·e^{jφ}`.
    pub fn phasor(&self) -> Phasor {
        Phasor::from_polar(self.amplitude, self.phase)
    }

    /// Returns this wave with its phase shifted by `delta` radians.
    pub fn shifted(&self, delta: f64) -> Wave {
        Wave::new(self.amplitude, self.phase + delta)
    }

    /// Returns this wave with amplitude scaled by `k ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or non-finite.
    pub fn scaled(&self, k: f64) -> Wave {
        Wave::new(self.amplitude * k, self.phase)
    }

    /// The wave that exactly cancels this one (same amplitude, opposite phase).
    pub fn antiphase(&self) -> Wave {
        Wave::new(self.amplitude, self.phase + std::f64::consts::PI)
    }
}

impl From<Phasor> for Wave {
    fn from(p: Phasor) -> Self {
        Wave::from_phasor(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn solo_power_is_amplitude_squared() {
        assert!((Wave::new(3.0, 1.0).solo_power() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn antiphase_cancels() {
        let w = Wave::new(1.7, 0.4);
        let sum = w.phasor() + w.antiphase().phasor();
        assert!(sum.magnitude() < 1e-12);
    }

    #[test]
    fn phasor_roundtrip() {
        let w = Wave::new(0.8, -1.2);
        let back = Wave::from_phasor(w.phasor());
        assert!((back.amplitude() - 0.8).abs() < 1e-12);
        assert!((back.phase() + 1.2).abs() < 1e-12);
    }

    #[test]
    fn shifted_by_two_pi_is_same_field() {
        let w = Wave::new(1.0, 0.25);
        let s = w.shifted(2.0 * PI);
        assert!((w.phasor() - s.phasor()).magnitude() < 1e-12);
    }

    #[test]
    fn scaled_scales_power_quadratically() {
        let w = Wave::new(2.0, 0.0);
        assert!((w.scaled(0.5).solo_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn negative_amplitude_panics() {
        let _ = Wave::new(-1.0, 0.0);
    }
}
