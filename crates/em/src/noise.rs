//! Measurement noise models for the Section-II style experiments.
//!
//! Real RF power measurements scatter around the physical law; the paper's
//! measured curves are noisy samples of the superposition formula. This module
//! provides a seeded Gaussian noise source so regenerated "measurements" are
//! reproducible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A reproducible Gaussian measurement-noise source.
///
/// Uses the Box–Muller transform over a seeded ChaCha stream, so identical
/// seeds yield identical "measurement campaigns" on every platform.
///
/// # Example
///
/// ```
/// use wrsn_em::noise::MeasurementNoise;
///
/// let mut n = MeasurementNoise::new(42, 0.05);
/// let sample = n.noisy_power(1.0);
/// assert!(sample >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementNoise {
    rng: ChaCha8Rng,
    /// Relative standard deviation (e.g. `0.05` = 5 % multiplicative noise).
    rel_sigma: f64,
}

impl MeasurementNoise {
    /// Creates a noise source with the given seed and relative standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `rel_sigma` is negative or non-finite.
    pub fn new(seed: u64, rel_sigma: f64) -> Self {
        assert!(
            rel_sigma.is_finite() && rel_sigma >= 0.0,
            "rel_sigma must be finite and non-negative, got {rel_sigma}"
        );
        MeasurementNoise {
            rng: ChaCha8Rng::seed_from_u64(seed),
            rel_sigma,
        }
    }

    /// The configured relative standard deviation.
    pub fn rel_sigma(&self) -> f64 {
        self.rel_sigma
    }

    /// Draws one standard-normal sample.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller; u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A noisy power measurement: `p·(1 + σ·N(0,1))`, clamped at 0
    /// (power meters do not read negative).
    pub fn noisy_power(&mut self, p: f64) -> f64 {
        (p * (1.0 + self.rel_sigma * self.standard_normal())).max(0.0)
    }

    /// Applies noise to a whole `(x, y)` sample series, perturbing only `y`.
    pub fn noisy_series(&mut self, samples: &[(f64, f64)]) -> Vec<(f64, f64)> {
        samples
            .iter()
            .map(|&(x, y)| (x, self.noisy_power(y)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_samples() {
        let mut a = MeasurementNoise::new(7, 0.1);
        let mut b = MeasurementNoise::new(7, 0.1);
        for _ in 0..32 {
            assert_eq!(a.noisy_power(1.0), b.noisy_power(1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MeasurementNoise::new(1, 0.1);
        let mut b = MeasurementNoise::new(2, 0.1);
        let sa: Vec<f64> = (0..8).map(|_| a.noisy_power(1.0)).collect();
        let sb: Vec<f64> = (0..8).map(|_| b.noisy_power(1.0)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn zero_sigma_is_noiseless() {
        let mut n = MeasurementNoise::new(3, 0.0);
        assert_eq!(n.noisy_power(0.7), 0.7);
    }

    #[test]
    fn samples_never_negative() {
        let mut n = MeasurementNoise::new(5, 2.0); // huge noise
        for _ in 0..1000 {
            assert!(n.noisy_power(0.01) >= 0.0);
        }
    }

    #[test]
    fn standard_normal_has_plausible_moments() {
        let mut n = MeasurementNoise::new(11, 0.1);
        let k = 20_000;
        let samples: Vec<f64> = (0..k).map(|_| n.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / k as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / k as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn noisy_series_keeps_x_and_length() {
        let mut n = MeasurementNoise::new(9, 0.05);
        let src = vec![(0.5, 1.0), (1.0, 0.5)];
        let out = n.noisy_series(&src);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0.5);
        assert_eq!(out[1].0, 1.0);
    }
}
