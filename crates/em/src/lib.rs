//! # wrsn-em — electromagnetic wave and wireless power transfer physics
//!
//! This crate is the physical substrate for the Charging Spoofing Attack (CSA)
//! described in *"Are You Really Charging Me?"* (ICDCS 2022). It models:
//!
//! * complex **phasor** arithmetic ([`Phasor`]),
//! * individual coherent **waves** emitted by transmit antennas ([`wave::Wave`]),
//! * the **nonlinear superposition** law `P ∝ |Σᵢ aᵢ·e^{jφᵢ}|²`
//!   ([`superposition`]) that makes the attack possible — two waves of equal
//!   amplitude and opposite phase cancel, so a receiver can sit in a strong RF
//!   field and harvest *nothing*,
//! * the empirical **charging power model** `P(d) = α/(d+β)²` used throughout
//!   the WRSN charging literature ([`charging`]),
//! * the attacker's **phase cancellation controller** ([`cancel`]), which picks
//!   the second antenna's transmit phase/power so the two arrivals cancel at a
//!   victim's location,
//! * **measurement noise** models ([`noise`]) and a least-squares **model
//!   fitter** ([`fit`]) used to regenerate the paper's Section-II style
//!   measurement figures.
//!
//! # Example
//!
//! Cancel the charging field at a victim 1 m away:
//!
//! ```
//! use wrsn_em::{antenna::Transmitter, cancel::CancelController, superposition};
//!
//! let primary = Transmitter::powercast().at(0.0, 0.0);
//! // Second antenna 30 cm to the side of the first.
//! let helper = Transmitter::powercast().at(0.3, 0.0);
//! let victim = (1.0, 0.0);
//!
//! let honest = primary.wave_at(victim);
//! let spoof = CancelController::new(&primary, &helper).cancelling_wave(victim);
//! let received = superposition::received_power(&[honest, spoof]);
//! assert!(received < 1e-9 * superposition::received_power(&[primary.wave_at(victim)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod beamform;
pub mod cancel;
pub mod charging;
pub mod constants;
pub mod error;
pub mod fit;
pub mod noise;
pub mod phasor;
pub mod superposition;
pub mod wave;

pub use antenna::Transmitter;
pub use cancel::CancelController;
pub use charging::ChargeModel;
pub use error::EmError;
pub use phasor::Phasor;
pub use wave::Wave;
