//! The attacker's phase-cancellation controller.
//!
//! A Charging Spoofing Attacker carries (at least) two transmit antennas. The
//! *primary* antenna behaves exactly like a benign charger — it is what makes
//! the attack look legitimate. The *helper* antenna transmits a wave tuned so
//! that, **at the victim's location**, it arrives with the same amplitude and
//! opposite phase as the primary's wave. The coherent sum vanishes and the
//! victim harvests (almost) nothing, while any external observer sees a charger
//! radiating at full power next to the node.

use serde::{Deserialize, Serialize};

use crate::antenna::Transmitter;
use crate::superposition::received_power;
use crate::wave::Wave;

/// Computes helper-antenna settings that cancel the primary's field at a
/// chosen victim location.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CancelController {
    primary: Transmitter,
    helper: Transmitter,
}

/// Outcome of tuning the helper antenna against a victim location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CancelSolution {
    /// Helper transmit phase ψ₂ (radians).
    pub helper_phase: f64,
    /// Helper power factor in `[0, 1]`.
    pub helper_power_factor: f64,
    /// Residual harvested power at the victim, watts.
    pub residual_power_w: f64,
    /// Power the victim would harvest from the primary alone, watts.
    pub honest_power_w: f64,
}

impl CancelSolution {
    /// Fraction of honest power suppressed: `1 − residual/honest`.
    ///
    /// `1.0` means the victim receives nothing; `0.0` means the attack failed
    /// entirely. Returns `1.0` when the honest power is already zero (nothing
    /// to suppress).
    pub fn suppression(&self) -> f64 {
        if self.honest_power_w <= 0.0 {
            1.0
        } else {
            (1.0 - self.residual_power_w / self.honest_power_w).max(0.0)
        }
    }
}

impl CancelController {
    /// Creates a controller for the given primary/helper antenna pair.
    pub fn new(primary: &Transmitter, helper: &Transmitter) -> Self {
        CancelController {
            primary: *primary,
            helper: *helper,
        }
    }

    /// The primary (disguise) transmitter.
    pub fn primary(&self) -> &Transmitter {
        &self.primary
    }

    /// The helper (cancelling) transmitter with its *current* settings.
    pub fn helper(&self) -> &Transmitter {
        &self.helper
    }

    /// Solves for the helper settings that minimise harvested power at
    /// `victim`.
    ///
    /// The required arrival wave is the antiphase of the primary's arrival
    /// wave. The helper's transmit phase is set so its arrival phase is
    /// `φ₁ + π`; its power factor is chosen to match amplitudes, clamped to 1
    /// if the helper cannot radiate enough power at that distance (partial
    /// cancellation).
    pub fn solve(&self, victim: (f64, f64)) -> CancelSolution {
        let honest = self.primary.wave_at(victim);
        let honest_power = honest.solo_power();
        let target = honest.antiphase();

        // Full-power helper arrival amplitude at the victim.
        let helper_full = self.helper.with_power_factor(1.0);
        let full_amp = helper_full.wave_at(victim).amplitude();

        if full_amp <= 0.0 {
            // Helper cannot reach the victim at all.
            return CancelSolution {
                helper_phase: self.helper.tx_phase(),
                helper_power_factor: 0.0,
                residual_power_w: honest_power,
                honest_power_w: honest_power,
            };
        }

        // Amplitude scales with √(power factor).
        let k = (target.amplitude() / full_amp).powi(2).min(1.0);
        // Arrival phase = ψ₂ − 2πd₂/λ; solve for ψ₂.
        let psi2 = target.phase() + helper_full.propagation_phase(victim);

        let tuned = helper_full.with_power_factor(k).with_phase(psi2);
        let residual = received_power(&[honest, tuned.wave_at(victim)]);

        CancelSolution {
            helper_phase: psi2,
            helper_power_factor: k,
            residual_power_w: residual,
            honest_power_w: honest_power,
        }
    }

    /// The helper's arrival wave at `victim` after tuning — the wave that
    /// (near-)cancels the primary's.
    pub fn cancelling_wave(&self, victim: (f64, f64)) -> Wave {
        let sol = self.solve(victim);
        self.helper
            .with_power_factor(sol.helper_power_factor)
            .with_phase(sol.helper_phase)
            .wave_at(victim)
    }

    /// Returns the helper transmitter configured per [`CancelController::solve`].
    pub fn tuned_helper(&self, victim: (f64, f64)) -> Transmitter {
        let sol = self.solve(victim);
        self.helper
            .with_power_factor(sol.helper_power_factor)
            .with_phase(sol.helper_phase)
    }

    /// Residual power at `victim` when the tuned helper suffers a phase error
    /// of `phase_err` radians and a relative amplitude error `amp_err`
    /// (e.g. `0.05` = 5 % too strong).
    ///
    /// Used to evaluate how robust the attack is to imperfect channel
    /// knowledge (experiment `fig4`).
    pub fn residual_with_errors(&self, victim: (f64, f64), phase_err: f64, amp_err: f64) -> f64 {
        let honest = self.primary.wave_at(victim);
        let ideal = self.cancelling_wave(victim);
        let perturbed = ideal.shifted(phase_err).scaled((1.0 + amp_err).max(0.0));
        received_power(&[honest, perturbed])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Transmitter, Transmitter) {
        (
            Transmitter::powercast().at(0.0, 0.0),
            Transmitter::powercast().at(0.3, 0.0),
        )
    }

    #[test]
    fn perfect_cancellation_when_helper_in_reach() {
        let (p, h) = setup();
        let sol = CancelController::new(&p, &h).solve((1.0, 0.0));
        assert!(sol.honest_power_w > 0.0);
        assert!(
            sol.residual_power_w < 1e-20 * sol.honest_power_w,
            "residual = {}",
            sol.residual_power_w
        );
        assert!((sol.suppression() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn helper_power_factor_within_bounds() {
        let (p, h) = setup();
        let sol = CancelController::new(&p, &h).solve((2.0, 1.0));
        assert!((0.0..=1.0).contains(&sol.helper_power_factor));
    }

    #[test]
    fn partial_cancellation_when_helper_too_far() {
        // Helper much farther from the victim than the primary: it cannot match
        // the primary's amplitude even at full power.
        let p = Transmitter::powercast().at(0.0, 0.0);
        let h = Transmitter::powercast().at(-3.0, 0.0);
        let sol = CancelController::new(&p, &h).solve((1.0, 0.0));
        assert!((sol.helper_power_factor - 1.0).abs() < 1e-12);
        assert!(sol.residual_power_w > 0.0);
        assert!(sol.residual_power_w < sol.honest_power_w);
    }

    #[test]
    fn unreachable_victim_leaves_honest_power() {
        let p = Transmitter::powercast().at(0.0, 0.0);
        let h = Transmitter::powercast().at(100.0, 0.0);
        let sol = CancelController::new(&p, &h).solve((1.0, 0.0));
        assert_eq!(sol.residual_power_w, sol.honest_power_w);
        assert_eq!(sol.helper_power_factor, 0.0);
        assert!(sol.suppression() < 1e-12);
    }

    #[test]
    fn phase_error_degrades_cancellation_smoothly() {
        let (p, h) = setup();
        let c = CancelController::new(&p, &h);
        let v = (1.0, 0.0);
        let r0 = c.residual_with_errors(v, 0.0, 0.0);
        let r1 = c.residual_with_errors(v, 0.1, 0.0);
        let r2 = c.residual_with_errors(v, 0.5, 0.0);
        assert!(r0 < r1 && r1 < r2, "r0={r0} r1={r1} r2={r2}");
        // Residual for phase error e is (2 − 2cos e)·honest; for e = 0.5 rad
        // that is ≈ 24.5 % — still suppressing three quarters of the power.
        let honest = c.solve(v).honest_power_w;
        assert!((r2 / honest - (2.0 - 2.0 * 0.5f64.cos())).abs() < 1e-9);
    }

    #[test]
    fn amplitude_error_degrades_cancellation() {
        let (p, h) = setup();
        let c = CancelController::new(&p, &h);
        let v = (1.0, 0.0);
        let r = c.residual_with_errors(v, 0.0, 0.10);
        let honest = c.solve(v).honest_power_w;
        // 10 % amplitude error → residual ≈ (0.1a)² = 1 % of honest power.
        assert!((r / honest - 0.01).abs() < 1e-6, "ratio = {}", r / honest);
    }

    #[test]
    fn tuned_helper_reproduces_solution() {
        let (p, h) = setup();
        let c = CancelController::new(&p, &h);
        let v = (1.4, -0.6);
        let sol = c.solve(v);
        let tuned = c.tuned_helper(v);
        assert!((tuned.power_factor() - sol.helper_power_factor).abs() < 1e-12);
        let residual = received_power(&[p.wave_at(v), tuned.wave_at(v)]);
        assert!((residual - sol.residual_power_w).abs() < 1e-15);
    }
}
