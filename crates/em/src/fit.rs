//! Least-squares fitting of the empirical charging model.
//!
//! The paper's Section II fits `P(d) = α/(d+β)²` to measured `(d, P)` samples.
//! For a fixed `β` the model is linear in `α`, so the optimal `α` has a closed
//! form; the fitter grid-searches `β` and refines it by golden-section search.

use crate::charging::ChargeModel;
use crate::error::EmError;

/// Result of fitting `P(d) = α/(d+β)²` to samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// Fitted `α` (W·m²).
    pub alpha: f64,
    /// Fitted `β` (m).
    pub beta: f64,
    /// Residual sum of squares at the optimum.
    pub rss: f64,
    /// Coefficient of determination `R²` (1 = perfect fit).
    pub r_squared: f64,
}

impl FitResult {
    /// Converts the fit into a usable [`ChargeModel`] with the given cut-off
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`EmError`] if the fitted parameters are degenerate (e.g. the
    /// samples were all zero).
    pub fn into_model(self, max_range_m: f64) -> Result<ChargeModel, EmError> {
        ChargeModel::new(self.alpha, self.beta, max_range_m)
    }
}

/// For fixed `β`, the optimal `α` and resulting RSS.
fn solve_alpha(samples: &[(f64, f64)], beta: f64) -> (f64, f64) {
    // Model: P ≈ α·w(d) with w = 1/(d+β)². Least squares: α = Σ P·w / Σ w².
    let mut num = 0.0;
    let mut den = 0.0;
    for &(d, p) in samples {
        let w = 1.0 / ((d + beta) * (d + beta));
        num += p * w;
        den += w * w;
    }
    let alpha = if den > 0.0 { num / den } else { 0.0 };
    let rss = samples
        .iter()
        .map(|&(d, p)| {
            let w = 1.0 / ((d + beta) * (d + beta));
            let e = p - alpha * w;
            e * e
        })
        .sum();
    (alpha, rss)
}

/// Fits `P(d) = α/(d+β)²` to `(distance, power)` samples.
///
/// `β` is searched over `(0, beta_max]`.
///
/// # Errors
///
/// Returns [`EmError::TooFewSamples`] for fewer than 3 samples, or
/// [`EmError::NonFiniteParameter`] if any sample is non-finite or any distance
/// is negative.
///
/// # Example
///
/// ```
/// use wrsn_em::{fit::fit_charge_model, ChargeModel};
///
/// let truth = ChargeModel::powercast();
/// let samples: Vec<(f64, f64)> =
///     (1..20).map(|k| { let d = k as f64 * 0.2; (d, truth.power_at(d)) }).collect();
/// let fit = fit_charge_model(&samples, 2.0).unwrap();
/// assert!((fit.alpha - truth.alpha()).abs() < 1e-6);
/// assert!((fit.beta - truth.beta()).abs() < 1e-4);
/// ```
pub fn fit_charge_model(samples: &[(f64, f64)], beta_max: f64) -> Result<FitResult, EmError> {
    if samples.len() < 3 {
        return Err(EmError::TooFewSamples {
            got: samples.len(),
            need: 3,
        });
    }
    for &(d, p) in samples {
        if !d.is_finite() || !p.is_finite() || d < 0.0 {
            return Err(EmError::NonFiniteParameter { name: "samples" });
        }
    }

    // Coarse grid over β.
    let grid = 200;
    let mut best_beta = beta_max / grid as f64;
    let mut best_rss = f64::INFINITY;
    for k in 1..=grid {
        let beta = beta_max * k as f64 / grid as f64;
        let (_, rss) = solve_alpha(samples, beta);
        if rss < best_rss {
            best_rss = rss;
            best_beta = beta;
        }
    }

    // Golden-section refinement around the best grid cell.
    let step = beta_max / grid as f64;
    let (mut lo, mut hi) = ((best_beta - step).max(1e-9), best_beta + step);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..60 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        let r1 = solve_alpha(samples, m1).1;
        let r2 = solve_alpha(samples, m2).1;
        if r1 < r2 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let beta = 0.5 * (lo + hi);
    let (alpha, rss) = solve_alpha(samples, beta);

    let mean_p = samples.iter().map(|s| s.1).sum::<f64>() / samples.len() as f64;
    let tss: f64 = samples
        .iter()
        .map(|s| (s.1 - mean_p) * (s.1 - mean_p))
        .sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

    Ok(FitResult {
        alpha,
        beta,
        rss,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::MeasurementNoise;

    fn exact_samples(model: &ChargeModel, n: usize) -> Vec<(f64, f64)> {
        (1..=n)
            .map(|k| {
                let d = k as f64 * 3.0 / n as f64;
                (d, model.power_at(d))
            })
            .collect()
    }

    #[test]
    fn recovers_exact_parameters() {
        let truth = ChargeModel::new(0.4, 0.8, 10.0).unwrap();
        let fit = fit_charge_model(&exact_samples(&truth, 30), 3.0).unwrap();
        assert!((fit.alpha - 0.4).abs() < 1e-6, "alpha = {}", fit.alpha);
        assert!((fit.beta - 0.8).abs() < 1e-4, "beta = {}", fit.beta);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn tolerates_measurement_noise() {
        let truth = ChargeModel::powercast();
        let mut noise = MeasurementNoise::new(1234, 0.03);
        let samples = noise.noisy_series(&exact_samples(&truth, 60));
        let fit = fit_charge_model(&samples, 3.0).unwrap();
        assert!((fit.alpha - truth.alpha()).abs() < 0.05);
        assert!((fit.beta - truth.beta()).abs() < 0.1);
        assert!(fit.r_squared > 0.95, "R² = {}", fit.r_squared);
    }

    #[test]
    fn too_few_samples_error() {
        assert!(matches!(
            fit_charge_model(&[(1.0, 0.1), (2.0, 0.05)], 3.0),
            Err(EmError::TooFewSamples { got: 2, need: 3 })
        ));
    }

    #[test]
    fn rejects_non_finite_samples() {
        let s = vec![(1.0, 0.1), (2.0, f64::NAN), (3.0, 0.01)];
        assert!(fit_charge_model(&s, 3.0).is_err());
    }

    #[test]
    fn rejects_negative_distance() {
        let s = vec![(-1.0, 0.1), (2.0, 0.2), (3.0, 0.01)];
        assert!(fit_charge_model(&s, 3.0).is_err());
    }

    #[test]
    fn fit_converts_to_model() {
        let truth = ChargeModel::powercast();
        let fit = fit_charge_model(&exact_samples(&truth, 20), 3.0).unwrap();
        let model = fit.into_model(5.0).unwrap();
        assert!((model.power_at(1.0) - truth.power_at(1.0)).abs() < 1e-6);
    }
}
